"""Fluent queries with index-aware planning.

Example::

    resources = (
        db.query("data_resource")
        .where("project_id", "=", 42)
        .where("size_bytes", ">=", 1_000_000)
        .order_by("created_at", descending=True)
        .limit(20)
        .all()
    )

The planner uses, in order of preference: a composite hash index covering
several equality predicates, a single-column hash index for one equality
predicate, a sorted index for a range predicate, and finally a full scan.
:meth:`Query.explain` reports which path was chosen — the A1 index
ablation benchmark relies on it — plus the query's plan fingerprint and
its result-cache status.

Result caching: every :meth:`Query.all`/:meth:`Query.count` consults the
database's :class:`QueryCache`, a bounded LRU keyed on ``(table,
committed version, plan fingerprint)``.  Because the table version only
advances on commit, invalidation is a single integer comparison: any
committed write makes every older entry unreachable, while rolled-back
transactions leave the version — and the cache — intact.  While a
transaction has uncommitted changes on a table the cache is *bypassed*
in both directions, so dirty state is never served or stored.

Snapshot execution: a query built from a
:class:`~repro.storage.snapshot.Snapshot` (``snap.query(...)`` or
``Query(table, snapshot=snap)``) resolves rows from the version chains
at the snapshot's commit sequence number and never takes the writer
lock.  The planner still uses the live indexes when they are provably
equivalent to the snapshot state — no commit past the snapshot, no
uncommitted changes, seqlock epoch stable across planning — and
otherwise degrades to a chain-walking scan.  Cache keys are identical
in both modes whenever the table hasn't moved past the snapshot, so
snapshot readers and live readers share cached results; a snapshot of
an older state bypasses the cache (historical versions are not keyed).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import SchemaError
from repro.storage.types import sort_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.storage.snapshot import Snapshot
    from repro.storage.table import Table

#: Result-cache entries kept per database when unconfigured.
DEFAULT_QUERY_CACHE_SIZE = 256

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and sort_key(a) < sort_key(b),
    "<=": lambda a, b: a is not None and sort_key(a) <= sort_key(b),
    ">": lambda a, b: a is not None and sort_key(a) > sort_key(b),
    ">=": lambda a, b: a is not None and sort_key(a) >= sort_key(b),
    "in": lambda a, b: a in b,
    "contains": lambda a, b: (
        b.lower() in a.lower() if isinstance(a, str) else (a is not None and b in a)
    ),
    "startswith": lambda a, b: isinstance(a, str) and a.startswith(b),
    "is_null": lambda a, b: (a is None) == b,
}

_RANGE_OPS = {"<", "<=", ">", ">="}


@dataclass(frozen=True)
class Condition:
    """One ``column <op> value`` predicate."""

    column: str
    op: str
    value: Any

    def matches(self, row: dict[str, Any]) -> bool:
        actual = row.get(self.column)
        if self.op in ("=", "!=") or self.op in _RANGE_OPS:
            # SQL three-valued logic: comparing with NULL is never true.
            if self.value is None or actual is None:
                return False
        elif self.op == "in" and actual is None:
            return False
        return _OPS[self.op](actual, self.value)


class F:
    """Shorthand condition factory: ``F.eq("name", "x")`` etc."""

    @staticmethod
    def eq(column: str, value: Any) -> Condition:
        return Condition(column, "=", value)

    @staticmethod
    def ne(column: str, value: Any) -> Condition:
        return Condition(column, "!=", value)

    @staticmethod
    def lt(column: str, value: Any) -> Condition:
        return Condition(column, "<", value)

    @staticmethod
    def le(column: str, value: Any) -> Condition:
        return Condition(column, "<=", value)

    @staticmethod
    def gt(column: str, value: Any) -> Condition:
        return Condition(column, ">", value)

    @staticmethod
    def ge(column: str, value: Any) -> Condition:
        return Condition(column, ">=", value)

    @staticmethod
    def isin(column: str, values: Any) -> Condition:
        return Condition(column, "in", tuple(values))

    @staticmethod
    def contains(column: str, value: Any) -> Condition:
        return Condition(column, "contains", value)

    @staticmethod
    def startswith(column: str, value: str) -> Condition:
        return Condition(column, "startswith", value)

    @staticmethod
    def is_null(column: str, flag: bool = True) -> Condition:
        return Condition(column, "is_null", flag)


class QueryCache:
    """Bounded LRU of query results keyed on ``(table, version, fingerprint)``.

    Entries for superseded table versions are never served (the key no
    longer matches) and age out through the LRU bound; no explicit
    invalidation pass is needed.  Stored rows are private copies; hits
    hand fresh copies to the caller, so cached data can never be
    mutated from outside.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_QUERY_CACHE_SIZE,
        *,
        obs: "Observability | None" = None,
    ):
        self.capacity = max(0, int(capacity))
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._m_lookups = None
        self._m_evictions = None
        if obs is not None:
            self._m_lookups = obs.metrics.counter(
                "storage_query_cache_total",
                "Query-result cache lookups by outcome",
                labels=("result",),
            )
            self._m_evictions = obs.metrics.counter(
                "storage_query_cache_evictions_total",
                "Query-result cache entries evicted by the LRU bound",
            )

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, result: str) -> None:
        """Count one lookup outcome (``hit`` / ``miss`` / ``bypass``)."""
        if self._m_lookups is not None:
            self._m_lookups.labels(result=result).inc()

    def get(self, key: tuple) -> Any | None:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def peek(self, key: tuple) -> bool:
        """Presence check without touching LRU order or metrics."""
        with self._lock:
            return key in self._entries

    def put(self, key: tuple, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                if self._m_evictions is not None:
                    self._m_evictions.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def statistics(self) -> dict[str, Any]:
        lookups: dict[str, float] = {}
        if self._m_lookups is not None:
            for labels, child in self._m_lookups.samples():
                lookups[labels["result"]] = child.value
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "lookups": lookups,
            "evictions": (
                self._m_evictions.value if self._m_evictions is not None else 0
            ),
        }


class Query:
    """Immutable-ish fluent query builder over one table."""

    def __init__(self, table: "Table", *, snapshot: "Snapshot | None" = None):
        self._table = table
        self._snapshot = snapshot
        self._conditions: list[Condition] = []
        self._order: list[tuple[str, bool]] = []  # (column, descending)
        self._limit: int | None = None
        self._offset: int = 0
        self._use_indexes = True

    # -- building ----------------------------------------------------------------

    def where(self, column: str, op: str = "=", value: Any = None) -> "Query":
        """Add a predicate.  ``op`` is one of ``= != < <= > >= in contains
        startswith is_null``."""
        if op not in _OPS:
            raise SchemaError(f"unknown operator {op!r}")
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        self._conditions.append(Condition(column, op, value))
        return self

    def filter(self, *conditions: Condition) -> "Query":
        """Add prebuilt :class:`Condition` objects (see :class:`F`)."""
        for cond in conditions:
            if not self._table.schema.has_column(cond.column):
                raise SchemaError(
                    f"table {self._table.name!r} has no column {cond.column!r}"
                )
            self._conditions.append(cond)
        return self

    def order_by(self, column: str, *, descending: bool = False) -> "Query":
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        self._order.append((column, descending))
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise SchemaError("limit must be >= 0")
        self._limit = n
        return self

    def offset(self, n: int) -> "Query":
        if n < 0:
            raise SchemaError("offset must be >= 0")
        self._offset = n
        return self

    def without_indexes(self) -> "Query":
        """Force a full scan (used by the index-ablation benchmark)."""
        self._use_indexes = False
        return self

    # -- planning ------------------------------------------------------------------

    def _plan(self) -> tuple[str, set[Any] | None, list[Condition]]:
        """Return ``(strategy, candidate_pks, residual_conditions)``.

        ``candidate_pks=None`` means full scan.  Snapshot queries may
        only use the live indexes while those provably match the
        snapshot state: no committed change past the snapshot's
        sequence number, no uncommitted changes, and a stable (even)
        seqlock epoch across planning.  A failed guard degrades to a
        chain-walking scan, which is always correct.
        """
        if self._snapshot is None:
            return self._plan_live()
        tbl = self._table
        epoch = tbl.mutation_epoch
        if epoch & 1 or tbl.dirty or tbl.version > self._snapshot.seq:
            return ("scan", None, list(self._conditions))
        plan = self._plan_live()
        if tbl.mutation_epoch != epoch:
            return ("scan", None, list(self._conditions))
        return plan

    def _plan_live(self) -> tuple[str, set[Any] | None, list[Condition]]:
        if not self._use_indexes or not self._conditions:
            return ("scan", None, list(self._conditions))

        # `= NULL` never matches (SQL semantics), so such predicates must
        # not drive an index lookup — they stay residual and reject rows.
        eq_conditions = {
            c.column: c
            for c in self._conditions
            if c.op == "=" and c.value is not None
        }
        pk_col = self._table.pk_column

        # 0. Primary-key equality: direct dict hit.
        if pk_col in eq_conditions:
            cond = eq_conditions[pk_col]
            pk = cond.value
            pks = {pk} if pk in self._table else set()
            residual = [c for c in self._conditions if c is not cond]
            return ("pk", pks, residual)

        # 1. Composite hash index covering the largest equality subset.
        best_cols: tuple[str, ...] | None = None
        for spec in self._table._hash_indexes:
            if all(col in eq_conditions for col in spec):
                if best_cols is None or len(spec) > len(best_cols):
                    best_cols = spec
        # Unique single-column indexes count too.
        for index in self._table._unique_indexes:
            spec = index.columns
            if all(col in eq_conditions for col in spec):
                if best_cols is None or len(spec) > len(best_cols):
                    best_cols = spec
        if best_cols is not None:
            # Note: indexes define __len__, so an empty index is falsy —
            # the None checks must be explicit.
            index = self._table.hash_index_for(best_cols)
            if index is None:
                index = self._table.unique_index_for(best_cols)
            assert index is not None
            key = tuple(eq_conditions[col].value for col in best_cols)
            # Identity-based filtering: conditions may hold unhashable
            # values (e.g. lists for "in"), so no set membership here.
            used_ids = {id(eq_conditions[col]) for col in best_cols}
            residual = [c for c in self._conditions if id(c) not in used_ids]
            return (f"index:{index.name}", index.lookup(key), residual)

        # 2. Sorted index for a range predicate.
        for cond in self._conditions:
            if cond.op in _RANGE_OPS:
                sx = self._table.sorted_index_for(cond.column)
                if sx is None:
                    continue
                if cond.op in (">", ">="):
                    pks = sx.range(low=cond.value, include_low=cond.op == ">=")
                else:
                    pks = sx.range(high=cond.value, include_high=cond.op == "<=")
                residual = [c for c in self._conditions if c is not cond]
                return (f"range:{sx.name}", pks, residual)

        return ("scan", None, list(self._conditions))

    def fingerprint(self) -> str:
        """Stable digest of the query shape (conditions, order, paging).

        Together with the table's committed version this keys the result
        cache; :meth:`explain` reports it so operators can correlate
        cache entries with query sites.
        """
        shape = (
            tuple(
                (c.column, c.op, repr(c.value)) for c in self._conditions
            ),
            tuple(self._order),
            self._limit,
            self._offset,
            self._use_indexes,
        )
        digest = hashlib.sha1(repr(shape).encode("utf-8")).hexdigest()
        return digest[:12]

    def _cache(self) -> "QueryCache | None":
        cache = getattr(self._table._db, "query_cache", None)
        if cache is None or not cache.enabled:
            return None
        return cache

    def _cache_version(self) -> "int | None":
        """The committed table version this query may be cached under,
        or ``None`` when it must bypass the cache.

        ``table.version`` is read exactly once and that captured value
        drives both the cacheability check and the cache key — reading
        it twice would let a commit land in between and publish a
        stale (snapshot-state) result under the new version's key.

        without_indexes() exists for the ablation benchmarks, which
        must measure real scans; a dirty table must never populate or
        serve the cache (its in-memory state is uncommitted).  A
        snapshot query is cacheable only while the live table still
        matches the snapshot — the cache is keyed on committed table
        versions and does not index historical states.
        """
        if not self._use_indexes or self._table.dirty:
            return None
        version = self._table.version
        if self._snapshot is not None and version > self._snapshot.seq:
            return None
        return version

    def _cache_key(self, kind: str, version: "int | None" = None) -> tuple:
        # When a snapshot query is cacheable the live version equals the
        # snapshot-visible version, so both modes share one key space.
        if version is None:
            version = self._table.version
        return (self._table.name, version, kind, self.fingerprint())

    def explain(self) -> dict[str, Any]:
        """Describe the access path without executing the query.

        Besides the strategy, reports the snapshot pin
        (``snapshot_version``, ``None`` for live queries) and the exact
        result-cache key (``cache_key``, ``None`` when the cache is
        bypassed) so hits and misses are debuggable across the
        version-keyed cache.
        """
        strategy, pks, residual = self._plan()
        cache = self._cache()
        version = self._cache_version()
        key = self._cache_key("rows", version)
        if cache is None or version is None:
            cache_status = "bypassed"
        elif cache.peek(key):
            cache_status = "hit"
        else:
            cache_status = "miss"
        if pks is not None:
            candidates = len(pks)
        elif self._snapshot is not None:
            candidates = self._table.count_at(self._snapshot.seq)
        else:
            candidates = len(self._table)
        return {
            "table": self._table.name,
            "strategy": strategy,
            "candidates": candidates,
            "residual_predicates": len(residual),
            "order_by": list(self._order),
            "cache": cache_status,
            "fingerprint": self.fingerprint(),
            "snapshot_version": (
                None if self._snapshot is None else self._snapshot.seq
            ),
            "cache_key": (
                None
                if cache_status == "bypassed"
                else {
                    "table": key[0],
                    "version": key[1],
                    "kind": key[2],
                    "fingerprint": key[3],
                }
            ),
        }

    # -- execution -----------------------------------------------------------------

    def _execute(self, kind: str, fn: Callable[[], Any]) -> Any:
        """Run one uncached execution under observability.

        Inside an active trace the scan becomes a ``storage.query`` span
        carrying a lazy :meth:`explain` hook — the planner re-runs only
        if the span is promoted to the slow log.  Outside a trace (bulk
        loads, background jobs) the scan is merely timed, and feeds the
        slow log directly when it blows the ``storage.query`` budget, so
        slow untraced queries are still diagnosable.  Cache hits never
        reach this path: serving a stored result is not an execution.
        """
        obs = getattr(self._table._db, "obs", None)
        if obs is None:
            return fn()
        if obs.tracer.current() is not None:
            with obs.tracer.span(
                "storage.query", table=self._table.name, kind=kind
            ) as span:
                span.explain = self.explain
                result = fn()
                span.set(rows=result if kind == "count" else len(result))
            return result
        timer = obs.timer()
        result = fn()
        elapsed = timer.elapsed()
        if elapsed >= obs.slowlog.threshold_for("storage.query"):
            obs.slowlog.record(
                "storage.query",
                elapsed,
                {
                    "table": self._table.name,
                    "kind": kind,
                    "rows": result if kind == "count" else len(result),
                },
                explain=self.explain,
            )
        return result

    def _matching_rows(self) -> Iterator[dict[str, Any]]:
        strategy, pks, residual = self._plan()
        snap = self._snapshot
        if snap is not None:
            if snap.closed:
                raise SchemaError(
                    f"query on {self._table.name!r}: snapshot is closed"
                )
            seq = snap.seq
            if pks is None:
                # Chain-walking scan at the pinned sequence number; the
                # pk set is materialized atomically so concurrent
                # commits can neither tear it nor change its size.
                for _pk, row in self._table.items_at(seq):
                    if all(cond.matches(row) for cond in residual):
                        yield row
            else:
                # Index candidates were validated against the snapshot
                # by the planner; rows are still resolved through the
                # chains so a commit racing this loop cannot leak newer
                # versions into the result.
                for pk in pks:
                    row = self._table.row_at(pk, seq)
                    if row is None:
                        continue
                    if all(cond.matches(row) for cond in residual):
                        yield row
            return
        if pks is None:
            candidates: Iterator[Any] = iter(self._table.pks())
        else:
            candidates = iter(pks)
        for pk in candidates:
            row = self._table.raw_row(pk)
            if row is None:
                continue
            if all(cond.matches(row) for cond in residual):
                yield row

    def _sorted_rows(self) -> list[dict[str, Any]]:
        rows = list(self._matching_rows())
        # Stable multi-key sort: apply keys in reverse priority order.
        for column, descending in reversed(self._order):
            rows.sort(key=lambda r: sort_key(r.get(column)), reverse=descending)
        return rows

    def _limited_rows(self) -> list[dict[str, Any]]:
        """Matching rows after sort/offset/limit — internal references."""
        rows = self._sorted_rows()
        if self._offset:
            rows = rows[self._offset:]
        if self._limit is not None:
            rows = rows[: self._limit]
        return rows

    def all(self) -> list[dict[str, Any]]:
        """Execute and return row copies."""
        cache = self._cache()
        version = self._cache_version() if cache is not None else None
        if cache is not None and version is not None:
            key = self._cache_key("rows", version)
            cached = cache.get(key)
            if cached is not None:
                cache.record("hit")
                return [dict(r) for r in cached]
            cache.record("miss")
            # Snapshot the epoch before executing: if any mutation lands
            # while we scan, the result may be torn and must not be
            # published under the version captured in the key.
            epoch = self._table.mutation_epoch
            result = self._execute(
                "rows", lambda: [dict(r) for r in self._limited_rows()]
            )
            if (
                self._table.mutation_epoch == epoch
                and not self._table.dirty
                and self._table.version == version
            ):
                cache.put(key, tuple(dict(r) for r in result))
            return result
        if cache is not None:
            cache.record("bypass")
        return self._execute(
            "rows", lambda: [dict(r) for r in self._limited_rows()]
        )

    def first(self) -> dict[str, Any] | None:
        """Return the first matching row or ``None``."""
        rows = self.limit(1).all() if self._limit is None else self.all()
        return rows[0] if rows else None

    def one(self) -> dict[str, Any]:
        """Return exactly one row; raise if zero or several match."""
        rows = self.limit(2).all()
        if not rows:
            raise SchemaError(
                f"query on {self._table.name!r} matched no rows"
            )
        if len(rows) > 1:
            raise SchemaError(
                f"query on {self._table.name!r} matched more than one row"
            )
        return rows[0]

    def count(self) -> int:
        """Number of matching rows (ignores limit/offset)."""
        cache = self._cache()
        version = self._cache_version() if cache is not None else None
        if cache is not None and version is not None:
            key = self._cache_key("count", version)
            cached = cache.get(key)
            if cached is not None:
                cache.record("hit")
                return cached
            cache.record("miss")
            epoch = self._table.mutation_epoch
            result = self._execute(
                "count", lambda: sum(1 for _ in self._matching_rows())
            )
            if (
                self._table.mutation_epoch == epoch
                and not self._table.dirty
                and self._table.version == version
            ):
                cache.put(key, result)
            return result
        if cache is not None:
            cache.record("bypass")
        return self._execute(
            "count", lambda: sum(1 for _ in self._matching_rows())
        )

    def exists(self) -> bool:
        return next(iter(self._matching_rows()), None) is not None

    def pks(self) -> list[Any]:
        """Primary keys of matching rows, respecting order/limit/offset."""
        pk_col = self._table.pk_column
        # Read straight off the internal rows: copying whole dicts to
        # extract one column was pure overhead.
        return [row[pk_col] for row in self._limited_rows()]

    def values(self, column: str) -> list[Any]:
        """The given column of every matching row."""
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        return [row.get(column) for row in self._limited_rows()]

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct non-null values of *column*, sorted.

        Backs drop-down filters ("all species in use").
        """
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        seen: dict = {}
        for row in self._matching_rows():
            value = row.get(column)
            if value is not None:
                seen[repr(value)] = value
        return sorted(seen.values(), key=sort_key)

    # -- aggregation ----------------------------------------------------------------

    def aggregate(self, column: str, function: str) -> Any:
        """Aggregate *column* over matching rows.

        ``function`` is one of ``count``, ``sum``, ``min``, ``max``,
        ``avg``.  NULLs are ignored (SQL semantics); ``count`` counts
        non-null values, ``avg``/``min``/``max`` of no values is
        ``None``, ``sum`` of no values is 0.
        """
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        if function not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate {function!r}")
        values = [
            row[column]
            for row in self._matching_rows()
            if row.get(column) is not None
        ]
        if function == "count":
            return len(values)
        if function == "sum":
            return sum(values) if values else 0
        if not values:
            return None
        if function == "min":
            return min(values, key=sort_key)
        if function == "max":
            return max(values, key=sort_key)
        return sum(values) / len(values)

    def group_by(
        self, column: str, *, aggregate: str = "count", value_column: str | None = None
    ) -> dict[Any, Any]:
        """Group matching rows by *column* and aggregate per group.

        The default counts rows per group; with *value_column* the
        aggregate runs over that column's non-null values.  Powers the
        admin dashboards ("workunits per project", "bytes per storage
        mode").
        """
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        if value_column is not None and not self._table.schema.has_column(
            value_column
        ):
            raise SchemaError(
                f"table {self._table.name!r} has no column {value_column!r}"
            )
        if aggregate not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate {aggregate!r}")
        groups: dict[Any, list[Any]] = {}
        for row in self._matching_rows():
            key = row.get(column)
            if value_column is None:
                groups.setdefault(key, []).append(1)
            elif row.get(value_column) is not None:
                groups.setdefault(key, []).append(row[value_column])
            else:
                groups.setdefault(key, [])
        result: dict[Any, Any] = {}
        for key, values in groups.items():
            if aggregate == "count":
                result[key] = len(values) if value_column is None else len(values)
            elif aggregate == "sum":
                result[key] = sum(values) if values else 0
            elif aggregate == "min":
                result[key] = min(values, key=sort_key) if values else None
            elif aggregate == "max":
                result[key] = max(values, key=sort_key) if values else None
            else:
                result[key] = sum(values) / len(values) if values else None
        return result
