"""Fluent queries with index-aware planning.

Example::

    resources = (
        db.query("data_resource")
        .where("project_id", "=", 42)
        .where("size_bytes", ">=", 1_000_000)
        .order_by("created_at", descending=True)
        .limit(20)
        .all()
    )

Planning is **cost based**: the planner enumerates every candidate
access path — primary-key hit, composite/single hash probe, hash-index
intersection, ordered-index range seek, composite prefix seek (equality
on a key prefix + range on the next column), covering skip-fetch reads,
and LIMIT-aware ordered rides — prices each with the table's statistics
(live row count, O(1) exact distinct counts off the indexes, reservoir
NDV estimates, O(log n) range probes), and picks the cheapest.
:meth:`Query.explain` reports the chosen strategy — the A1 index
ablation benchmark relies on it — plus estimated rows/cost, the
alternatives considered, the plan fingerprint, and the result-cache
status; ``explain(analyze=True)`` adds the actual row count so
estimation error is visible.

Result caching: every :meth:`Query.all`/:meth:`Query.count` consults the
database's :class:`QueryCache`, a bounded LRU keyed on ``(table,
committed version, plan fingerprint)``.  Because the table version only
advances on commit, invalidation is a single integer comparison: any
committed write makes every older entry unreachable, while rolled-back
transactions leave the version — and the cache — intact.  While a
transaction has uncommitted changes on a table the cache is *bypassed*
in both directions, so dirty state is never served or stored.

Snapshot execution: a query built from a
:class:`~repro.storage.snapshot.Snapshot` (``snap.query(...)`` or
``Query(table, snapshot=snap)``) resolves rows from the version chains
at the snapshot's commit sequence number and never takes the writer
lock.  The planner still uses the live indexes when they are provably
equivalent to the snapshot state — no commit past the snapshot, no
uncommitted changes, seqlock epoch stable across planning — and
otherwise degrades to a chain-walking scan.  Cache keys are identical
in both modes whenever the table hasn't moved past the snapshot, so
snapshot readers and live readers share cached results; a snapshot of
an older state bypasses the cache (historical versions are not keyed).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from itertools import islice
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import SchemaError
from repro.storage.types import sort_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.storage.snapshot import Snapshot
    from repro.storage.table import Table

#: Result-cache entries kept per database when unconfigured.
DEFAULT_QUERY_CACHE_SIZE = 256

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and sort_key(a) < sort_key(b),
    "<=": lambda a, b: a is not None and sort_key(a) <= sort_key(b),
    ">": lambda a, b: a is not None and sort_key(a) > sort_key(b),
    ">=": lambda a, b: a is not None and sort_key(a) >= sort_key(b),
    "in": lambda a, b: a in b,
    "contains": lambda a, b: (
        b.lower() in a.lower() if isinstance(a, str) else (a is not None and b in a)
    ),
    "startswith": lambda a, b: isinstance(a, str) and a.startswith(b),
    "is_null": lambda a, b: (a is None) == b,
}

_RANGE_OPS = {"<", "<=", ">", ">="}


@dataclass(frozen=True)
class Condition:
    """One ``column <op> value`` predicate."""

    column: str
    op: str
    value: Any

    def matches(self, row: dict[str, Any]) -> bool:
        actual = row.get(self.column)
        if self.op in ("=", "!=") or self.op in _RANGE_OPS:
            # SQL three-valued logic: comparing with NULL is never true.
            if self.value is None or actual is None:
                return False
        elif self.op == "in" and actual is None:
            return False
        return _OPS[self.op](actual, self.value)


class F:
    """Shorthand condition factory: ``F.eq("name", "x")`` etc."""

    @staticmethod
    def eq(column: str, value: Any) -> Condition:
        return Condition(column, "=", value)

    @staticmethod
    def ne(column: str, value: Any) -> Condition:
        return Condition(column, "!=", value)

    @staticmethod
    def lt(column: str, value: Any) -> Condition:
        return Condition(column, "<", value)

    @staticmethod
    def le(column: str, value: Any) -> Condition:
        return Condition(column, "<=", value)

    @staticmethod
    def gt(column: str, value: Any) -> Condition:
        return Condition(column, ">", value)

    @staticmethod
    def ge(column: str, value: Any) -> Condition:
        return Condition(column, ">=", value)

    @staticmethod
    def isin(column: str, values: Any) -> Condition:
        return Condition(column, "in", tuple(values))

    @staticmethod
    def contains(column: str, value: Any) -> Condition:
        return Condition(column, "contains", value)

    @staticmethod
    def startswith(column: str, value: str) -> Condition:
        return Condition(column, "startswith", value)

    @staticmethod
    def is_null(column: str, flag: bool = True) -> Condition:
        return Condition(column, "is_null", flag)


class QueryCache:
    """Bounded LRU of query results keyed on ``(table, version, fingerprint)``.

    Entries for superseded table versions are never served (the key no
    longer matches) and age out through the LRU bound; no explicit
    invalidation pass is needed.  Stored rows are private copies; hits
    hand fresh copies to the caller, so cached data can never be
    mutated from outside.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_QUERY_CACHE_SIZE,
        *,
        obs: "Observability | None" = None,
    ):
        self.capacity = max(0, int(capacity))
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._m_lookups = None
        self._m_evictions = None
        if obs is not None:
            self._m_lookups = obs.metrics.counter(
                "storage_query_cache_total",
                "Query-result cache lookups by outcome",
                labels=("result",),
            )
            self._m_evictions = obs.metrics.counter(
                "storage_query_cache_evictions_total",
                "Query-result cache entries evicted by the LRU bound",
            )

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, result: str) -> None:
        """Count one lookup outcome (``hit`` / ``miss`` / ``bypass``)."""
        if self._m_lookups is not None:
            self._m_lookups.labels(result=result).inc()

    def get(self, key: tuple) -> Any | None:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def peek(self, key: tuple) -> bool:
        """Presence check without touching LRU order or metrics."""
        with self._lock:
            return key in self._entries

    def put(self, key: tuple, value: Any) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                if self._m_evictions is not None:
                    self._m_evictions.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def statistics(self) -> dict[str, Any]:
        lookups: dict[str, float] = {}
        if self._m_lookups is not None:
            for labels, child in self._m_lookups.samples():
                lookups[labels["result"]] = child.value
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "lookups": lookups,
            "evictions": (
                self._m_evictions.value if self._m_evictions is not None else 0
            ),
        }


# -- cost model -------------------------------------------------------------
#
# Arbitrary units; only the ratios matter.  A plan costs roughly
# "probe overhead + rows examined x per-row work", where per-row work is
# the row-store fetch plus one term per residual predicate.  Covering
# plans skip the row fetch and pay only the (cheaper) synthesis cost;
# scans pay a flat setup so tiny tables still prefer a ready index.
SEEK_COST = 1.0          # one index probe (hash hit / binary search)
SCAN_SETUP_COST = 2.0    # materializing the pk list for a full scan
ROW_FETCH_COST = 1.0     # resolving one pk against the row store
COVERING_ROW_COST = 0.25  # synthesizing one row from an index entry
RESIDUAL_COST = 0.25     # evaluating one residual predicate on one row
INTERSECT_COST = 0.2     # per-element set-intersection bookkeeping


@dataclass
class Plan:
    """One candidate access path, priced by the cost model.

    ``kind`` drives execution:

    * ``scan`` — full row-store pass;
    * ``pks`` — a pre-materialized candidate pk set (primary-key hits,
      and every index plan once pinned for snapshot execution);
    * ``hash`` — one hash-index probe at execution time;
    * ``intersect`` — several single-column hash probes ANDed together;
    * ``seek`` — lazy ordered-index iteration (range / prefix / ordered
      ride), fetching rows pk by pk;
    * ``covering`` — the same seek, but rows are synthesized from the
      index entries and the row store is never touched.

    ``strategy`` is the stable human-readable label reported by
    :meth:`Query.explain` and mixed into the cache fingerprint (the
    "plan shape" part of the cache key).  ``ordered`` names the natural
    output order a seek produces — ``(column, descending)`` pairs for
    the index columns after the pinned prefix — which lets execution
    skip sorting and honor LIMIT with early exit (``early_exit``).
    """

    strategy: str
    kind: str
    cost: float
    estimated_rows: int
    residual: list[Condition]
    pks: "set[Any] | None" = None
    index: Any = None
    key: "tuple | None" = None
    indexes: "list[Any] | None" = None   # intersect: probed indexes
    keys: "list[tuple] | None" = None    # intersect: one key per index
    prefix: tuple = ()
    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True
    exclude_null: bool = False
    descending: bool = False
    ordered: "tuple[tuple[str, bool], ...]" = ()
    early_exit: bool = False
    candidates: int = 0
    alternatives: "tuple[tuple[str, float, int], ...]" = field(default=())


class Query:
    """Immutable-ish fluent query builder over one table."""

    def __init__(self, table: "Table", *, snapshot: "Snapshot | None" = None):
        self._table = table
        self._snapshot = snapshot
        self._conditions: list[Condition] = []
        self._order: list[tuple[str, bool]] = []  # (column, descending)
        self._limit: int | None = None
        self._offset: int = 0
        self._use_indexes = True
        self._select: "tuple[str, ...] | None" = None
        #: Memoized ``(mutation_epoch, Plan)`` — planning runs for the
        #: fingerprint, explain, and execution of one call chain; the
        #: epoch check invalidates it the moment the table moves.
        self._plan_memo: "tuple[int, Plan] | None" = None

    # -- building ----------------------------------------------------------------

    def where(self, column: str, op: str = "=", value: Any = None) -> "Query":
        """Add a predicate.  ``op`` is one of ``= != < <= > >= in contains
        startswith is_null``."""
        if op not in _OPS:
            raise SchemaError(f"unknown operator {op!r}")
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        self._conditions.append(Condition(column, op, value))
        self._plan_memo = None
        return self

    def filter(self, *conditions: Condition) -> "Query":
        """Add prebuilt :class:`Condition` objects (see :class:`F`)."""
        for cond in conditions:
            if not self._table.schema.has_column(cond.column):
                raise SchemaError(
                    f"table {self._table.name!r} has no column {cond.column!r}"
                )
            self._conditions.append(cond)
        self._plan_memo = None
        return self

    def order_by(self, column: str, *, descending: bool = False) -> "Query":
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        self._order.append((column, descending))
        self._plan_memo = None
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise SchemaError("limit must be >= 0")
        self._limit = n
        self._plan_memo = None
        return self

    def offset(self, n: int) -> "Query":
        if n < 0:
            raise SchemaError("offset must be >= 0")
        self._offset = n
        self._plan_memo = None
        return self

    def select(self, *columns: str) -> "Query":
        """Project results to *columns* (plus the primary key).

        Beyond trimming payloads, a projection is what makes **covering
        plans** possible: when an ordered index stores every selected,
        filtered, and ordered column, the planner can answer the query
        from index entries alone and never touch the row store.
        """
        for column in columns:
            if not self._table.schema.has_column(column):
                raise SchemaError(
                    f"table {self._table.name!r} has no column {column!r}"
                )
        self._select = tuple(columns)
        self._plan_memo = None
        return self

    def without_indexes(self) -> "Query":
        """Force a full scan (used by the index-ablation benchmark)."""
        self._use_indexes = False
        self._plan_memo = None
        return self

    # -- planning ------------------------------------------------------------------

    def _selectivity(self, cond: Condition) -> float:
        """Fraction of rows expected to satisfy *cond* (0..1).

        Statistics-driven: equality uses the best-available distinct
        count (exact off an index, else the reservoir-sample estimate),
        range predicates probe the ordered index in O(log n), NULL
        predicates use the sampled null fraction.  Everything else gets
        the classic textbook constants.
        """
        tbl = self._table
        if cond.op == "=":
            if cond.value is None:
                return 0.0  # `= NULL` never matches
            return 1.0 / max(1, tbl.distinct_count(cond.column))
        if cond.op in _RANGE_OPS:
            if cond.value is None:
                return 0.0
            sx = tbl.sorted_index_for(cond.column)
            if sx is not None and len(sx) > 0:
                if cond.op in (">", ">="):
                    _keys, est = sx.estimate_range(
                        (), low=cond.value, include_low=cond.op == ">="
                    )
                else:
                    _keys, est = sx.estimate_range(
                        (),
                        high=cond.value,
                        include_high=cond.op == "<=",
                        exclude_null=True,
                    )
                return min(1.0, est / max(1, len(sx)))
            return 1 / 3
        if cond.op == "in":
            try:
                n = len(cond.value)
            except TypeError:
                n = 1
            return min(1.0, n / max(1, tbl.distinct_count(cond.column)))
        if cond.op == "is_null":
            nf = tbl.statistics().null_fraction(cond.column)
            return nf if cond.value else max(0.0, 1.0 - nf)
        if cond.op == "!=":
            return max(0.0, 1.0 - 1.0 / max(1, tbl.distinct_count(cond.column)))
        return 0.5

    def _selectivity_product(self, conds: "list[Condition]") -> float:
        sel = 1.0
        for cond in conds:
            sel *= self._selectivity(cond)
        return max(0.0, min(1.0, sel))

    def _est(self, examined: float, residual: "list[Condition]") -> int:
        """Estimated result rows: examined rows × residual selectivity."""
        return int(round(examined * self._selectivity_product(residual)))

    def _scan_plan(self) -> Plan:
        conds = list(self._conditions)
        live = len(self._table)
        cost = SCAN_SETUP_COST + live * (
            ROW_FETCH_COST + len(conds) * RESIDUAL_COST
        )
        return Plan(
            "scan", "scan", cost, self._est(live, conds), conds, candidates=live
        )

    def _plan(self) -> Plan:
        """Choose the cheapest access path for the current query shape.

        Snapshot queries may only use the live indexes while those
        provably match the snapshot state: no committed change past the
        snapshot's sequence number, no uncommitted changes, and a
        stable (even) seqlock epoch across planning.  Their chosen plan
        is additionally **pinned** — candidate pks are materialized
        under the guard — because execution resolves rows through the
        version chains later, possibly after more commits have moved
        the indexes.  A failed guard degrades to a chain-walking scan,
        which is always correct.
        """
        tbl = self._table
        epoch = tbl.mutation_epoch
        memo = self._plan_memo
        if memo is not None and memo[0] == epoch and not (epoch & 1):
            return memo[1]
        if self._snapshot is None:
            plan = self._plan_live()
            if not (epoch & 1) and tbl.mutation_epoch == epoch:
                self._plan_memo = (epoch, plan)
            return plan
        if epoch & 1 or tbl.dirty or tbl.version > self._snapshot.seq:
            return self._scan_plan()
        plan = self._materialize(self._plan_live(for_snapshot=True))
        if tbl.mutation_epoch != epoch:
            return self._scan_plan()
        self._plan_memo = (epoch, plan)
        return plan

    def _materialize(self, plan: Plan) -> Plan:
        """Pin a deferred plan's candidate pks (snapshot path)."""
        if plan.kind == "hash":
            pks = plan.index.lookup(plan.key)
        elif plan.kind == "intersect":
            assert plan.indexes is not None and plan.keys is not None
            sets = sorted(
                (
                    index.lookup(key)
                    for index, key in zip(plan.indexes, plan.keys)
                ),
                key=len,
            )
            pks = set(sets[0]).intersection(*sets[1:]) if sets else set()
        elif plan.kind == "seek":
            pks = set(
                plan.index.range_pks(
                    plan.prefix,
                    plan.low,
                    plan.high,
                    include_low=plan.include_low,
                    include_high=plan.include_high,
                    exclude_null=plan.exclude_null,
                )
            )
        else:
            return plan
        return replace(
            plan,
            kind="pks",
            pks=pks,
            ordered=(),
            early_exit=False,
            candidates=len(pks),
        )

    def _plan_live(self, *, for_snapshot: bool = False) -> Plan:
        scan = self._scan_plan()
        if not self._use_indexes:
            return scan
        tbl = self._table
        live = len(tbl)
        conds = self._conditions
        plans: list[Plan] = []

        # `= NULL` never matches (SQL semantics), so such predicates must
        # not drive an index lookup — they stay residual and reject rows.
        eq = {c.column: c for c in conds if c.op == "=" and c.value is not None}
        pk_col = tbl.pk_column

        # Primary-key equality: direct dict hit.  Enumerated first so it
        # wins cost ties against an index over the pk column.
        if pk_col in eq:
            cond = eq[pk_col]
            pks = {cond.value} if cond.value in tbl else set()
            residual = [c for c in conds if c is not cond]
            cost = SEEK_COST + len(pks) * (
                ROW_FETCH_COST + len(residual) * RESIDUAL_COST
            )
            plans.append(
                Plan(
                    "pk",
                    "pks",
                    cost,
                    self._est(len(pks), residual),
                    residual,
                    pks=pks,
                    candidates=len(pks),
                )
            )

        # Hash probes: every (composite or single) hash/unique index whose
        # columns are all equality-constrained.  Longest specs first so
        # cost ties resolve to the most specific index.
        hash_candidates: list[tuple[tuple[str, ...], Any]] = []
        for spec, index in tbl._hash_indexes.items():
            if all(col in eq for col in spec):
                hash_candidates.append((spec, index))
        for index in tbl._unique_indexes:
            if all(col in eq for col in index.columns):
                hash_candidates.append((index.columns, index))
        hash_candidates.sort(key=lambda entry: -len(entry[0]))
        for spec, index in hash_candidates:
            key = tuple(eq[col].value for col in spec)
            bucket = index.bucket_size(key)
            # Identity-based filtering: conditions may hold unhashable
            # values (e.g. lists for "in"), so no set membership here.
            used = {id(eq[col]) for col in spec}
            residual = [c for c in conds if id(c) not in used]
            cost = SEEK_COST + bucket * (
                ROW_FETCH_COST + len(residual) * RESIDUAL_COST
            )
            plans.append(
                Plan(
                    f"index:{index.name}",
                    "hash",
                    cost,
                    self._est(bucket, residual),
                    residual,
                    index=index,
                    key=key,
                    candidates=bucket,
                )
            )

        # Index intersection: AND several single-column hash probes.
        singles: list[tuple[Condition, Any]] = []
        for col, cond in eq.items():
            index = tbl.hash_index_for((col,)) or tbl.unique_index_for((col,))
            if index is not None:
                singles.append((cond, index))
        if len(singles) >= 2:
            buckets = [
                index.bucket_size((cond.value,)) for cond, index in singles
            ]
            expected = 0.0
            if live:
                expected = float(live)
                for bucket in buckets:
                    expected *= bucket / live
            used = {id(cond) for cond, _ in singles}
            residual = [c for c in conds if id(c) not in used]
            cost = (
                len(singles) * SEEK_COST
                + sum(buckets) * INTERSECT_COST
                + expected * (ROW_FETCH_COST + len(residual) * RESIDUAL_COST)
            )
            plans.append(
                Plan(
                    "intersect:" + "+".join(idx.name for _, idx in singles),
                    "intersect",
                    cost,
                    self._est(expected, residual),
                    residual,
                    indexes=[index for _, index in singles],
                    keys=[(cond.value,) for cond, _ in singles],
                    candidates=int(round(expected)),
                )
            )

        # Ordered-index seeks: equality on a key prefix, a folded range
        # on the next column, covering variants, LIMIT-aware order rides.
        range_conds: dict[str, list[Condition]] = {}
        for c in conds:
            if c.op in _RANGE_OPS and c.value is not None:
                range_conds.setdefault(c.column, []).append(c)
        for index in tbl.ordered_indexes():
            seek_plan = self._seek_plan(
                index, eq, range_conds, for_snapshot=for_snapshot
            )
            if seek_plan is not None:
                plans.extend(seek_plan)

        everything = plans + [scan]
        best = min(everything, key=lambda p: p.cost)  # stable: first wins ties
        best.alternatives = tuple(
            sorted(
                (
                    (p.strategy, round(p.cost, 2), p.estimated_rows)
                    for p in everything
                    if p is not best
                ),
                key=lambda entry: entry[1],
            )
        )
        return best

    def _seek_plan(
        self,
        index: Any,
        eq: "dict[str, Condition]",
        range_conds: "dict[str, list[Condition]]",
        *,
        for_snapshot: bool,
    ) -> "list[Plan] | None":
        """Candidate seek (and covering) plans over one ordered index."""
        tbl = self._table
        cols = index.columns
        prefix_conds: list[Condition] = []
        for col in cols:
            cond = eq.get(col)
            if cond is None:
                break
            prefix_conds.append(cond)
        k = len(prefix_conds)

        # Fold every range predicate on the first free column into the
        # tightest [low, high] bounds; lower bounds subsume looser lower
        # bounds (and ditto for upper), so all of them leave the residual.
        low: Any = None
        high: Any = None
        include_low = include_high = True
        bound_conds: list[Condition] = []
        if k < len(cols):
            for c in range_conds.get(cols[k], ()):
                if c.op in (">", ">="):
                    inclusive = c.op == ">="
                    if low is None or sort_key(c.value) > sort_key(low):
                        low, include_low = c.value, inclusive
                    elif sort_key(c.value) == sort_key(low) and not inclusive:
                        include_low = False
                else:
                    inclusive = c.op == "<="
                    if high is None or sort_key(c.value) < sort_key(high):
                        high, include_high = c.value, inclusive
                    elif sort_key(c.value) == sort_key(high) and not inclusive:
                        include_high = False
                bound_conds.append(c)
        bounded = low is not None or high is not None

        if k == 0 and not bounded:
            # Only worth planning as an ordered ride with a LIMIT; the
            # snapshot path skips it (pinning would walk the full index).
            if for_snapshot or not self._order or self._limit is None:
                return None

        used = {id(c) for c in prefix_conds} | {id(c) for c in bound_conds}
        residual = [c for c in self._conditions if id(c) not in used]
        prefix_key = tuple(c.value for c in prefix_conds)
        # A seek bounded only from above must structurally skip NULL
        # keys: range predicates never match NULL.
        exclude_null = bounded and low is None
        _keys, examined = index.estimate_range(
            prefix_key,
            low,
            high,
            include_low=include_low,
            include_high=include_high,
            exclude_null=exclude_null,
        )

        free = cols[k:]
        descending = False
        satisfies_order = False
        if self._order and free:
            want_cols = [c for c, _ in self._order]
            directions = {d for _, d in self._order}
            if len(directions) == 1 and want_cols == list(
                free[: len(want_cols)]
            ):
                satisfies_order = True
                descending = directions.pop()
        if k == 0 and not bounded and not satisfies_order:
            # A bare ride earns its keep only by producing the
            # requested order; an unhelpful one is just a scan in
            # index order.
            return None
        ordered = tuple((c, descending) for c in free)
        early_exit = self._limit is not None and (
            not self._order or satisfies_order
        )
        priced_examined = examined
        if early_exit:
            page = self._offset + self._limit
            res_sel = max(self._selectivity_product(residual), 1e-9)
            priced_examined = min(priced_examined, page / res_sel)
        cost = SEEK_COST + priced_examined * (
            ROW_FETCH_COST + len(residual) * RESIDUAL_COST
        )
        if k > 0:
            strategy = f"prefix:{index.name}"
        elif bounded:
            strategy = f"range:{index.name}"
        else:
            strategy = f"order:{index.name}"
        plan = Plan(
            strategy,
            "seek",
            cost,
            self._est(examined, residual),
            residual,
            index=index,
            prefix=prefix_key,
            low=low,
            high=high,
            include_low=include_low,
            include_high=include_high,
            exclude_null=exclude_null,
            descending=descending,
            ordered=ordered,
            early_exit=early_exit,
            candidates=int(round(examined)),
        )
        plans = [plan]

        # Covering variant: every needed column lives in the index (the
        # pk rides along in the entries), so skip the row fetch.  Only
        # offered under an explicit projection — callers without
        # select() expect full rows — and not to snapshots, whose
        # synthesis would read the live index at execution time,
        # outside the seqlock guard.
        if not for_snapshot and self._select is not None:
            needed = set(self._select)
            needed |= {c.column for c in residual}
            needed |= {c for c, _ in self._order}
            needed.discard(tbl.pk_column)
            if needed <= set(cols):
                cov_cost = SEEK_COST + priced_examined * (
                    COVERING_ROW_COST + len(residual) * RESIDUAL_COST
                )
                plans.append(
                    replace(
                        plan,
                        strategy=f"covering:{index.name}",
                        kind="covering",
                        cost=cov_cost,
                    )
                )
        return plans

    def fingerprint(self) -> str:
        """Stable digest of the query shape — including the plan shape.

        Covers conditions, order, paging, projection, and the chosen
        plan's strategy label, so two query sites that read the same
        rows through different access paths cache independently.
        Planning is deterministic for a given table version, so the
        fingerprint is stable exactly as long as the cache key's
        version component is.  Together with the table's committed
        version this keys the result cache; :meth:`explain` reports it
        so operators can correlate cache entries with query sites.
        """
        shape = (
            tuple(
                (c.column, c.op, repr(c.value)) for c in self._conditions
            ),
            tuple(self._order),
            self._limit,
            self._offset,
            self._use_indexes,
            self._select,
            self._plan().strategy,
        )
        digest = hashlib.sha1(repr(shape).encode("utf-8")).hexdigest()
        return digest[:12]

    def _cache(self) -> "QueryCache | None":
        cache = getattr(self._table._db, "query_cache", None)
        if cache is None or not cache.enabled:
            return None
        return cache

    def _cache_version(self) -> "int | None":
        """The committed table version this query may be cached under,
        or ``None`` when it must bypass the cache.

        ``table.version`` is read exactly once and that captured value
        drives both the cacheability check and the cache key — reading
        it twice would let a commit land in between and publish a
        stale (snapshot-state) result under the new version's key.

        without_indexes() exists for the ablation benchmarks, which
        must measure real scans; a dirty table must never populate or
        serve the cache (its in-memory state is uncommitted).  A
        snapshot query is cacheable only while the live table still
        matches the snapshot — the cache is keyed on committed table
        versions and does not index historical states.
        """
        if not self._use_indexes or self._table.dirty:
            return None
        version = self._table.version
        if self._snapshot is not None and version > self._snapshot.seq:
            return None
        return version

    def _cache_key(self, kind: str, version: "int | None" = None) -> tuple:
        # When a snapshot query is cacheable the live version equals the
        # snapshot-visible version, so both modes share one key space.
        if version is None:
            version = self._table.version
        return (self._table.name, version, kind, self.fingerprint())

    def explain(self, *, analyze: bool = False) -> dict[str, Any]:
        """Describe the costed access path without executing the query.

        Reports the chosen strategy with its estimated cost and row
        count, the ``alternatives`` the planner priced and rejected,
        whether the plan is ``covering`` (skips the row store) or can
        ``early_exit`` on LIMIT, the snapshot pin (``snapshot_version``,
        ``None`` for live queries), and the exact result-cache key
        (``cache_key``, ``None`` when the cache is bypassed) so hits
        and misses are debuggable across the version-keyed cache.  With
        ``analyze=True`` the query is executed and ``actual_rows``
        added, making estimation error visible.
        """
        plan = self._plan()
        cache = self._cache()
        version = self._cache_version()
        key = self._cache_key("rows", version)
        if cache is None or version is None:
            cache_status = "bypassed"
        elif cache.peek(key):
            cache_status = "hit"
        else:
            cache_status = "miss"
        if plan.kind == "pks":
            candidates = len(plan.pks or ())
        elif plan.kind == "scan" and self._snapshot is not None:
            candidates = self._table.count_at(self._snapshot.seq)
        else:
            candidates = plan.candidates
        result = {
            "table": self._table.name,
            "strategy": plan.strategy,
            "candidates": candidates,
            "estimated_rows": plan.estimated_rows,
            "estimated_cost": round(plan.cost, 2),
            "covering": plan.kind == "covering",
            "early_exit": plan.early_exit,
            "residual_predicates": len(plan.residual),
            "order_by": list(self._order),
            "alternatives": [
                {
                    "strategy": strategy,
                    "cost": cost,
                    "estimated_rows": estimated,
                }
                for strategy, cost, estimated in plan.alternatives
            ],
            "cache": cache_status,
            "fingerprint": self.fingerprint(),
            "snapshot_version": (
                None if self._snapshot is None else self._snapshot.seq
            ),
            "cache_key": (
                None
                if cache_status == "bypassed"
                else {
                    "table": key[0],
                    "version": key[1],
                    "kind": key[2],
                    "fingerprint": key[3],
                }
            ),
        }
        if analyze:
            result["actual_rows"] = len(self.all())
        return result

    # -- execution -----------------------------------------------------------------

    def _execute(self, kind: str, fn: Callable[[], Any]) -> Any:
        """Run one uncached execution under observability.

        Inside an active trace the scan becomes a ``storage.query`` span
        carrying a lazy :meth:`explain` hook — the planner re-runs only
        if the span is promoted to the slow log.  Outside a trace (bulk
        loads, background jobs) the scan is merely timed, and feeds the
        slow log directly when it blows the ``storage.query`` budget, so
        slow untraced queries are still diagnosable.  Cache hits never
        reach this path: serving a stored result is not an execution.
        """
        obs = getattr(self._table._db, "obs", None)
        if obs is None:
            return fn()
        if obs.tracer.current() is not None:
            with obs.tracer.span(
                "storage.query", table=self._table.name, kind=kind
            ) as span:
                span.explain = self.explain
                result = fn()
                span.set(rows=result if kind == "count" else len(result))
            return result
        timer = obs.timer()
        result = fn()
        elapsed = timer.elapsed()
        if elapsed >= obs.slowlog.threshold_for("storage.query"):
            obs.slowlog.record(
                "storage.query",
                elapsed,
                {
                    "table": self._table.name,
                    "kind": kind,
                    "rows": result if kind == "count" else len(result),
                },
                explain=self.explain,
            )
        return result

    def _iter_plan_rows(self, plan: Plan) -> Iterator[dict[str, Any]]:
        """Yield internal row references for *plan* (zero-copy where
        possible; covering plans yield freshly synthesized dicts)."""
        residual = plan.residual
        snap = self._snapshot
        if snap is not None:
            if snap.closed:
                raise SchemaError(
                    f"query on {self._table.name!r}: snapshot is closed"
                )
            seq = snap.seq
            if plan.kind == "scan":
                # Chain-walking scan at the pinned sequence number; the
                # pk set is materialized atomically so concurrent
                # commits can neither tear it nor change its size.
                for _pk, row in self._table.items_at(seq):
                    if all(cond.matches(row) for cond in residual):
                        yield row
            else:
                # Index candidates were pinned against the snapshot by
                # the planner (kind "pks"); rows are still resolved
                # through the chains so a commit racing this loop
                # cannot leak newer versions into the result.
                for pk in plan.pks or ():
                    row = self._table.row_at(pk, seq)
                    if row is None:
                        continue
                    if all(cond.matches(row) for cond in residual):
                        yield row
            return
        if plan.kind == "covering":
            # Skip-fetch: rows come straight from the index entries (the
            # pk rides along), the row store is never consulted.  The
            # residual check runs once per distinct key — every residual
            # column is part of the key.
            pk_col = self._table.pk_column
            cols = plan.index.columns
            for raw, bucket in plan.index.seek(
                plan.prefix,
                plan.low,
                plan.high,
                include_low=plan.include_low,
                include_high=plan.include_high,
                descending=plan.descending,
                exclude_null=plan.exclude_null,
            ):
                base = dict(zip(cols, raw))
                if not all(cond.matches(base) for cond in residual):
                    continue
                # pk order within a key keeps ordered output and LIMIT
                # row selection deterministic across plan strategies.
                for pk in sorted(bucket, key=sort_key):
                    yield {**base, pk_col: pk}
            return
        if plan.kind == "seek":
            for _raw, bucket in plan.index.seek(
                plan.prefix,
                plan.low,
                plan.high,
                include_low=plan.include_low,
                include_high=plan.include_high,
                descending=plan.descending,
                exclude_null=plan.exclude_null,
            ):
                for pk in sorted(bucket, key=sort_key):
                    row = self._table.raw_row(pk)
                    if row is None:
                        continue
                    if all(cond.matches(row) for cond in residual):
                        yield row
            return
        if plan.kind == "scan":
            candidates: "Iterator[Any]" = iter(self._table.pks())
        elif plan.kind == "hash":
            candidates = iter(plan.index.lookup(plan.key))
        elif plan.kind == "intersect":
            assert plan.indexes is not None and plan.keys is not None
            sets = sorted(
                (
                    index.lookup(key)
                    for index, key in zip(plan.indexes, plan.keys)
                ),
                key=len,
            )
            merged = set(sets[0]).intersection(*sets[1:]) if sets else set()
            candidates = iter(merged)
        else:  # "pks"
            candidates = iter(plan.pks or ())
        for pk in candidates:
            row = self._table.raw_row(pk)
            if row is None:
                continue
            if all(cond.matches(row) for cond in residual):
                yield row

    def _matching_rows(self) -> Iterator[dict[str, Any]]:
        return self._iter_plan_rows(self._plan())

    def _order_satisfied(self, plan: Plan) -> bool:
        """Whether *plan*'s natural output order covers ``order_by``."""
        if not self._order:
            return True
        if len(plan.ordered) < len(self._order):
            return False
        return tuple(self._order) == plan.ordered[: len(self._order)]

    def _limited_rows(self) -> list[dict[str, Any]]:
        """Matching rows after sort/offset/limit — internal references.

        When the plan already yields rows in the requested order (an
        ordered-index seek whose free columns match ``order_by``, or no
        ordering at all), the sort is skipped and LIMIT exits early:
        only ``offset + limit`` rows are ever pulled from the iterator.
        """
        plan = self._plan()
        rows_iter = self._iter_plan_rows(plan)
        if self._order and not self._order_satisfied(plan):
            rows = list(rows_iter)
            # Stable multi-key sort: apply keys in reverse priority order.
            for column, descending in reversed(self._order):
                rows.sort(
                    key=lambda r: sort_key(r.get(column)), reverse=descending
                )
            if self._offset:
                rows = rows[self._offset:]
            if self._limit is not None:
                rows = rows[: self._limit]
            return rows
        stop = None if self._limit is None else self._offset + self._limit
        return list(islice(rows_iter, self._offset, stop))

    def _project(self, row: dict[str, Any]) -> dict[str, Any]:
        """Copy *row*, trimmed to the projection (pk always included)."""
        if self._select is None:
            return dict(row)
        pk_col = self._table.pk_column
        out = {column: row.get(column) for column in self._select}
        if pk_col not in out:
            out[pk_col] = row.get(pk_col)
        return out

    def all(self) -> list[dict[str, Any]]:
        """Execute and return row copies."""
        cache = self._cache()
        version = self._cache_version() if cache is not None else None
        if cache is not None and version is not None:
            key = self._cache_key("rows", version)
            cached = cache.get(key)
            if cached is not None:
                cache.record("hit")
                return [dict(r) for r in cached]
            cache.record("miss")
            # Snapshot the epoch before executing: if any mutation lands
            # while we scan, the result may be torn and must not be
            # published under the version captured in the key.
            epoch = self._table.mutation_epoch
            result = self._execute(
                "rows", lambda: [self._project(r) for r in self._limited_rows()]
            )
            if (
                self._table.mutation_epoch == epoch
                and not self._table.dirty
                and self._table.version == version
            ):
                cache.put(key, tuple(dict(r) for r in result))
            return result
        if cache is not None:
            cache.record("bypass")
        return self._execute(
            "rows", lambda: [self._project(r) for r in self._limited_rows()]
        )

    def first(self) -> dict[str, Any] | None:
        """Return the first matching row or ``None``."""
        rows = self.limit(1).all() if self._limit is None else self.all()
        return rows[0] if rows else None

    def one(self) -> dict[str, Any]:
        """Return exactly one row; raise if zero or several match."""
        rows = self.limit(2).all()
        if not rows:
            raise SchemaError(
                f"query on {self._table.name!r} matched no rows"
            )
        if len(rows) > 1:
            raise SchemaError(
                f"query on {self._table.name!r} matched more than one row"
            )
        return rows[0]

    def count(self) -> int:
        """Number of matching rows (ignores limit/offset)."""
        cache = self._cache()
        version = self._cache_version() if cache is not None else None
        if cache is not None and version is not None:
            key = self._cache_key("count", version)
            cached = cache.get(key)
            if cached is not None:
                cache.record("hit")
                return cached
            cache.record("miss")
            epoch = self._table.mutation_epoch
            result = self._execute(
                "count", lambda: sum(1 for _ in self._matching_rows())
            )
            if (
                self._table.mutation_epoch == epoch
                and not self._table.dirty
                and self._table.version == version
            ):
                cache.put(key, result)
            return result
        if cache is not None:
            cache.record("bypass")
        return self._execute(
            "count", lambda: sum(1 for _ in self._matching_rows())
        )

    def exists(self) -> bool:
        return next(iter(self._matching_rows()), None) is not None

    def pks(self) -> list[Any]:
        """Primary keys of matching rows, respecting order/limit/offset."""
        pk_col = self._table.pk_column
        # Read straight off the internal rows: copying whole dicts to
        # extract one column was pure overhead.
        return [row[pk_col] for row in self._limited_rows()]

    def values(self, column: str) -> list[Any]:
        """The given column of every matching row."""
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        return [row.get(column) for row in self._limited_rows()]

    def distinct_values(self, column: str) -> list[Any]:
        """Distinct non-null values of *column*, sorted.

        Backs drop-down filters ("all species in use").
        """
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        seen: dict = {}
        for row in self._matching_rows():
            value = row.get(column)
            if value is not None:
                seen[repr(value)] = value
        return sorted(seen.values(), key=sort_key)

    # -- aggregation ----------------------------------------------------------------

    def aggregate(self, column: str, function: str) -> Any:
        """Aggregate *column* over matching rows.

        ``function`` is one of ``count``, ``sum``, ``min``, ``max``,
        ``avg``.  NULLs are ignored (SQL semantics); ``count`` counts
        non-null values, ``avg``/``min``/``max`` of no values is
        ``None``, ``sum`` of no values is 0.
        """
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        if function not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate {function!r}")
        values = [
            row[column]
            for row in self._matching_rows()
            if row.get(column) is not None
        ]
        if function == "count":
            return len(values)
        if function == "sum":
            return sum(values) if values else 0
        if not values:
            return None
        if function == "min":
            return min(values, key=sort_key)
        if function == "max":
            return max(values, key=sort_key)
        return sum(values) / len(values)

    def group_by(
        self, column: str, *, aggregate: str = "count", value_column: str | None = None
    ) -> dict[Any, Any]:
        """Group matching rows by *column* and aggregate per group.

        The default counts rows per group; with *value_column* the
        aggregate runs over that column's non-null values.  Powers the
        admin dashboards ("workunits per project", "bytes per storage
        mode").
        """
        if not self._table.schema.has_column(column):
            raise SchemaError(
                f"table {self._table.name!r} has no column {column!r}"
            )
        if value_column is not None and not self._table.schema.has_column(
            value_column
        ):
            raise SchemaError(
                f"table {self._table.name!r} has no column {value_column!r}"
            )
        if aggregate not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate {aggregate!r}")
        groups: dict[Any, list[Any]] = {}
        for row in self._matching_rows():
            key = row.get(column)
            if value_column is None:
                groups.setdefault(key, []).append(1)
            elif row.get(value_column) is not None:
                groups.setdefault(key, []).append(row[value_column])
            else:
                groups.setdefault(key, [])
        result: dict[Any, Any] = {}
        for key, values in groups.items():
            if aggregate == "count":
                result[key] = len(values) if value_column is None else len(values)
            elif aggregate == "sum":
                result[key] = sum(values) if values else 0
            elif aggregate == "min":
                result[key] = min(values, key=sort_key) if values else None
            elif aggregate == "max":
                result[key] = max(values, key=sort_key) if values else None
            else:
                result[key] = sum(values) / len(values) if values else None
        return result
