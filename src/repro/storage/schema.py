"""Table schema declarations: columns, constraints, index specs.

A :class:`TableSchema` is a passive description; the engine compiles it
into a live :class:`~repro.storage.table.Table`.  Schemas validate
themselves eagerly so misdeclared tables fail at ``create_table`` time,
not first write.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.errors import SchemaError
from repro.storage.types import ColumnType

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _check_identifier(name: str, kind: str) -> str:
    if not _NAME_RE.match(name):
        raise SchemaError(
            f"{kind} name {name!r} is invalid: use lower_snake_case"
        )
    return name


@dataclass(frozen=True)
class ForeignKey:
    """Declares that a column references another table's primary key.

    ``on_delete`` is one of ``"restrict"`` (default — deleting a referenced
    row fails), ``"cascade"`` (referencing rows are deleted too), or
    ``"set_null"`` (the referencing column is nulled, requires a nullable
    column).
    """

    table: str
    column: str = "id"
    on_delete: str = "restrict"

    def __post_init__(self) -> None:
        if self.on_delete not in ("restrict", "cascade", "set_null"):
            raise SchemaError(
                f"on_delete must be restrict/cascade/set_null, got {self.on_delete!r}"
            )

    @classmethod
    def parse(cls, spec: "str | ForeignKey") -> "ForeignKey":
        """Accept ``"table.column"`` shorthand or a full instance."""
        if isinstance(spec, ForeignKey):
            return spec
        if "." in spec:
            table, column = spec.split(".", 1)
        else:
            table, column = spec, "id"
        return cls(table=table, column=column)


@dataclass
class Column:
    """One column of a table.

    ``default`` may be a value or a zero-argument callable evaluated per
    insert.  ``check`` is an optional per-column predicate.
    """

    name: str
    type: ColumnType
    primary_key: bool = False
    nullable: bool = True
    unique: bool = False
    default: Any = None
    foreign_key: "str | ForeignKey | None" = None
    check: Callable[[Any], bool] | None = None
    doc: str = ""

    def __post_init__(self) -> None:
        _check_identifier(self.name, "column")
        if self.primary_key:
            # PKs are implicitly unique and non-null.
            self.nullable = False
            self.unique = True
        if self.foreign_key is not None:
            self.foreign_key = ForeignKey.parse(self.foreign_key)
            if self.foreign_key.on_delete == "set_null" and not self.nullable:
                raise SchemaError(
                    f"column {self.name!r}: on_delete=set_null requires a "
                    "nullable column"
                )

    def default_value(self) -> Any:
        """Evaluate the declared default for a new row."""
        if callable(self.default):
            return self.default()
        return self.default


@dataclass
class CheckConstraint:
    """A named row-level predicate evaluated on insert and update."""

    name: str
    predicate: Callable[[dict[str, Any]], bool]
    description: str = ""


@dataclass
class TableSchema:
    """The full declaration of one table.

    ``indexes`` lists non-unique secondary indexes; each entry is either a
    column name or a tuple of column names for a composite index.
    ``ordered`` lists ordered (range-capable) indexes the same way —
    single-column entries duplicate what ``indexes`` already provides
    automatically, so ``ordered`` is mostly for **composite** ordered
    indexes, which give the planner prefix seeks (equality on a key
    prefix + range on the next column) and covering reads.
    ``unique_together`` declares multi-column unique constraints.
    """

    name: str
    columns: Sequence[Column]
    indexes: Sequence[str | tuple[str, ...]] = field(default_factory=list)
    ordered: Sequence[str | tuple[str, ...]] = field(default_factory=list)
    unique_together: Sequence[tuple[str, ...]] = field(default_factory=list)
    checks: Sequence[CheckConstraint] = field(default_factory=list)
    doc: str = ""

    def __post_init__(self) -> None:
        _check_identifier(self.name, "table")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(
                    f"table {self.name!r}: duplicate column {col.name!r}"
                )
            seen.add(col.name)
        pks = [c for c in self.columns if c.primary_key]
        if len(pks) != 1:
            raise SchemaError(
                f"table {self.name!r} must declare exactly one primary key, "
                f"found {len(pks)}"
            )
        if pks[0].type not in (ColumnType.INT, ColumnType.TEXT):
            raise SchemaError(
                f"table {self.name!r}: primary key must be INT or TEXT"
            )
        for spec in self.index_specs() + self.ordered_index_specs():
            for col_name in spec:
                if col_name not in seen:
                    raise SchemaError(
                        f"table {self.name!r}: index on unknown column "
                        f"{col_name!r}"
                    )
        for group in self.unique_together:
            for col_name in group:
                if col_name not in seen:
                    raise SchemaError(
                        f"table {self.name!r}: unique_together on unknown "
                        f"column {col_name!r}"
                    )
        # Name -> Column map for O(1) lookups on hot paths (WAL encode
        # touches every column of every row).  Schema evolution builds a
        # fresh TableSchema, so the map never goes stale.
        self._column_map = {c.name: c for c in self.columns}
        # Rows of a table without DATETIME columns are JSON-safe as-is
        # and skip per-value encoding on the WAL path.
        self.wal_passthrough = all(
            c.type is not ColumnType.DATETIME for c in self.columns
        )

    # -- introspection -----------------------------------------------------

    @property
    def primary_key(self) -> Column:
        """The table's primary-key column."""
        return next(c for c in self.columns if c.primary_key)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        """Return the column *name* or raise :class:`SchemaError`."""
        col = self._column_map.get(name)
        if col is None:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return col

    def has_column(self, name: str) -> bool:
        return name in self._column_map

    @staticmethod
    def _normalize_specs(
        entries: "Sequence[str | tuple[str, ...]]",
    ) -> list[tuple[str, ...]]:
        specs: list[tuple[str, ...]] = []
        for entry in entries:
            if isinstance(entry, str):
                specs.append((entry,))
            else:
                specs.append(tuple(entry))
        return specs

    def index_specs(self) -> list[tuple[str, ...]]:
        """Normalize ``indexes`` entries to tuples of column names."""
        return self._normalize_specs(self.indexes)

    def ordered_index_specs(self) -> list[tuple[str, ...]]:
        """Normalize ``ordered`` entries to tuples of column names."""
        return self._normalize_specs(self.ordered)

    def foreign_keys(self) -> Iterable[tuple[Column, ForeignKey]]:
        """Yield ``(column, fk)`` for every FK-bearing column."""
        for col in self.columns:
            if col.foreign_key is not None:
                assert isinstance(col.foreign_key, ForeignKey)
                yield col, col.foreign_key
