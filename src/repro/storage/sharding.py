"""Partitioned single-writer databases behind one coordinator facade.

The single-writer commit protocol is a hard throughput ceiling: one
writer lock, one fsync stream.  :class:`ShardedDatabase` splits the row
space across N fully independent :class:`~repro.storage.database.Database`
shards — each with its own WAL, group-commit batching, MVCC version
chains, and data directory — and presents the same ``Database``-shaped
API, so the facade, ORM, search, portal, and replication stack run
unchanged on top.

Routing (:class:`ShardRouter`) follows the paper's data shape: B-Fabric
rows are naturally project-scoped, so project-bearing tables hash the
project id (children land on their project's shard, keeping foreign keys
local), reference tables (users, instruments, applications) replicate to
*every* shard so per-shard FK checks compose into a complete check, and
everything else hashes its primary key.

Transactions that touch one shard take exactly that shard's commit path —
zero added fsyncs.  Cross-shard transactions run two-phase commit over
the existing WALs:

1. *prepare*: each participant force-appends a ``prepare`` record
   carrying the global transaction id (gtid) and its full redo log;
2. *decide*: the coordinator fsyncs a ``decision`` record to its own
   log — this append is the commit point;
3. *commit*: each participant appends a normal commit record stamped
   with the gtid (replication ships it unchanged) and publishes.

Recovery resolves in-doubt prepares by consulting the coordinator's
decision log; a prepare with no decision is presumed aborted.  Either
outcome is re-appended to the shard WAL, so the next recovery reaches
the same answer without the decision log.

Reads scatter-gather: :meth:`ShardedDatabase.snapshot` pins one MVCC
snapshot *per shard* under the coordinator's publish lock — the vector
is atomic with respect to cross-shard commits, so a 2PC transaction is
either visible on all its shards or none.  Queries merge consistent
per-shard views and :meth:`ShardedQuery.explain` reports the shards
consulted and the routing mode (direct / scatter / global).
"""

from __future__ import annotations

import json
import threading
import uuid
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.errors import (
    CrashPoint,
    RowNotFound,
    SchemaError,
    TransactionError,
)
from repro.obs import Observability
from repro.resilience.faults import fault_point
from repro.storage.database import Database
from repro.storage.durability import Durability
from repro.storage.query import DEFAULT_QUERY_CACHE_SIZE, Condition, Query
from repro.storage.schema import TableSchema
from repro.storage.snapshot import Snapshot
from repro.storage.table import UndoEntry
from repro.storage.types import sort_key
from repro.storage.wal import WriteAheadLog
from repro.util.ids import IdAllocator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.transaction import Transaction

SHARD_MAP_NAME = "shard_map.json"
DECISION_LOG_NAME = "coordinator.log"

#: Bound on waiting for a shard writer lock inside a cross-shard
#: transaction.  Two transactions acquiring shard locks in opposite
#: orders resolve as a TransactionError + full rollback instead of a
#: deadlock.
DEFAULT_LOCK_TIMEOUT = 5.0

#: Reference tables replicated to every shard by default so foreign-key
#: checks against them hold locally on any shard.
DEFAULT_GLOBAL_TABLES = frozenset()


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash of a routing value.

    ``hash()`` is salted per process for strings; routing must give the
    same shard across restarts, so this hashes a type-tagged repr with
    CRC32 instead.
    """
    if isinstance(value, bool):  # bool is an int subtype; tag it apart
        tag = f"bool:{value}"
    else:
        tag = f"{type(value).__name__}:{value}"
    return zlib.crc32(tag.encode("utf-8", "replace")) & 0xFFFFFFFF


class ShardRouter:
    """Maps tables and rows to shards.

    Placements, decided once per table at ``create_table`` time:

    * ``("global",)`` — reference data written to *every* shard and read
      from shard 0.  Keeps FK targets available locally everywhere.
    * ``("project", column)`` — routed by ``stable_hash(row[column])``.
      The project table itself routes by its primary key, so a project
      and its project-scoped children co-locate.
    * ``("parent", column, parent_table)`` — routed to wherever the FK
      parent row lives (probed at write time), co-locating child rows
      with routed parents that carry no project column themselves.
    * ``("hash", pk_column)`` — hash of the primary key; the fallback.
    """

    def __init__(
        self,
        *,
        global_tables: "frozenset[str] | set[str]" = DEFAULT_GLOBAL_TABLES,
        project_table: str = "project",
        project_column: str = "project_id",
        overrides: "dict[str, tuple] | None" = None,
    ):
        self.global_tables = frozenset(global_tables)
        self.project_table = project_table
        self.project_column = project_column
        self.overrides = dict(overrides or {})

    def classify(
        self, schema: TableSchema, placements: dict[str, tuple]
    ) -> tuple:
        """Choose a placement for *schema* given the tables routed so far."""
        name = schema.name
        if name in self.overrides:
            return self.overrides[name]
        if name in self.global_tables:
            return ("global",)
        pk = schema.primary_key.name
        if name == self.project_table:
            return ("project", pk)
        if schema.has_column(self.project_column):
            return ("project", self.project_column)
        # A table hanging off a routed parent co-locates with it: route
        # by the FK column, resolved to the parent's shard at write time.
        for col, fk in schema.foreign_keys():
            parent = placements.get(fk.table)
            if parent is not None and parent[0] in ("project", "parent", "hash"):
                return ("parent", col.name, fk.table)
        return ("hash", pk)

    def config(self) -> dict[str, Any]:
        """JSON-safe description persisted in the shard map."""
        return {
            "global_tables": sorted(self.global_tables),
            "project_table": self.project_table,
            "project_column": self.project_column,
        }


_ACTIVE = "active"
_COMMITTED = "committed"
_ROLLED_BACK = "rolled back"


class ShardedTransaction:
    """A transaction spanning one or more shards.

    Per-shard :class:`~repro.storage.transaction.Transaction` objects
    are opened lazily on first touch, so a transaction that only ever
    writes one shard acquires one writer lock and commits through that
    shard's unmodified path.  At commit time, multi-shard transactions
    run two-phase commit (see the module docstring)."""

    def __init__(self, sdb: "ShardedDatabase", txn_id: int, timeout: float):
        self._sdb = sdb
        self.txn_id = txn_id
        self._timeout = timeout
        self._txns: "dict[int, Transaction]" = {}
        self._state = _ACTIVE
        # savepoint name -> (creation index, shards open at creation)
        self._savepoints: dict[str, tuple[int, frozenset[int]]] = {}
        self._savepoint_counter = 0
        self.timer = sdb.obs.timer()

    # -- state -------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._state == _ACTIVE

    def _require_active(self) -> None:
        if self._state != _ACTIVE:
            raise TransactionError(f"transaction is {self._state}")

    @property
    def operations(self) -> list[UndoEntry]:
        ops: list[UndoEntry] = []
        for sid in sorted(self._txns):
            ops.extend(self._txns[sid].operations)
        return ops

    # -- shard access ------------------------------------------------------

    def _txn_for(self, sid: int) -> "Transaction":
        txn = self._txns.get(sid)
        if txn is not None:
            return txn
        try:
            txn = self._sdb.shard(sid).transaction(
                timeout=self._timeout if len(self._sdb.shards) > 1 else None
            )
        except TransactionError:
            # Possible ABBA lock conflict with another cross-shard
            # transaction: release everything so the other side can make
            # progress, then surface the conflict to the caller.
            self.rollback()
            raise TransactionError(
                f"shard {sid} writer lock not acquired within "
                f"{self._timeout:.3f}s; transaction rolled back "
                "(cross-shard lock conflict)"
            ) from None
        self._txns[sid] = txn
        return txn

    # -- writes ------------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        self._require_active()
        sdb = self._sdb
        values = dict(values)
        sdb._assign_pk(table, values)
        placement = sdb.placement(table)
        if placement[0] == "global" and len(sdb.shards) > 1:
            # Same row, same pk, on every shard — ascending shard order
            # keeps lock acquisition deadlock-free among global writers.
            row: dict[str, Any] = {}
            for sid in range(len(sdb.shards)):
                row = self._txn_for(sid).insert(table, values)
            return row
        sid = sdb._route_insert(table, placement, values, probe=self)
        return self._txn_for(sid).insert(table, values)

    def update(
        self, table: str, pk: Any, changes: dict[str, Any]
    ) -> dict[str, Any]:
        self._require_active()
        sdb = self._sdb
        placement = sdb.placement(table)
        if placement[0] == "global" and len(sdb.shards) > 1:
            row: dict[str, Any] = {}
            for sid in range(len(sdb.shards)):
                row = self._txn_for(sid).update(table, pk, changes)
            return row
        sid = self._owning_shard(table, pk, placement)
        if placement[0] in ("project", "hash") and placement[1] in changes:
            new_sid = sdb.shard_index(changes[placement[1]])
            if new_sid != sid and len(sdb.shards) > 1:
                raise TransactionError(
                    f"update of routing column {placement[1]!r} on "
                    f"{table!r} would move the row from shard {sid} to "
                    f"shard {new_sid}; cross-shard row migration is not "
                    "supported (delete + reinsert instead)"
                )
        return self._txn_for(sid).update(table, pk, changes)

    def delete(self, table: str, pk: Any) -> dict[str, Any]:
        self._require_active()
        sdb = self._sdb
        placement = sdb.placement(table)
        if placement[0] == "global" and len(sdb.shards) > 1:
            row: dict[str, Any] = {}
            for sid in range(len(sdb.shards)):
                row = self._txn_for(sid).delete(table, pk)
            return row
        sid = self._owning_shard(table, pk, placement)
        return self._txn_for(sid).delete(table, pk)

    def get(self, table: str, pk: Any) -> dict[str, Any]:
        self._require_active()
        sdb = self._sdb
        placement = sdb.placement(table)
        sid = self._owning_shard(table, pk, placement)
        return self._txn_for(sid).get(table, pk)

    def _owning_shard(self, table: str, pk: Any, placement: tuple) -> int:
        """The shard holding row *pk*, seeing this txn's own writes."""
        sdb = self._sdb
        if placement[0] == "global" or len(sdb.shards) == 1:
            return 0
        if placement[0] == "hash":
            return sdb.shard_index(pk)
        owner = sdb._probe_shard(table, pk)
        if owner is None:
            raise RowNotFound(table, pk)
        return owner

    # -- savepoints --------------------------------------------------------

    def savepoint(self, name: str) -> None:
        self._require_active()
        self._savepoint_counter += 1
        for txn in self._txns.values():
            txn.savepoint(name)
        self._savepoints[name] = (
            self._savepoint_counter,
            frozenset(self._txns),
        )

    def rollback_to(self, name: str) -> None:
        self._require_active()
        if name not in self._savepoints:
            raise TransactionError(f"no savepoint named {name!r}")
        index, open_then = self._savepoints[name]
        # Shards first touched after the savepoint roll back entirely.
        for sid in list(self._txns):
            if sid in open_then:
                self._txns[sid].rollback_to(name)
            else:
                self._txns[sid].rollback()
                del self._txns[sid]
        self._savepoints = {
            n: entry
            for n, entry in self._savepoints.items()
            if entry[0] <= index
        }

    # -- completion --------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        participants = [
            (sid, self._txns[sid])
            for sid in sorted(self._txns)
            if self._txns[sid].operations
        ]
        idle = [
            self._txns[sid]
            for sid in sorted(self._txns)
            if not self._txns[sid].operations
        ]
        self._state = _COMMITTED
        for txn in idle:
            txn.commit()  # no-op commit: releases the shard lock
        if not participants:
            return
        if len(participants) == 1:
            # Single-shard: the shard's own commit path, unchanged — one
            # WAL append, zero coordination fsyncs.
            participants[0][1].commit()
            self._sdb._count_routing("direct")
            return
        self._commit_two_phase(participants)

    def _commit_two_phase(
        self, participants: list[tuple[int, "Transaction"]]
    ) -> None:
        sdb = self._sdb
        gtid = uuid.uuid4().hex
        prepared: list[tuple[int, "Transaction"]] = []
        try:
            # Prepares fan out across the shard I/O pool — each is an
            # independent fsync on a different shard's WAL, so the lock
            # hold on all participants shrinks to the *slowest* prepare
            # instead of their sum.  The crash sites fire on this thread,
            # in shard order, before each dispatch, so fault injection
            # stays deterministic; the joins below make every dispatched
            # append settle before a simulated crash propagates.
            pending: list[tuple[int, "Transaction", Callable]] = []
            errors: list[BaseException] = []
            try:
                for sid, txn in participants:
                    # Crash site: dies with some (not all) shards
                    # prepared — recovery must presume abort.
                    fault_point("2pc.prepare")
                    pending.append(
                        (
                            sid,
                            txn,
                            sdb._fan_out(
                                sdb.shard(sid).prepare_commit, txn, gtid
                            ),
                        )
                    )
            finally:
                for sid, txn, join in pending:
                    try:
                        join()
                        prepared.append((sid, txn))
                    except BaseException as exc:
                        errors.append(exc)
            if errors:
                raise errors[0]
            # Crash site: every vote is in, the decision is not — still
            # presumed abort.
            fault_point("2pc.decide")
            sdb._record_decision(gtid, "commit", [sid for sid, _ in participants])
        except CrashPoint:
            # Simulated crash: leave the on-disk state exactly as the
            # crash found it (writing abort records would repair the very
            # situation torture is trying to create).
            self._sdb._m_2pc_children["crash"].inc()
            raise
        except BaseException:
            # Real failure before the decision became durable: presumed
            # abort.  Prepared shards get an abort record; the rest just
            # roll back.
            prepared_set = {id(txn) for _, txn in prepared}
            for sid, txn in participants:
                if id(txn) in prepared_set:
                    sdb.shard(sid).abort_prepared(txn, gtid)
                else:
                    txn.rollback()
            self._state = _ROLLED_BACK
            sdb._m_2pc_children["abort"].inc()
            raise
        # The decision is durable: this transaction is committed, come
        # what may.  Phase 2 is split so the publish lock never covers
        # an fsync: first every participant's commit record is forced
        # down (fanned out, outside any global lock), then all
        # participants publish together under the publish lock — a
        # memory-only window, so a snapshot vector opened concurrently
        # still sees either every participant's commit or none of them.
        logging: list[tuple[int, "Transaction", Callable]] = []
        try:
            for sid, txn in participants:
                # Crash site: dies with the decision durable but only a
                # prefix of the commit records forced — recovery must
                # roll the rest *forward* from their prepares.
                fault_point("2pc.commit")
                logging.append(
                    (
                        sid,
                        txn,
                        sdb._fan_out(
                            sdb.shard(sid).commit_prepared_durable, txn, gtid
                        ),
                    )
                )
        except CrashPoint:
            for _sid, _txn, join in logging:
                try:
                    join()
                except BaseException:
                    pass
            sdb._m_2pc_children["crash"].inc()
            raise
        logged = [(sid, txn, join()) for sid, txn, join in logging]
        with sdb._publish_lock:
            for sid, txn, seq in logged:
                sdb.shard(sid).commit_prepared_publish(txn, seq)
        for sid, txn, seq in logged:
            sdb.shard(sid).commit_prepared_finish(txn, seq)
        sdb._m_2pc_children["commit"].inc()
        sdb._count_routing("2pc")

    def rollback(self) -> None:
        if self._state != _ACTIVE:
            return
        self._state = _ROLLED_BACK
        for sid in sorted(self._txns):
            self._txns[sid].rollback()

    def __enter__(self) -> "ShardedTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if self._state == _ACTIVE:
                self.commit()
        elif self._state == _ACTIVE:
            self.rollback()


class ShardedSnapshot:
    """A consistent read view pinned across every shard.

    Holds one per-shard :class:`~repro.storage.snapshot.Snapshot`,
    opened atomically with respect to cross-shard commits (the
    coordinator's publish lock covers both), so a 2PC transaction is
    visible on all of its shards or on none.  Mirrors the single-shard
    snapshot surface."""

    __slots__ = ("_sdb", "_sid", "_parts", "_closed")

    def __init__(
        self, sdb: "ShardedDatabase", sid: int, parts: list[Snapshot]
    ):
        self._sdb = sdb
        self._sid = sid
        self._parts = parts
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def seq(self) -> int:
        """Highest per-shard pinned sequence (shards number independently)."""
        return max(part.seq for part in self._parts)

    @property
    def vector(self) -> list[int]:
        """The pinned commit sequence of every shard, in shard order."""
        return [part.seq for part in self._parts]

    @property
    def closed(self) -> bool:
        return self._closed

    def part(self, sid: int) -> Snapshot:
        """The underlying single-shard snapshot for shard *sid*."""
        return self._parts[sid]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for part in self._parts:
                part.close()
            self._sdb._release_vector(self._sid)

    def __enter__(self) -> "ShardedSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<ShardedSnapshot vector={self.vector} {state}>"

    def _check_open(self) -> None:
        if self._closed:
            raise SchemaError("snapshot is closed")

    def _read_parts(self, table: str) -> list[Snapshot]:
        self._check_open()
        if self._sdb.placement(table)[0] == "global":
            return [self._parts[0]]
        return self._parts

    # -- reads -------------------------------------------------------------

    def get(self, table: str, pk: Any) -> dict[str, Any]:
        row = self.get_or_none(table, pk)
        if row is None:
            raise RowNotFound(table, pk)
        return row

    def get_or_none(self, table: str, pk: Any) -> dict[str, Any] | None:
        for part in self._read_parts(table):
            row = part.get_or_none(table, pk)
            if row is not None:
                return row
        return None

    def contains(self, table: str, pk: Any) -> bool:
        return self.get_or_none(table, pk) is not None

    def scan(self, table: str) -> Iterator[dict[str, Any]]:
        for part in self._read_parts(table):
            yield from part.scan(table)

    def count(self, table: str) -> int:
        return sum(part.count(table) for part in self._read_parts(table))

    def pks(self, table: str) -> list[Any]:
        out: list[Any] = []
        for part in self._read_parts(table):
            out.extend(part.pks(table))
        return out

    def lookup(
        self, table: str, columns: "str | tuple[str, ...]", *values: Any
    ) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for part in self._read_parts(table):
            rows.extend(part.lookup(table, columns, *values))
        return rows

    def query(self, table: str) -> "ShardedQuery":
        self._check_open()
        return ShardedQuery(self._sdb, table, snapshot=self)

    def statistics(self) -> dict[str, Any]:
        self._check_open()
        tables: dict[str, int] = {}
        for name in self._sdb.table_names():
            tables[name] = self.count(name)
        return {
            "seq": self.seq,
            "vector": self.vector,
            "tables": tables,
            "total_rows": sum(tables.values()),
        }


class ShardedQuery:
    """Scatter-gather twin of :class:`~repro.storage.query.Query`.

    Collects the fluent state once, then builds one per-shard ``Query``
    per consulted shard at execution time.  Single-shard routes (global
    tables, equality on the routing column or hash key) push the full
    query — order, offset, limit — down to that shard; scatter routes
    push ``limit(offset+limit)`` down and re-sort/paginate the merged
    rows at the coordinator."""

    def __init__(
        self,
        sdb: "ShardedDatabase",
        table: str,
        *,
        snapshot: "ShardedSnapshot | None" = None,
    ):
        self._sdb = sdb
        self._name = table
        self._schema = sdb.shard(0).table(table).schema
        self._snapshot = snapshot
        self._conditions: list[Condition] = []
        self._order: list[tuple[str, bool]] = []
        self._limit: int | None = None
        self._offset: int = 0
        self._use_indexes = True

    # -- building ----------------------------------------------------------

    def _check_column(self, column: str) -> None:
        if not self._schema.has_column(column):
            raise SchemaError(
                f"table {self._name!r} has no column {column!r}"
            )

    def where(
        self, column: str, op: str = "=", value: Any = None
    ) -> "ShardedQuery":
        from repro.storage.query import _OPS

        if op not in _OPS:
            raise SchemaError(f"unknown operator {op!r}")
        self._check_column(column)
        self._conditions.append(Condition(column, op, value))
        return self

    def filter(self, *conditions: Condition) -> "ShardedQuery":
        for cond in conditions:
            self._check_column(cond.column)
            self._conditions.append(cond)
        return self

    def order_by(
        self, column: str, *, descending: bool = False
    ) -> "ShardedQuery":
        self._check_column(column)
        self._order.append((column, descending))
        return self

    def limit(self, n: int) -> "ShardedQuery":
        if n < 0:
            raise SchemaError("limit must be >= 0")
        self._limit = n
        return self

    def offset(self, n: int) -> "ShardedQuery":
        if n < 0:
            raise SchemaError("offset must be >= 0")
        self._offset = n
        return self

    def without_indexes(self) -> "ShardedQuery":
        self._use_indexes = False
        return self

    # -- routing -----------------------------------------------------------

    def _route(self) -> tuple[list[int], str]:
        """``(shards_consulted, routing)`` for this query's predicates."""
        placement = self._sdb.placement(self._name)
        if placement[0] == "global":
            return [0], "global"
        n = len(self._sdb.shards)
        if n == 1:
            return [0], "direct"
        eq: dict[str, Any] = {}
        for cond in self._conditions:
            if cond.op == "=" and cond.value is not None:
                eq.setdefault(cond.column, cond.value)
        if placement[0] in ("project", "hash") and placement[1] in eq:
            return [self._sdb.shard_index(eq[placement[1]])], "direct"
        return list(range(n)), "scatter"

    def _build(self, sid: int, *, push_paging: bool) -> Query:
        snap = self._snapshot.part(sid) if self._snapshot is not None else None
        q = Query(self._sdb.shard(sid).table(self._name), snapshot=snap)
        if self._conditions:
            q.filter(*self._conditions)
        for column, descending in self._order:
            q.order_by(column, descending=descending)
        if not self._use_indexes:
            q.without_indexes()
        if push_paging:
            if self._offset:
                q.offset(self._offset)
            if self._limit is not None:
                q.limit(self._limit)
        elif self._limit is not None:
            # A shard can never contribute more than offset+limit rows
            # to the merged page.
            q.limit(self._offset + self._limit)
        return q

    def _merged_rows(self) -> list[dict[str, Any]]:
        targets, _routing = self._route()
        if len(targets) == 1:
            return self._build(targets[0], push_paging=True).all()
        rows: list[dict[str, Any]] = []
        for sid in targets:
            rows.extend(self._build(sid, push_paging=False).all())
        for column, descending in reversed(self._order):
            rows.sort(key=lambda r: sort_key(r.get(column)), reverse=descending)
        if self._offset:
            rows = rows[self._offset:]
        if self._limit is not None:
            rows = rows[: self._limit]
        return rows

    # -- introspection -----------------------------------------------------

    def fingerprint(self) -> str:
        return self._build(0, push_paging=True).fingerprint()

    def explain(self) -> dict[str, Any]:
        """Single-shard explain enriched with the shard fan-out.

        ``shards_consulted`` lists the shards this query reads and
        ``routing`` is ``direct`` (one shard), ``scatter`` (all), or
        ``global`` (reference table, shard 0).  On a scatter route the
        reported strategy/candidate numbers describe the first consulted
        shard; ``shards`` maps every consulted shard to its strategy.
        """
        targets, routing = self._route()
        base = self._build(
            targets[0], push_paging=len(targets) == 1
        ).explain()
        base["shards_consulted"] = list(targets)
        base["routing"] = routing
        if len(targets) > 1:
            shard_plans = {
                sid: self._build(sid, push_paging=False).explain()
                for sid in targets
            }
            base["shards"] = {
                sid: plan["strategy"] for sid, plan in shard_plans.items()
            }
            base["candidates"] = sum(
                plan["candidates"] for plan in shard_plans.values()
            )
            # Scatter-gather totals of the per-shard costed plans, so
            # the merged view reports planner estimates too.
            base["estimated_rows"] = sum(
                plan["estimated_rows"] for plan in shard_plans.values()
            )
            base["estimated_cost"] = round(
                sum(plan["estimated_cost"] for plan in shard_plans.values()),
                2,
            )
        return base

    # -- execution ---------------------------------------------------------

    def all(self) -> list[dict[str, Any]]:
        return self._merged_rows()

    def first(self) -> dict[str, Any] | None:
        rows = self.limit(1).all() if self._limit is None else self.all()
        return rows[0] if rows else None

    def one(self) -> dict[str, Any]:
        rows = self.limit(2).all()
        if not rows:
            raise SchemaError(f"query on {self._name!r} matched no rows")
        if len(rows) > 1:
            raise SchemaError(
                f"query on {self._name!r} matched more than one row"
            )
        return rows[0]

    def count(self) -> int:
        targets, _routing = self._route()
        return sum(
            self._build(sid, push_paging=False).count() for sid in targets
        )

    def exists(self) -> bool:
        targets, _routing = self._route()
        return any(
            self._build(sid, push_paging=False).exists() for sid in targets
        )

    def pks(self) -> list[Any]:
        pk_col = self._schema.primary_key.name
        return [row[pk_col] for row in self._merged_rows()]

    def values(self, column: str) -> list[Any]:
        self._check_column(column)
        return [row.get(column) for row in self._merged_rows()]

    def distinct_values(self, column: str) -> list[Any]:
        self._check_column(column)
        targets, _routing = self._route()
        seen: dict = {}
        for sid in targets:
            for value in self._build(
                sid, push_paging=False
            ).distinct_values(column):
                seen[repr(value)] = value
        return sorted(seen.values(), key=sort_key)

    def aggregate(self, column: str, function: str) -> Any:
        self._check_column(column)
        if function not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate {function!r}")
        targets, _routing = self._route()
        if function == "avg":
            # An average does not merge from per-shard averages: combine
            # per-shard (sum, count) pairs instead.
            total = 0.0
            items = 0
            for sid in targets:
                q = self._build(sid, push_paging=False)
                n = q.aggregate(column, "count")
                if n:
                    total += q.aggregate(column, "sum")
                    items += n
            return total / items if items else None
        parts = [
            self._build(sid, push_paging=False).aggregate(column, function)
            for sid in targets
        ]
        if function in ("count", "sum"):
            return sum(parts)
        values = [p for p in parts if p is not None]
        if not values:
            return None
        return (
            min(values, key=sort_key)
            if function == "min"
            else max(values, key=sort_key)
        )

    def group_by(
        self,
        column: str,
        *,
        aggregate: str = "count",
        value_column: str | None = None,
    ) -> dict[Any, Any]:
        self._check_column(column)
        if value_column is not None:
            self._check_column(value_column)
        if aggregate not in ("count", "sum", "min", "max", "avg"):
            raise SchemaError(f"unknown aggregate {aggregate!r}")
        targets, _routing = self._route()
        if len(targets) == 1:
            return self._build(targets[0], push_paging=False).group_by(
                column, aggregate=aggregate, value_column=value_column
            )
        if aggregate == "avg":
            sums: dict[Any, float] = {}
            counts: dict[Any, int] = {}
            for sid in targets:
                q = self._build(sid, push_paging=False)
                for key, value in q.group_by(
                    column, aggregate="sum", value_column=value_column
                ).items():
                    sums[key] = sums.get(key, 0) + (value or 0)
                for key, value in q.group_by(
                    column, aggregate="count", value_column=value_column
                ).items():
                    counts[key] = counts.get(key, 0) + (value or 0)
            return {
                key: (sums.get(key, 0) / counts[key]) if counts.get(key) else None
                for key in counts
            }
        merged: dict[Any, Any] = {}
        for sid in targets:
            partial = self._build(sid, push_paging=False).group_by(
                column, aggregate=aggregate, value_column=value_column
            )
            for key, value in partial.items():
                if key not in merged:
                    merged[key] = value
                elif aggregate in ("count", "sum"):
                    merged[key] = merged[key] + value
                elif value is not None and (
                    merged[key] is None
                    or (
                        aggregate == "min"
                        and sort_key(value) < sort_key(merged[key])
                    )
                    or (
                        aggregate == "max"
                        and sort_key(value) > sort_key(merged[key])
                    )
                ):
                    merged[key] = value
        return merged


class ShardedDatabase:
    """N single-writer databases behind one ``Database``-shaped facade.

    See the module docstring for the protocol.  The coordinator keeps no
    row data of its own: all state lives in the shards (each a complete
    :class:`~repro.storage.database.Database` with its own directory)
    plus one small decision log for cross-shard commits.
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        *,
        shards: int = 1,
        durable: bool = True,
        durability: "Durability | str | None" = None,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        obs: "Observability | None" = None,
        router: "ShardRouter | None" = None,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ):
        if shards < 1:
            raise SchemaError(f"shard count must be >= 1, got {shards}")
        self.obs = obs if obs is not None else Observability()
        self.router = router if router is not None else ShardRouter()
        self.durability = Durability.parse(durability)
        self.lock_timeout = lock_timeout
        self._path = Path(path) if path is not None else None
        self._placements: dict[str, tuple] = {}
        self._allocators: dict[str, IdAllocator] = {}
        self._txn_counter = 0
        self._txn_lock = threading.Lock()
        # Serializes cross-shard publishes against snapshot-vector opens
        # (atomic 2PC visibility).  Deliberately *not* taken by shard
        # checkpoints — see DESIGN §14 on lock ordering.
        self._publish_lock = threading.Lock()
        # Decision-log group commit: appenders queue under the mutex,
        # whoever holds the baton drains the queue with one write+fsync.
        self._decision_lock = threading.Lock()  # the writer baton
        self._decision_mutex = threading.Lock()  # guards the queue only
        self._decision_queue: list = []
        self._vector_lock = threading.Lock()
        self._vector_counter = 0
        self._open_vectors = 0
        self._m_2pc = self.obs.metrics.counter(
            "storage_2pc_total",
            "Cross-shard two-phase commits by outcome",
            labels=("outcome",),
        )
        self._m_routing = self.obs.metrics.counter(
            "storage_txn_routing_total",
            "Committed coordinator transactions by routing",
            labels=("routing",),
        )
        # Label-child lookups cost a dict hash + lock per call; the
        # commit hot path bumps these counters once per transaction, so
        # resolve the children once here.
        self._m_routing_children = {
            routing: self._m_routing.labels(routing=routing)
            for routing in ("direct", "scatter", "2pc")
        }
        self._m_2pc_children = {
            outcome: self._m_2pc.labels(outcome=outcome)
            for outcome in ("commit", "abort", "crash")
        }
        if self._path is not None:
            self._path.mkdir(parents=True, exist_ok=True)
            self._load_or_write_shard_map(shards)
        self.shards: list[Database] = [
            Database(
                self._path / f"shard-{i}" if self._path is not None else None,
                durable=durable,
                durability=durability,
                query_cache_size=query_cache_size,
                obs=self.obs,
                shard=str(i) if shards > 1 else None,
            )
            for i in range(shards)
        ]
        self._decision_log: WriteAheadLog | None = None
        if self._path is not None and durable:
            self._decision_log = WriteAheadLog(
                self._path / DECISION_LOG_NAME,
                durability="always",
            )
        # Fans a cross-shard transaction's per-shard WAL forces out so
        # they run concurrently (fsync releases the GIL); a 2PC round
        # then costs the slowest participant, not the sum.  One shard
        # never has two in-flight appends — its writer lock is held by
        # the dispatching transaction throughout.
        self._pool: "ThreadPoolExecutor | None" = (
            ThreadPoolExecutor(
                max_workers=min(16, 4 * shards),
                thread_name_prefix="shard-io",
            )
            if shards > 1
            else None
        )

    def _fan_out(self, fn: Callable, *args) -> Callable:
        """Run ``fn(*args)`` on the I/O pool; returns a join callable.

        The join re-raises the task's exception, like
        ``Future.result()``.  Without a pool (one shard) the call runs
        inline and the join just replays its outcome.
        """
        if self._pool is not None:
            return self._pool.submit(fn, *args).result
        try:
            result = fn(*args)
        except BaseException as exc:
            def raise_joiner(exc=exc):
                raise exc
            return raise_joiner
        return lambda: result

    # -- shard map ---------------------------------------------------------

    @staticmethod
    def stored_shard_count(path: "str | Path") -> int | None:
        """Shard count persisted at *path*, or ``None`` if unsharded."""
        map_path = Path(path) / SHARD_MAP_NAME
        if not map_path.exists():
            return None
        try:
            data = json.loads(map_path.read_text(encoding="utf-8"))
            return int(data["shards"])
        except (ValueError, KeyError, TypeError):
            return None

    def _load_or_write_shard_map(self, shards: int) -> None:
        assert self._path is not None
        map_path = self._path / SHARD_MAP_NAME
        if map_path.exists():
            stored = self.stored_shard_count(self._path)
            if stored is not None and stored != shards:
                raise SchemaError(
                    f"data directory {self._path} was initialised with "
                    f"{stored} shard(s); cannot open with {shards} "
                    "(resharding is not supported)"
                )
            return
        map_path.write_text(
            json.dumps(
                {"shards": shards, "router": self.router.config()},
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    # -- routing -----------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard(self, sid: int) -> Database:
        return self.shards[sid]

    def shard_index(self, value: Any) -> int:
        return stable_hash(value) % len(self.shards)

    def placement(self, table: str) -> tuple:
        try:
            return self._placements[table]
        except KeyError:
            raise SchemaError(f"no table named {table!r}") from None

    def _assign_pk(self, table: str, values: dict[str, Any]) -> None:
        """Allocate / observe the primary key at the coordinator.

        Auto-increment pks must be unique *across* shards, so the
        coordinator owns the counter; per-shard allocators still observe
        every insert and stay consistent for standalone reopens.
        """
        allocator = self._allocators.get(table)
        if allocator is None:
            return
        pk_col = self.shards[0].table(table).schema.primary_key.name
        supplied = values.get(pk_col)
        if supplied is None:
            values[pk_col] = allocator.allocate()
        elif isinstance(supplied, int):
            allocator.observe(supplied)

    def _route_insert(
        self,
        table: str,
        placement: tuple,
        values: dict[str, Any],
        *,
        probe: "ShardedTransaction | None" = None,
    ) -> int:
        if len(self.shards) == 1 or placement[0] == "global":
            return 0
        kind = placement[1 - 1]
        if kind == "project":
            return self.shard_index(values.get(placement[1]))
        if kind == "parent":
            column, parent_table = placement[1], placement[2]
            parent_pk = values.get(column)
            if parent_pk is not None:
                owner = self._probe_shard(parent_table, parent_pk)
                if owner is not None:
                    return owner
            pk_col = self.shards[0].table(table).schema.primary_key.name
            return self.shard_index(values.get(pk_col))
        return self.shard_index(values.get(placement[1]))

    def _probe_shard(self, table: str, pk: Any) -> "int | None":
        """Which shard holds row *pk* of *table* (live state), if any."""
        placement = self.placement(table)
        if placement[0] == "global" or len(self.shards) == 1:
            return 0 if pk in self.shards[0].table(table) else None
        if placement[0] == "hash":
            sid = self.shard_index(pk)
            return sid if pk in self.shards[sid].table(table) else None
        for sid, db in enumerate(self.shards):
            if pk in db.table(table):
                return sid
        return None

    def _count_routing(self, routing: str) -> None:
        child = self._m_routing_children.get(routing)
        if child is None:
            child = self._m_routing.labels(routing=routing)
            self._m_routing_children[routing] = child
        child.inc()

    # -- schema ------------------------------------------------------------

    def create_table(self, schema: TableSchema):
        placement = self.router.classify(schema, self._placements)
        tables = [db.create_table(schema) for db in self.shards]
        self._placements[schema.name] = placement
        if schema.primary_key.type.name == "INT":
            self._allocators[schema.name] = IdAllocator()
        return tables[0]

    def table(self, name: str):
        """The live table — only where a single authoritative one exists.

        With one shard, or for global tables (identical on every shard),
        shard 0's table is the answer.  A partitioned table has no
        single ``Table``; callers must go through the coordinator's
        ``query``/``get``/``transaction`` surface instead.
        """
        placement = self.placement(name)
        if len(self.shards) == 1 or placement[0] == "global":
            return self.shards[0].table(name)
        raise SchemaError(
            f"table {name!r} is partitioned across {len(self.shards)} "
            "shards; use the coordinator's query()/get()/transaction() "
            "surface"
        )

    def has_table(self, name: str) -> bool:
        return name in self._placements

    def table_names(self) -> list[str]:
        return list(self._placements)

    def referencing(self, table: str) -> list[tuple[str, str, str]]:
        return self.shards[0].referencing(table)

    def table_dirty(self, name: str) -> bool:
        return any(db.table(name).dirty for db in self.shards)

    def version_vector(
        self, names: "Iterable[str] | None" = None
    ) -> dict[str, int]:
        """Per-shard, per-table committed versions for HTTP caching.

        Keys are ``"<shard>:<table>"`` — commit sequences are per-shard,
        so the vectors cannot be merged across shards (a max would let a
        commit on the lower-sequence shard go unnoticed).  Same exactness
        contract as :meth:`Database.version_vector`: the vector moves iff
        one of the named tables committed on some shard.
        """
        vector: dict[str, int] = {}
        for sid, db in enumerate(self.shards):
            for name, version in db.version_vector(names).items():
                vector[f"{sid}:{name}"] = version
        return vector

    @property
    def committed_seq(self) -> int:
        """The highest commit sequence across shards (coarse progress
        token; per-shard read-your-writes needs the full vector)."""
        return max(db.committed_seq for db in self.shards)

    def add_column(self, table: str, column) -> None:
        for db in self.shards:
            db.add_column(table, column)

    def add_index(self, table: str, columns: "tuple[str, ...] | str") -> None:
        for db in self.shards:
            db.add_index(table, columns)

    # -- transactions ------------------------------------------------------

    def transaction(self, *, timeout: "float | None" = None) -> ShardedTransaction:
        with self._txn_lock:
            self._txn_counter += 1
            txn_id = self._txn_counter
        txn = ShardedTransaction(
            self, txn_id, self.lock_timeout if timeout is None else timeout
        )
        if len(self.shards) == 1:
            # Single-shard deployments keep the exact historical
            # semantics: the writer lock is held from begin, so a
            # snapshot opened right after transaction() includes every
            # commit that preceded it.
            txn._txn_for(0)
        return txn

    def on_commit(self, listener: Callable[[list[UndoEntry]], None]) -> None:
        for db in self.shards:
            db.on_commit(listener)

    def on_commit_seq(self, listener: Callable[[int], None]) -> None:
        for db in self.shards:
            db.on_commit_seq(listener)

    # -- 2PC decision log --------------------------------------------------

    def _record_decision(
        self, gtid: str, outcome: str, shards: list[int]
    ) -> None:
        """Durably record the commit decision — the 2PC commit point.

        Group-committed: concurrent deciders queue their records and the
        baton holder flushes the whole queue with a single write+fsync,
        so the decision log's one-file fsync stream stops being a global
        serial bottleneck under concurrent cross-shard load.  Returns
        only once *this* decision is on disk.
        """
        if self._decision_log is None:
            return
        done = threading.Event()
        failure: list[BaseException] = []
        with self._decision_mutex:
            self._decision_queue.append((gtid, outcome, shards, done, failure))
        while not done.is_set():
            with self._decision_lock:
                if done.is_set():
                    break  # a previous baton holder flushed us
                with self._decision_mutex:
                    batch = self._decision_queue
                    self._decision_queue = []
                try:
                    self._decision_log.append_decisions(
                        [(g, o, s) for g, o, s, _done, _fail in batch]
                    )
                except BaseException as exc:
                    for _g, _o, _s, entry_done, entry_fail in batch:
                        entry_fail.append(exc)
                        entry_done.set()
                else:
                    for _g, _o, _s, entry_done, _fail in batch:
                        entry_done.set()
        if failure:
            raise failure[0]

    def _load_decisions(self) -> dict[str, str]:
        """gtid → outcome from the decision log, torn tail healed."""
        if self._decision_log is None:
            return {}
        decisions: dict[str, str] = {}
        for record in self._decision_log.records():
            if record.get("kind") != "decision":
                continue
            gtid = record.get("gtid")
            if isinstance(gtid, str):
                decisions[gtid] = record.get("outcome", "abort")
        self._decision_log.truncate_torn_tail()
        return decisions

    # -- autocommit conveniences -------------------------------------------
    #
    # Single-statement writes to a non-global table always live on
    # exactly one shard, so they skip the ShardedTransaction wrapper
    # entirely and ride the owning shard's own autocommit path: the
    # routing work (pk allocation, placement hash) happens *before* the
    # shard writer lock is taken, instead of inside the hold as a
    # wrapped transaction would do it.  Global tables (and the N==1
    # migration-check corner) still go through the wrapper.

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        placement = self.placement(table)
        if placement[0] == "global" and len(self.shards) > 1:
            with self.transaction() as txn:
                return txn.insert(table, values)
        values = dict(values)
        self._assign_pk(table, values)
        sid = self._route_insert(table, placement, values)
        self._count_routing("direct")
        return self.shards[sid].insert(table, values)

    def update(
        self, table: str, pk: Any, changes: dict[str, Any]
    ) -> dict[str, Any]:
        placement = self.placement(table)
        routed = placement[0] in ("project", "hash")
        if (placement[0] == "global" or (routed and placement[1] in changes)) \
                and len(self.shards) > 1:
            # Global fan-out, or a routing-column change that needs the
            # wrapper's cross-shard migration check.
            with self.transaction() as txn:
                return txn.update(table, pk, changes)
        sid = self._probe_shard(table, pk)
        if sid is None:
            raise RowNotFound(table, pk)
        self._count_routing("direct")
        return self.shards[sid].update(table, pk, changes)

    def delete(self, table: str, pk: Any) -> dict[str, Any]:
        if self.placement(table)[0] == "global" and len(self.shards) > 1:
            with self.transaction() as txn:
                return txn.delete(table, pk)
        sid = self._probe_shard(table, pk)
        if sid is None:
            raise RowNotFound(table, pk)
        self._count_routing("direct")
        return self.shards[sid].delete(table, pk)

    def get(self, table: str, pk: Any) -> dict[str, Any]:
        row = self.get_or_none(table, pk)
        if row is None:
            raise RowNotFound(table, pk)
        return row

    def get_or_none(self, table: str, pk: Any) -> dict[str, Any] | None:
        sid = self._probe_shard(table, pk)
        if sid is None:
            return None
        return self.shards[sid].get_or_none(table, pk)

    def query(self, table: str, *, snapshot=None) -> ShardedQuery:
        """Start a scatter-gather fluent query, optionally snapshot-pinned."""
        self.placement(table)  # raise early for unknown tables
        return ShardedQuery(self, table, snapshot=snapshot)

    def count(self, table: str) -> int:
        if self.placement(table)[0] == "global":
            return self.shards[0].count(table)
        return sum(db.count(table) for db in self.shards)

    def rows(self, table: str) -> Iterator[dict[str, Any]]:
        if self.placement(table)[0] == "global":
            yield from self.shards[0].rows(table)
            return
        for db in self.shards:
            yield from db.rows(table)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> ShardedSnapshot:
        """Pin one snapshot per shard, atomically vs cross-shard commits.

        The publish lock is shared with 2PC phase 2, so the vector can
        never observe half of a cross-shard transaction.  Independent
        single-shard commits on different shards carry no cross-shard
        ordering, so the vector makes no causal promise about them (each
        shard's view is individually consistent).
        """
        with self._publish_lock:
            with self._vector_lock:
                sid = self._vector_counter
                self._vector_counter += 1
                self._open_vectors += 1
            parts = [db.snapshot() for db in self.shards]
        return ShardedSnapshot(self, sid, parts)

    def _release_vector(self, sid: int) -> None:
        with self._vector_lock:
            self._open_vectors -= 1

    def open_snapshots(self) -> int:
        """Open per-shard snapshots, aggregated across every shard."""
        return sum(db.open_snapshots() for db in self.shards)

    def open_snapshot_vectors(self) -> int:
        with self._vector_lock:
            return self._open_vectors

    def version_horizon(self) -> int:
        """Most conservative (lowest) per-shard pruning horizon."""
        return min(db.version_horizon() for db in self.shards)

    def prune_versions(self) -> dict[str, int]:
        """Sweep every shard; per-table reclaim counts summed across shards."""
        merged: dict[str, int] = {}
        for db in self.shards:
            for name, reclaimed in db.prune_versions().items():
                merged[name] = merged.get(name, 0) + reclaimed
        return merged

    # -- durability & recovery ---------------------------------------------

    def checkpoint(self) -> list[Path]:
        return [db.checkpoint() for db in self.shards]

    def recover(self) -> dict[str, int]:
        """Recover every shard, resolving in-doubt 2PC transactions.

        The coordinator's decision log is loaded first (torn tail
        healed); each shard then recovers with a resolver that rules
        ``commit`` exactly when the decision log holds a commit decision
        for the prepare's gtid — presumed abort otherwise.  Because each
        shard makes its resolution durable in its own WAL, the decision
        log is reset afterwards: nothing is in doubt once every shard
        has recovered.
        """
        decisions = self._load_decisions()

        def resolve(gtid: str) -> str:
            return decisions.get(gtid, "abort")

        totals: dict[str, int] = {}
        for db in self.shards:
            stats = db.recover(resolve_prepared=resolve)
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        # Re-seed the coordinator pk allocators from what the shards
        # actually hold, so fresh inserts never collide across shards.
        for name, allocator in self._allocators.items():
            for db in self.shards:
                for pk in db.table(name).pks():
                    if isinstance(pk, int):
                        allocator.observe(pk)
        if self._decision_log is not None:
            self._decision_log.reset()
        return totals

    # -- maintenance -------------------------------------------------------

    def verify_integrity(self) -> list[str]:
        problems: list[str] = []
        for sid, db in enumerate(self.shards):
            problems.extend(
                f"shard {sid}: {problem}" for problem in db.verify_integrity()
            )
        if len(self.shards) > 1:
            for name, placement in self._placements.items():
                if placement[0] == "global":
                    reference = set(self.shards[0].table(name).pks())
                    for sid in range(1, len(self.shards)):
                        other = set(self.shards[sid].table(name).pks())
                        if other != reference:
                            problems.append(
                                f"global table {name!r}: shard {sid} "
                                f"diverges from shard 0 "
                                f"({len(other ^ reference)} row(s) differ)"
                            )
                else:
                    seen: dict[Any, int] = {}
                    for sid, db in enumerate(self.shards):
                        for pk in db.table(name).pks():
                            if pk in seen:
                                problems.append(
                                    f"table {name!r}: pk {pk!r} present on "
                                    f"shards {seen[pk]} and {sid}"
                                )
                            else:
                                seen[pk] = sid
        return problems

    def rebuild_indexes(self) -> None:
        for db in self.shards:
            db.rebuild_indexes()

    def shard_status(self) -> list[dict[str, Any]]:
        """Per-shard health row for ``repro shard status`` and /admin."""
        status = []
        for sid, db in enumerate(self.shards):
            stats = db.statistics()
            status.append(
                {
                    "shard": sid,
                    "committed_seq": stats["mvcc"]["committed_seq"],
                    "wal_bytes": stats["wal_bytes"],
                    "open_snapshots": stats["mvcc"]["open_snapshots"],
                    "version_horizon": stats["mvcc"]["version_horizon"],
                    "rows": stats["total_rows"],
                    "transactions": stats["transactions"],
                }
            )
        return status

    def statistics(self) -> dict[str, Any]:
        """Aggregated view matching ``Database.statistics()`` keys,
        plus a ``sharding`` section with the per-shard breakdown."""
        tables = {name: self.count(name) for name in self._placements}
        per_shard = [db.statistics() for db in self.shards]
        cache = {
            "entries": sum(s["query_cache"]["entries"] for s in per_shard),
            "capacity": sum(s["query_cache"]["capacity"] for s in per_shard),
            "lookups": {},
            "evictions": sum(
                s["query_cache"]["evictions"] for s in per_shard
            ),
        }
        for s in per_shard:
            for key, value in s["query_cache"]["lookups"].items():
                cache["lookups"][key] = cache["lookups"].get(key, 0) + value
        return {
            "tables": tables,
            "total_rows": sum(tables.values()),
            "wal_bytes": sum(s["wal_bytes"] for s in per_shard),
            "transactions": sum(s["transactions"] for s in per_shard),
            "durability": self.durability.spec(),
            "query_cache": cache,
            "mvcc": {
                "committed_seq": max(
                    s["mvcc"]["committed_seq"] for s in per_shard
                ),
                "open_snapshots": sum(
                    s["mvcc"]["open_snapshots"] for s in per_shard
                ),
                "version_horizon": min(
                    s["mvcc"]["version_horizon"] for s in per_shard
                ),
                "retained_versions": sum(
                    s["mvcc"]["retained_versions"] for s in per_shard
                ),
            },
            "sharding": {
                "shards": len(self.shards),
                "open_snapshot_vectors": self.open_snapshot_vectors(),
                "placements": {
                    name: placement[0]
                    for name, placement in self._placements.items()
                },
                "per_shard": self.shard_status(),
            },
        }

    @property
    def query_cache(self):
        """Shard 0's result cache (API compatibility; stats aggregate)."""
        return self.shards[0].query_cache

    @property
    def wal(self) -> "WriteAheadLog | None":
        """Shard 0's WAL — for single-shard compatibility surfaces only.

        Replication and tailing of a sharded deployment must go
        per-shard (``sdb.shard(i).wal``)."""
        return self.shards[0].wal

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        for db in self.shards:
            db.close()
        if self._decision_log is not None:
            self._decision_log.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
