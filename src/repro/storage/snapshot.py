"""Snapshot-isolated, lock-free read views.

A :class:`Snapshot` pins the database-wide commit sequence number at
open time and serves every read — point lookups, scans, index-backed
equality lookups, and fluent queries — from the row versions visible at
that number.  It **never acquires the writer lock**: readers stay wait
free while transactions commit, and a pinned scan sees either all of a
concurrent transaction's changes or none of them (it sees none, since
the snapshot predates the commit).

Isolation rests on the version chains maintained by
:class:`~repro.storage.table.Table`:

* every committed version is stamped with the commit sequence number
  that published it; uncommitted versions carry ``None`` and are
  invisible to every snapshot;
* commit stamps versions *before* publishing the new sequence number,
  so a snapshot that observes sequence ``s`` can resolve every version
  at or below ``s`` without synchronisation;
* version payloads are immutable after publication, so zero-copy reads
  can hold references across concurrent commits.

Open snapshots hold back version pruning: the database's horizon is the
oldest live snapshot's sequence number, and chains are only cut below
it.  Close snapshots promptly (use them as context managers) so storage
can reclaim superseded versions.

Index lookups opportunistically use the live secondary indexes — valid
whenever the table has not changed since the snapshot — guarded by the
table's seqlock epoch; when the table has moved on (or a mutation is in
flight), they fall back to a chain-walking scan, trading speed for the
same correctness.

Fluent queries built from a snapshot go through the same cost-based
planner as live queries; the statistics it prices plans with are the
live table's, which under the seqlock guard *are* the snapshot-version
statistics (the guard proves no mutation has happened since).  The
chosen plan is pinned — candidate pks are materialized while the guard
holds — so execution stays correct even if commits land before the rows
are resolved through the version chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import RowNotFound, SchemaError
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database
    from repro.storage.query import Query


class Snapshot:
    """An immutable read view over the whole database.

    Obtained via :meth:`Database.snapshot`; usable as a context manager.
    All reads are repeatable: the same call returns the same result for
    the lifetime of the snapshot, regardless of concurrent commits.
    """

    __slots__ = ("_db", "_sid", "_seq", "_closed")

    def __init__(self, database: "Database", sid: int, seq: int):
        self._db = database
        self._sid = sid
        self._seq = seq
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def seq(self) -> int:
        """The commit sequence number this view is pinned to."""
        return self._seq

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the snapshot, allowing versions behind it to be pruned.

        Idempotent.  Reads after close raise :class:`SchemaError`.
        """
        if not self._closed:
            self._closed = True
            self._db._release_snapshot(self._sid)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<Snapshot seq={self._seq} {state}>"

    def _check_open(self) -> None:
        if self._closed:
            raise SchemaError("snapshot is closed")

    def _table(self, name: str) -> Table:
        self._check_open()
        return self._db.table(name)

    # -- reads -------------------------------------------------------------

    def get(self, table: str, pk: Any) -> dict[str, Any]:
        """Return a copy of row *pk* as of this snapshot."""
        row = self._table(table).row_at(pk, self._seq)
        if row is None:
            raise RowNotFound(table, pk)
        return dict(row)

    def get_or_none(self, table: str, pk: Any) -> dict[str, Any] | None:
        row = self._table(table).row_at(pk, self._seq)
        return None if row is None else dict(row)

    def contains(self, table: str, pk: Any) -> bool:
        return self._table(table).row_at(pk, self._seq) is not None

    def scan(self, table: str) -> Iterator[dict[str, Any]]:
        """Yield copies of every row visible at this snapshot."""
        tbl = self._table(table)
        for _pk, row in tbl.items_at(self._seq):
            yield dict(row)

    def count(self, table: str) -> int:
        return self._table(table).count_at(self._seq)

    def pks(self, table: str) -> list[Any]:
        return [pk for pk, _row in self._table(table).items_at(self._seq)]

    def lookup(
        self, table: str, columns: "str | tuple[str, ...]", *values: Any
    ) -> list[dict[str, Any]]:
        """Equality lookup, index-backed when the index is still valid.

        ``columns`` may be one column name or a tuple (composite
        indexes); *values* matches it positionally.  Uses the live
        hash/unique index when the table has not changed since the
        snapshot (seqlock-guarded); otherwise falls back to a chain
        scan.  Either path returns the same rows.
        """
        if isinstance(columns, str):
            columns = (columns,)
        if len(columns) != len(values):
            raise SchemaError(
                f"lookup on {columns!r} got {len(values)} value(s)"
            )
        tbl = self._table(table)
        pks = self._index_pks(tbl, columns, tuple(values))
        rows: list[dict[str, Any]] = []
        if pks is not None:
            for pk in pks:
                row = tbl.row_at(pk, self._seq)
                if row is not None and all(
                    row.get(c) == v for c, v in zip(columns, values)
                ):
                    rows.append(dict(row))
            return rows
        for _pk, row in tbl.items_at(self._seq):
            if all(row.get(c) == v for c, v in zip(columns, values)):
                rows.append(dict(row))
        return rows

    def _index_pks(
        self, tbl: Table, columns: tuple[str, ...], key: tuple
    ) -> "set[Any] | None":
        """Candidate pks from a live index, or ``None`` when unusable.

        The live index reflects the *latest* state; it matches this
        snapshot only when the table has no committed change past our
        sequence number and no uncommitted change at all.  The seqlock
        epoch is read before and after: an odd or changed epoch means a
        writer raced us and the candidate set cannot be trusted.
        """
        epoch = tbl.mutation_epoch
        if epoch & 1 or tbl.dirty or tbl.version > self._seq:
            return None
        index = tbl.hash_index_for(columns) or tbl.unique_index_for(columns)
        if index is None and len(columns) == 1:
            sorted_index = tbl.sorted_index_for(columns[0])
            pks = None if sorted_index is None else sorted_index.lookup(key[0])
        elif index is None:
            return None
        else:
            pks = index.lookup(key)
        if pks is None or tbl.mutation_epoch != epoch:
            return None
        return pks

    def query(self, table: str) -> "Query":
        """Start a fluent query evaluated against this snapshot."""
        from repro.storage.query import Query

        return Query(self._table(table), snapshot=self)

    def statistics(self) -> dict[str, Any]:
        """Row counts visible at this snapshot (admin/debugging).

        Cheap (O(1) per table) while the tables have not moved past
        this snapshot; a table with newer commits is counted by walking
        its version chains — O(rows) for that table."""
        self._check_open()
        tables = {
            name: self._db.table(name).count_at(self._seq)
            for name in self._db.table_names()
        }
        return {
            "seq": self._seq,
            "tables": tables,
            "total_rows": sum(tables.values()),
        }
