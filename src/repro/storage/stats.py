"""Per-table column statistics for the cost-based query planner.

The planner prices candidate plans with three ingredients:

* **row counts** — the table's live count (O(1), maintained by the
  table itself);
* **distinct-value estimates (NDV)** — exact for indexed columns (the
  hash/ordered indexes know their distinct key counts in O(1)), and a
  reservoir-sample estimate for everything else;
* **min/max** for ordered columns — O(1) off the ordered indexes.

The reservoir here is the same Algorithm R the observability histograms
use (see :mod:`repro.obs.metrics`), re-instantiated per column with a
deterministic per-column seed so estimates are reproducible across
runs.  Sampling happens on the insert path only: deletes decrement the
value counters but leave the sample alone (a uniform sample of all
values ever inserted remains a usable NDV basis, and removal from a
reservoir is not well-defined).  Rollback symmetry is preserved because
the table routes undo through the same add/remove hooks.

**Persistence / recovery.**  Statistics are derived state, and both
recovery paths rebuild them for free: snapshot load and WAL replay
re-run every row through the normal insert hooks.  On top of that,
:meth:`TableStatistics.state` / :meth:`TableStatistics.restore` let the
database checkpoint embed the sampler state in the snapshot's meta
block, so a restart restores the *same* reservoirs (and therefore the
same NDV estimates and plan choices) instead of re-sampling in replay
order.
"""

from __future__ import annotations

import random
import zlib
from typing import Any

#: Values retained per column sample; matches the obs histograms'
#: reservoir size — big enough for stable NDV ratios, small enough to
#: serialize into every checkpoint.
RESERVOIR_SIZE = 256


def _value_token(value: Any) -> str:
    """Stable, JSON-safe token identifying *value* for distinct counting."""
    return f"{type(value).__name__}:{value!r}"


class ColumnStats:
    """Streaming statistics for one column (Algorithm R reservoir)."""

    __slots__ = ("column", "inserted", "removed", "nulls", "_reservoir", "_rng")

    def __init__(self, column: str):
        self.column = column
        #: Non-null values ever inserted / removed (deletes + update
        #: before-images).  ``inserted - removed`` tracks live non-null
        #: values.
        self.inserted = 0
        self.removed = 0
        self.nulls = 0
        self._reservoir: list[str] = []
        # Deterministic per-column stream: same data -> same sample ->
        # same plan choice, across processes and restarts.
        self._rng = random.Random(zlib.crc32(column.encode("utf-8")))

    def on_insert(self, value: Any) -> None:
        if value is None:
            self.nulls += 1
            return
        self.inserted += 1
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(_value_token(value))
        else:
            victim = self._rng.randrange(self.inserted)
            if victim < RESERVOIR_SIZE:
                self._reservoir[victim] = _value_token(value)

    def on_remove(self, value: Any) -> None:
        if value is None:
            self.nulls = max(0, self.nulls - 1)
        else:
            self.removed += 1

    def distinct_estimate(self, live_rows: int) -> int:
        """Estimated distinct non-null values among *live_rows* rows.

        With the sample still exhaustive (fewer inserts than the
        reservoir holds) the count is exact for the inserted stream.
        Beyond that, a ratio estimator: if the sample is all-distinct,
        assume the column is key-like (NDV ≈ live rows); otherwise scale
        the sample's distinct ratio to the live row count, floored by
        the sample's own distinct count (NDV can never be below what we
        have literally seen, modulo deletes).
        """
        if live_rows <= 0 or self.inserted == 0:
            return 0
        sample_distinct = len(set(self._reservoir))
        if self.inserted <= RESERVOIR_SIZE:
            return max(1, min(sample_distinct, live_rows))
        sample_size = len(self._reservoir)
        if sample_distinct >= sample_size:
            return max(1, live_rows)
        estimate = int(round(sample_distinct / sample_size * live_rows))
        return max(1, min(max(estimate, sample_distinct), live_rows))

    # -- persistence -------------------------------------------------------

    def state(self) -> dict[str, Any]:
        return {
            "inserted": self.inserted,
            "removed": self.removed,
            "nulls": self.nulls,
            "reservoir": list(self._reservoir),
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.inserted = int(state.get("inserted", 0))
        self.removed = int(state.get("removed", 0))
        self.nulls = int(state.get("nulls", 0))
        reservoir = state.get("reservoir", [])
        self._reservoir = [str(v) for v in reservoir][:RESERVOIR_SIZE]


class TableStatistics:
    """Column statistics for one table, fed by the row add/remove hooks."""

    def __init__(self, columns: "list[str]"):
        self._columns: dict[str, ColumnStats] = {
            name: ColumnStats(name) for name in columns
        }

    def add_column(self, name: str) -> None:
        """Track a column added by schema evolution."""
        if name not in self._columns:
            self._columns[name] = ColumnStats(name)

    def column(self, name: str) -> "ColumnStats | None":
        return self._columns.get(name)

    def on_insert(self, row: dict[str, Any]) -> None:
        for name, stats in self._columns.items():
            stats.on_insert(row.get(name))

    def on_remove(self, row: dict[str, Any]) -> None:
        for name, stats in self._columns.items():
            stats.on_remove(row.get(name))

    def on_backfill(self, column: str, values: "list[Any]") -> None:
        """Feed a schema-evolution backfill into *column*'s sample."""
        stats = self._columns.get(column)
        if stats is not None:
            for value in values:
                stats.on_insert(value)

    def distinct_estimate(self, column: str, live_rows: int) -> int:
        stats = self._columns.get(column)
        if stats is None:
            return max(1, live_rows)
        return stats.distinct_estimate(live_rows)

    def null_fraction(self, column: str) -> float:
        stats = self._columns.get(column)
        if stats is None:
            return 0.0
        live = stats.inserted - stats.removed + stats.nulls
        if live <= 0:
            return 0.0
        return min(1.0, max(0.0, stats.nulls / live))

    # -- persistence -------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """JSON-safe sampler state for the checkpoint meta block."""
        return {name: stats.state() for name, stats in self._columns.items()}

    def restore(self, state: dict[str, Any]) -> None:
        for name, column_state in state.items():
            if isinstance(column_state, dict):
                self.add_column(name)
                self._columns[name].restore(column_state)
