"""The live table: row storage, constraint enforcement, index maintenance.

A :class:`Table` owns its rows (``pk -> row dict``) plus every index
declared for it.  All constraint checks happen here, *before* any state
changes, so a failed write leaves rows and indexes untouched.  Foreign
keys are validated through the owning :class:`~repro.storage.database.Database`
because they span tables.

Mutations return :class:`UndoEntry` records; transactions replay them in
reverse on rollback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import (
    CheckViolation,
    ForeignKeyViolation,
    NotNullViolation,
    PrimaryKeyViolation,
    RowNotFound,
    SchemaError,
)
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.types import ColumnType, coerce
from repro.util.ids import IdAllocator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database


@dataclass(frozen=True)
class UndoEntry:
    """Inverse of one applied mutation.

    ``op`` is the operation that *was applied*; rollback performs its
    inverse: an ``insert`` is undone by deleting ``pk``, a ``delete`` by
    re-inserting ``before``, an ``update`` by restoring ``before``.
    """

    op: str  # "insert" | "update" | "delete"
    table: str
    pk: Any
    before: dict[str, Any] | None
    after: dict[str, Any] | None


class Table:
    """One table of a :class:`Database`.  Not constructed directly."""

    def __init__(self, schema: TableSchema, database: "Database"):
        self.schema = schema
        self._db = database
        self._rows: dict[Any, dict[str, Any]] = {}
        self._ids = IdAllocator()
        self._pk = schema.primary_key.name
        self._auto_pk = schema.primary_key.type is ColumnType.INT

        # Query-cache bookkeeping.  ``_version`` identifies the last
        # *committed* state and keys cached query results; it only moves
        # forward when a transaction commits (or recovery finishes), so a
        # rollback leaves it untouched and pre-transaction cache entries
        # stay valid.  ``_mutation_epoch`` counts every state change —
        # including undos — so an in-flight query can detect that the
        # table moved under it and must not publish its result.
        # ``_pending_ops`` counts applied-but-uncommitted mutations;
        # while non-zero the table is dirty and the cache is bypassed.
        self._version = 0
        self._mutation_epoch = 0
        self._pending_ops = 0

        # Unique constraints become unique hash indexes (PK handled by the
        # row dict itself).  Plain/composite indexes become hash indexes;
        # every single-column plain index also gets a sorted twin so range
        # predicates and ORDER BY can use it.
        self._unique_indexes: list[HashIndex] = []
        self._hash_indexes: dict[tuple[str, ...], HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}

        for col in schema.columns:
            if col.unique and not col.primary_key:
                self._unique_indexes.append(
                    HashIndex(schema.name, (col.name,), unique=True)
                )
        for group in schema.unique_together:
            self._unique_indexes.append(
                HashIndex(schema.name, tuple(group), unique=True)
            )
        for spec in schema.index_specs():
            if spec not in self._hash_indexes:
                self._hash_indexes[spec] = HashIndex(schema.name, spec)
            if len(spec) == 1 and spec[0] not in self._sorted_indexes:
                self._sorted_indexes[spec[0]] = SortedIndex(schema.name, spec[0])

        # Index-maintenance instruments, cached per table so the per-row
        # hot path is a single counter increment.
        obs = database.obs
        index_ops = obs.metrics.counter(
            "storage_index_ops_total",
            "Index entries written/removed during row maintenance",
            labels=("table", "action"),
        )
        self._m_index_add = index_ops.labels(table=schema.name, action="add")
        self._m_index_remove = index_ops.labels(
            table=schema.name, action="remove"
        )
        self._m_index_build = obs.metrics.histogram(
            "storage_index_build_seconds",
            "Full index (re)builds over existing rows",
            labels=("table",),
        ).labels(table=schema.name)

    # -- basic access ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def pk_column(self) -> str:
        return self._pk

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, pk: Any) -> bool:
        return pk in self._rows

    def get(self, pk: Any) -> dict[str, Any]:
        """Return a copy of the row with primary key *pk*."""
        try:
            return dict(self._rows[pk])
        except KeyError:
            raise RowNotFound(self.name, pk) from None

    def get_or_none(self, pk: Any) -> dict[str, Any] | None:
        row = self._rows.get(pk)
        return dict(row) if row is not None else None

    def rows(self) -> Iterator[dict[str, Any]]:
        """Yield copies of all rows in insertion order."""
        for row in list(self._rows.values()):
            yield dict(row)

    def pks(self) -> list[Any]:
        return list(self._rows)

    def raw_row(self, pk: Any) -> dict[str, Any] | None:
        """Internal zero-copy access for the query planner. Do not mutate."""
        return self._rows.get(pk)

    def raw_items(self) -> list[tuple[Any, dict[str, Any]]]:
        """Internal zero-copy ``(pk, row)`` pairs for read-only scans.

        Callers must not mutate the returned row dicts.
        """
        return list(self._rows.items())

    # -- versioning (query-cache keys) ----------------------------------------

    @property
    def version(self) -> int:
        """Monotonic version of the last committed state."""
        return self._version

    @property
    def mutation_epoch(self) -> int:
        """Bumped on every state change, committed or not (incl. undo)."""
        return self._mutation_epoch

    @property
    def dirty(self) -> bool:
        """True while an open transaction has uncommitted changes here."""
        return self._pending_ops > 0

    def _note_mutation(self) -> None:
        self._mutation_epoch += 1
        self._pending_ops += 1

    def _note_undo(self) -> None:
        self._mutation_epoch += 1
        if self._pending_ops > 0:
            self._pending_ops -= 1

    def commit_version(self) -> None:
        """Publish pending mutations as one new committed version.

        Called by the database at commit (and once after recovery); a
        rollback never calls this, so the version — and with it every
        cached result for the pre-transaction state — survives.
        """
        if self._pending_ops:
            self._pending_ops = 0
            self._version += 1

    def _bump_version(self) -> None:
        """Out-of-band invalidation for non-transactional changes
        (schema evolution); advances the committed version directly."""
        self._mutation_epoch += 1
        self._version += 1

    # -- validation helpers --------------------------------------------------

    def _normalize(self, values: dict[str, Any], *, for_insert: bool) -> dict[str, Any]:
        """Coerce values, apply defaults (insert only), reject unknown columns."""
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown column(s) {sorted(unknown)!r}"
            )
        row: dict[str, Any] = {}
        for col in self.schema.columns:
            if col.name in values:
                row[col.name] = coerce(values[col.name], col.type, column=col.name)
            elif for_insert:
                if col.primary_key and self._auto_pk:
                    continue  # allocated later
                row[col.name] = coerce(
                    col.default_value(), col.type, column=col.name
                )
        return row

    def _validate_row(self, row: dict[str, Any]) -> None:
        """NOT NULL, per-column checks, table checks. Raises on violation."""
        for col in self.schema.columns:
            value = row.get(col.name)
            if value is None:
                if not col.nullable:
                    raise NotNullViolation(
                        f"column {self.name}.{col.name} may not be NULL",
                        table=self.name,
                        constraint=f"nn_{self.name}_{col.name}",
                    )
                continue
            if col.check is not None and not col.check(value):
                raise CheckViolation(
                    f"column {self.name}.{col.name}: value {value!r} failed "
                    "its check",
                    table=self.name,
                    constraint=f"ck_{self.name}_{col.name}",
                )
        for check in self.schema.checks:
            if not check.predicate(row):
                raise CheckViolation(
                    f"table {self.name!r}: check {check.name!r} failed"
                    + (f" ({check.description})" if check.description else ""),
                    table=self.name,
                    constraint=check.name,
                )

    def _check_foreign_keys(self, row: dict[str, Any]) -> None:
        for col, fk in self.schema.foreign_keys():
            value = row.get(col.name)
            if value is None:
                continue
            target = self._db.table(fk.table)
            if value not in target:
                raise ForeignKeyViolation(
                    f"{self.name}.{col.name}={value!r} references missing "
                    f"{fk.table}.{fk.column}",
                    table=self.name,
                    constraint=f"fk_{self.name}_{col.name}",
                )

    def _check_unique(self, row: dict[str, Any], pk: Any) -> None:
        for index in self._unique_indexes:
            index.check_insert(row, pk)

    # -- index plumbing ------------------------------------------------------

    def _index_count(self) -> int:
        return (
            len(self._unique_indexes)
            + len(self._hash_indexes)
            + len(self._sorted_indexes)
        )

    def _index_add(self, row: dict[str, Any], pk: Any) -> None:
        for index in self._unique_indexes:
            index.add(row, pk)
        for index in self._hash_indexes.values():
            index.add(row, pk)
        for index in self._sorted_indexes.values():
            index.add(row, pk)
        self._m_index_add.inc(self._index_count())

    def _index_remove(self, row: dict[str, Any], pk: Any) -> None:
        for index in self._unique_indexes:
            index.remove(row, pk)
        for index in self._hash_indexes.values():
            index.remove(row, pk)
        for index in self._sorted_indexes.values():
            index.remove(row, pk)
        self._m_index_remove.inc(self._index_count())

    # -- mutations (called by Transaction) ------------------------------------

    def apply_insert(self, values: dict[str, Any]) -> tuple[dict[str, Any], UndoEntry]:
        """Validate and insert; returns ``(stored_row_copy, undo)``."""
        row = self._normalize(values, for_insert=True)
        if self._pk not in row or row[self._pk] is None:
            if not self._auto_pk:
                raise NotNullViolation(
                    f"table {self.name!r}: TEXT primary key must be supplied",
                    table=self.name,
                    constraint=f"nn_{self.name}_{self._pk}",
                )
            row[self._pk] = self._ids.allocate()
        pk = row[self._pk]
        if pk in self._rows:
            raise PrimaryKeyViolation(
                f"table {self.name!r}: primary key {pk!r} already exists",
                table=self.name,
                constraint=f"pk_{self.name}",
            )
        self._validate_row(row)
        self._check_unique(row, pk)
        self._check_foreign_keys(row)
        if self._auto_pk and isinstance(pk, int):
            self._ids.observe(pk)
        self._rows[pk] = row
        self._index_add(row, pk)
        self._note_mutation()
        return dict(row), UndoEntry("insert", self.name, pk, None, dict(row))

    def apply_update(
        self, pk: Any, changes: dict[str, Any]
    ) -> tuple[dict[str, Any], UndoEntry]:
        """Validate and update row *pk*; returns ``(new_row_copy, undo)``."""
        if pk not in self._rows:
            raise RowNotFound(self.name, pk)
        normalized = self._normalize(changes, for_insert=False)
        if self._pk in normalized and normalized[self._pk] != pk:
            raise SchemaError(
                f"table {self.name!r}: primary key of row {pk!r} cannot change"
            )
        before = dict(self._rows[pk])
        candidate = {**before, **normalized}
        self._validate_row(candidate)
        self._check_unique(candidate, pk)
        self._check_foreign_keys(candidate)
        self._index_remove(before, pk)
        self._rows[pk] = candidate
        self._index_add(candidate, pk)
        self._note_mutation()
        return dict(candidate), UndoEntry("update", self.name, pk, before, dict(candidate))

    def apply_delete(self, pk: Any) -> tuple[dict[str, Any], UndoEntry]:
        """Delete row *pk*; returns ``(deleted_row_copy, undo)``.

        Referential actions (restrict/cascade/set_null) are orchestrated
        by the transaction, which sees all tables.
        """
        if pk not in self._rows:
            raise RowNotFound(self.name, pk)
        before = self._rows.pop(pk)
        self._index_remove(before, pk)
        self._note_mutation()
        return dict(before), UndoEntry("delete", self.name, pk, dict(before), None)

    def apply_undo(self, entry: UndoEntry) -> None:
        """Reverse one previously applied mutation (rollback path)."""
        if entry.op == "insert":
            row = self._rows.pop(entry.pk)
            self._index_remove(row, entry.pk)
        elif entry.op == "delete":
            assert entry.before is not None
            self._rows[entry.pk] = dict(entry.before)
            self._index_add(entry.before, entry.pk)
        elif entry.op == "update":
            assert entry.before is not None
            current = self._rows[entry.pk]
            self._index_remove(current, entry.pk)
            self._rows[entry.pk] = dict(entry.before)
            self._index_add(entry.before, entry.pk)
        else:  # pragma: no cover - defensive
            raise SchemaError(f"unknown undo op {entry.op!r}")
        self._note_undo()

    # -- planner hooks --------------------------------------------------------

    def hash_index_for(self, columns: tuple[str, ...]) -> HashIndex | None:
        return self._hash_indexes.get(columns)

    def sorted_index_for(self, column: str) -> SortedIndex | None:
        return self._sorted_indexes.get(column)

    def unique_index_for(self, columns: tuple[str, ...]) -> HashIndex | None:
        for index in self._unique_indexes:
            if index.columns == columns:
                return index
        return None

    def indexed_columns(self) -> set[str]:
        """Single columns for which an equality index exists."""
        cols = {spec[0] for spec in self._hash_indexes if len(spec) == 1}
        cols |= {
            idx.columns[0] for idx in self._unique_indexes if len(idx.columns) == 1
        }
        return cols

    # -- schema evolution -----------------------------------------------------

    def add_column(self, column) -> None:
        """Add *column* to the live table, backfilling existing rows.

        Existing rows receive the column's default (evaluated per row
        for callable defaults).  A non-nullable column therefore needs
        a default when rows exist.  New unique/index structures are
        built over the backfilled data; a uniqueness conflict aborts
        the whole operation before any state changes.
        """
        from repro.storage.schema import TableSchema

        if self.schema.has_column(column.name):
            raise SchemaError(
                f"table {self.name!r} already has column {column.name!r}"
            )
        if column.primary_key:
            raise SchemaError("cannot add a primary-key column")
        backfill: dict[Any, Any] = {}
        for pk in self._rows:
            value = coerce(column.default_value(), column.type, column=column.name)
            if value is None and not column.nullable:
                raise SchemaError(
                    f"column {column.name!r} is NOT NULL but has no default "
                    "to backfill existing rows with"
                )
            backfill[pk] = value
        if column.unique and len(self._rows) > 1:
            non_null = [v for v in backfill.values() if v is not None]
            if len(non_null) != len(set(map(repr, non_null))):
                raise SchemaError(
                    f"cannot add unique column {column.name!r}: backfill "
                    "default would duplicate"
                )

        new_schema = TableSchema(
            name=self.schema.name,
            columns=list(self.schema.columns) + [column],
            indexes=list(self.schema.indexes),
            unique_together=list(self.schema.unique_together),
            checks=list(self.schema.checks),
            doc=self.schema.doc,
        )
        self.schema = new_schema
        for pk, value in backfill.items():
            self._rows[pk][column.name] = value
        self._bump_version()
        if column.unique:
            index = HashIndex(self.name, (column.name,), unique=True)
            for pk in self._rows:
                index.add(self._rows[pk], pk)
            self._unique_indexes.append(index)

    def add_index(self, columns: tuple[str, ...]) -> None:
        """Create a secondary index over existing data."""
        for name in columns:
            self.schema.column(name)  # validates existence
        if columns in self._hash_indexes:
            raise SchemaError(
                f"table {self.name!r} already has an index on {columns!r}"
            )
        timer = self._db.obs.timer()
        index = HashIndex(self.name, columns)
        for pk, row in self._rows.items():
            index.add(row, pk)
        self._hash_indexes[columns] = index
        if len(columns) == 1 and columns[0] not in self._sorted_indexes:
            sorted_index = SortedIndex(self.name, columns[0])
            for pk, row in self._rows.items():
                sorted_index.add(row, pk)
            self._sorted_indexes[columns[0]] = sorted_index
        self.schema.indexes = list(self.schema.indexes) + [columns]
        self._bump_version()
        self._m_index_build.observe(timer.elapsed())

    # -- maintenance ------------------------------------------------------------

    def rebuild_indexes(self) -> None:
        """Drop and rebuild every index from the row store (admin/repair)."""
        timer = self._db.obs.timer()
        for index in self._unique_indexes:
            index.clear()
        for index in self._hash_indexes.values():
            index.clear()
        for index in self._sorted_indexes.values():
            index.clear()
        for pk, row in self._rows.items():
            self._index_add(row, pk)
        self._m_index_build.observe(timer.elapsed())

    def verify_integrity(self) -> list[str]:
        """Cross-check rows against constraints and indexes; return problems."""
        problems: list[str] = []
        for pk, row in self._rows.items():
            try:
                self._validate_row(row)
            except CheckViolation as exc:
                problems.append(f"{self.name}[{pk}]: {exc}")
            except NotNullViolation as exc:
                problems.append(f"{self.name}[{pk}]: {exc}")
            try:
                self._check_foreign_keys(row)
            except ForeignKeyViolation as exc:
                problems.append(f"{self.name}[{pk}]: {exc}")
            for index in self._unique_indexes:
                if pk not in index.lookup(index.key_for(row)):
                    problems.append(
                        f"{self.name}[{pk}]: missing from unique index {index.name}"
                    )
            for index in self._hash_indexes.values():
                if pk not in index.lookup(index.key_for(row)):
                    problems.append(
                        f"{self.name}[{pk}]: missing from index {index.name}"
                    )
        return problems
