"""The live table: versioned row storage, constraints, index maintenance.

A :class:`Table` owns its rows and every index declared for it.  Since
the MVCC refactor a row is not a bare dict but the head of a small
**version chain**: each write prepends an immutable :class:`RowVersion`
(a delete prepends a tombstone), and commit stamps the new versions with
the database-wide commit sequence number.  Readers pinned to a
:class:`~repro.storage.snapshot.Snapshot` walk the chain to the newest
version visible at their sequence number and therefore never block on —
or observe — an in-flight writer.  Versions below the oldest live
snapshot are pruned lazily on the write path and swept when snapshots
close.

All constraint checks happen against the *latest* state, *before* any
chain changes, so a failed write leaves rows and indexes untouched.
Foreign keys are validated through the owning
:class:`~repro.storage.database.Database` because they span tables.

Mutations return :class:`UndoEntry` records; transactions replay them in
reverse on rollback, which pops the uncommitted chain heads.

Thread-safety model: there is exactly one writer at a time (the
database's writer lock) and any number of lock-free readers.  Readers
rely on three invariants:

* ``RowVersion`` payloads are never mutated after publication — an
  update builds a *new* dict;
* the ``pk -> head`` mapping is only replaced one key at a time, and
  readers materialize ``list(dict.items())`` (atomic under the GIL)
  before walking;
* ``mutation_epoch`` is a seqlock: odd while a mutation is in flight,
  so a reader can detect that an index lookup raced a writer and fall
  back to a chain scan.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import (
    CheckViolation,
    ForeignKeyViolation,
    NotNullViolation,
    PrimaryKeyViolation,
    RowNotFound,
    SchemaError,
)
from repro.storage.index import HashIndex, OrderedIndex, SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.stats import TableStatistics
from repro.storage.types import ColumnType, coerce
from repro.util.ids import IdAllocator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database


# -- read tracking ------------------------------------------------------------
#
# The portal's conditional-GET machinery needs to know which tables a
# request actually read, so it can derive an exact ``ETag`` from those
# tables' committed versions.  ``track_reads`` installs a per-thread
# sink; every table read path reports its table name into it.  The hot
# paths pay one module-global truthiness check while no probe is active
# anywhere in the process, so storage benchmarks are unaffected by the
# feature existing.

class _ReadProbe(threading.local):
    sink: "set[str] | None" = None


_read_probe = _ReadProbe()
_probe_users = 0
_probe_lock = threading.Lock()


@contextmanager
def track_reads(sink: "set[str]"):
    """Collect the names of every table read by this thread.

    Nests: the innermost sink wins for the duration, the outer one is
    restored on exit.  Only reads on the *calling* thread are observed.
    """
    global _probe_users
    previous = _read_probe.sink
    with _probe_lock:
        _probe_users += 1
    _read_probe.sink = sink
    try:
        yield sink
    finally:
        _read_probe.sink = previous
        with _probe_lock:
            _probe_users -= 1


def note_table_read(name: str) -> None:
    """Report a read of *name* to this thread's probe, if one is active."""
    if _probe_users:
        sink = _read_probe.sink
        if sink is not None:
            sink.add(name)


class RowVersion:
    """One immutable version of a row.

    ``row`` is the payload dict (``None`` marks a tombstone — the row
    was deleted at this version).  ``seq`` is the database-wide commit
    sequence number that published this version, or ``None`` while the
    owning transaction is still open (uncommitted versions are invisible
    to every snapshot).  ``older`` links to the previous version.

    The payload dict must never be mutated once the version is linked
    into a chain: lock-free readers hold direct references to it.
    """

    __slots__ = ("row", "seq", "older")

    def __init__(
        self,
        row: "dict[str, Any] | None",
        seq: "int | None",
        older: "RowVersion | None",
    ):
        self.row = row
        self.seq = seq
        self.older = older

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "tombstone" if self.row is None else "row"
        state = "uncommitted" if self.seq is None else f"seq={self.seq}"
        return f"<RowVersion {kind} {state} chained={self.older is not None}>"


@dataclass(frozen=True)
class UndoEntry:
    """Inverse of one applied mutation.

    ``op`` is the operation that *was applied*; rollback performs its
    inverse: an ``insert`` is undone by deleting ``pk``, a ``delete`` by
    re-inserting ``before``, an ``update`` by restoring ``before``.
    Under MVCC each of these amounts to popping the uncommitted head of
    the row's version chain.
    """

    op: str  # "insert" | "update" | "delete"
    table: str
    pk: Any
    before: dict[str, Any] | None
    after: dict[str, Any] | None


class Table:
    """One table of a :class:`Database`.  Not constructed directly."""

    def __init__(self, schema: TableSchema, database: "Database"):
        self.schema = schema
        self._db = database
        #: pk -> newest :class:`RowVersion` (head of the chain).
        self._rows: dict[Any, RowVersion] = {}
        #: Number of live (non-tombstone) heads; backs ``len(table)``.
        self._live = 0
        #: Uncommitted versions in application order; commit stamps them
        #: with the global sequence number, rollback pops them (LIFO).
        self._uncommitted: list[RowVersion] = []
        #: Upper bound on chain nodes a prune sweep could reclaim
        #: (superseded versions + tombstones).  Zero means a sweep would
        #: find nothing, so snapshot close skips the O(n) pass.
        self._reclaimable = 0
        self._ids = IdAllocator()
        self._pk = schema.primary_key.name
        self._auto_pk = schema.primary_key.type is ColumnType.INT

        # Query-cache bookkeeping.  ``_version`` identifies the last
        # *committed* state — since MVCC it is the database-wide commit
        # sequence number of the last commit that touched this table —
        # and keys cached query results; it only moves forward when a
        # transaction commits (or recovery finishes), so a rollback
        # leaves it untouched and pre-transaction cache entries stay
        # valid.  ``_mutation_epoch`` is a seqlock: bumped at the start
        # *and* end of every state change — including undos — so it is
        # odd mid-mutation and a reader can detect that the table moved
        # under it.  ``_pending_ops`` counts applied-but-uncommitted
        # mutations; while non-zero the table is dirty and the cache is
        # bypassed.
        self._version = 0
        self._mutation_epoch = 0
        self._pending_ops = 0

        # Unique constraints become unique hash indexes (PK handled by the
        # row dict itself).  Plain/composite indexes become hash indexes;
        # every single-column plain index also gets a sorted twin so range
        # predicates and ORDER BY can use it, and ``schema.ordered``
        # declares further ordered indexes (composites give the planner
        # prefix seeks and covering reads).  Indexes always reflect the
        # *latest* (possibly uncommitted) state; snapshot reads may only
        # use them when the table has not moved past the snapshot.
        self._unique_indexes: list[HashIndex] = []
        self._hash_indexes: dict[tuple[str, ...], HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        self._ordered_indexes: dict[tuple[str, ...], OrderedIndex] = {}

        for col in schema.columns:
            if col.unique and not col.primary_key:
                self._unique_indexes.append(
                    HashIndex(schema.name, (col.name,), unique=True)
                )
        for group in schema.unique_together:
            self._unique_indexes.append(
                HashIndex(schema.name, tuple(group), unique=True)
            )
        for spec in schema.index_specs():
            if spec not in self._hash_indexes:
                self._hash_indexes[spec] = HashIndex(schema.name, spec)
            if len(spec) == 1 and spec[0] not in self._sorted_indexes:
                self._sorted_indexes[spec[0]] = SortedIndex(schema.name, spec[0])
        for spec in schema.ordered_index_specs():
            if len(spec) == 1:
                if spec[0] not in self._sorted_indexes:
                    self._sorted_indexes[spec[0]] = SortedIndex(
                        schema.name, spec[0]
                    )
            elif spec not in self._ordered_indexes:
                self._ordered_indexes[spec] = OrderedIndex(schema.name, spec)

        # Planner statistics: reservoir samples per column; fed by the
        # row mutation paths (insert/update/delete and their undos), so
        # estimates track the latest state and rollback stays symmetric.
        self._stats = TableStatistics(list(schema.column_names))

        # Index-maintenance instruments, cached per table so the per-row
        # hot path is a single counter increment.
        obs = database.obs
        index_ops = obs.metrics.counter(
            "storage_index_ops_total",
            "Index entries written/removed during row maintenance",
            labels=("table", "action"),
        )
        self._m_index_add = index_ops.labels(table=schema.name, action="add")
        self._m_index_remove = index_ops.labels(
            table=schema.name, action="remove"
        )
        self._m_index_build = obs.metrics.histogram(
            "storage_index_build_seconds",
            "Full index (re)builds over existing rows",
            labels=("table",),
        ).labels(table=schema.name)
        self._m_pruned = obs.metrics.counter(
            "storage_versions_pruned_total",
            "Row versions reclaimed from MVCC chains",
            labels=("table",),
        ).labels(table=schema.name)

    # -- basic access ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def pk_column(self) -> str:
        return self._pk

    def __len__(self) -> int:
        if _probe_users:
            note_table_read(self.schema.name)
        return self._live

    def __contains__(self, pk: Any) -> bool:
        if _probe_users:
            note_table_read(self.schema.name)
        head = self._rows.get(pk)
        return head is not None and head.row is not None

    def get(self, pk: Any) -> dict[str, Any]:
        """Return a copy of the latest version of row *pk*."""
        if _probe_users:
            note_table_read(self.schema.name)
        head = self._rows.get(pk)
        if head is None or head.row is None:
            raise RowNotFound(self.name, pk)
        return dict(head.row)

    def get_or_none(self, pk: Any) -> dict[str, Any] | None:
        if _probe_users:
            note_table_read(self.schema.name)
        head = self._rows.get(pk)
        return dict(head.row) if head is not None and head.row is not None else None

    def rows(self) -> Iterator[dict[str, Any]]:
        """Yield copies of all live rows in insertion order."""
        if _probe_users:
            note_table_read(self.schema.name)
        for head in list(self._rows.values()):
            if head.row is not None:
                yield dict(head.row)

    def pks(self) -> list[Any]:
        if _probe_users:
            note_table_read(self.schema.name)
        return [pk for pk, head in list(self._rows.items()) if head.row is not None]

    def raw_row(self, pk: Any) -> dict[str, Any] | None:
        """Zero-copy access to the *latest* version's payload.

        Contract: the returned dict is an immutable version payload —
        writers never mutate it in place (an update publishes a new
        dict), so holding a reference across a concurrent commit is
        safe.  Callers must treat it as read-only and must not assume it
        reflects committed state (the latest version may belong to an
        open transaction); isolation-sensitive callers read through a
        pinned :class:`~repro.storage.snapshot.Snapshot` / :meth:`row_at`
        instead.
        """
        if _probe_users:
            note_table_read(self.schema.name)
        head = self._rows.get(pk)
        return head.row if head is not None else None

    def raw_items(self) -> list[tuple[Any, dict[str, Any]]]:
        """Zero-copy ``(pk, row)`` pairs of the latest live versions.

        Same contract as :meth:`raw_row`: payloads are immutable version
        dicts (never mutated after publication, safe to hold without
        copying, must not be written to), and the view is the *latest*
        state, which may include uncommitted changes of an open
        transaction.  Snapshot-isolated scans use :meth:`items_at`.
        """
        if _probe_users:
            note_table_read(self.schema.name)
        return [
            (pk, head.row)
            for pk, head in list(self._rows.items())
            if head.row is not None
        ]

    # -- snapshot reads (lock-free) -------------------------------------------

    @staticmethod
    def _visible_at(head: "RowVersion | None", seq: int) -> "RowVersion | None":
        """Newest version of a chain committed at or before *seq*."""
        node = head
        while node is not None:
            committed = node.seq
            if committed is not None and committed <= seq:
                return node
            node = node.older
        return None

    def row_at(self, pk: Any, seq: int) -> dict[str, Any] | None:
        """The payload of row *pk* as of commit sequence *seq*.

        Zero-copy (same immutability contract as :meth:`raw_row`);
        returns ``None`` for rows that did not exist — or were deleted —
        at that point.  Never takes any lock.
        """
        if _probe_users:
            note_table_read(self.schema.name)
        node = self._visible_at(self._rows.get(pk), seq)
        return None if node is None else node.row

    def items_at(self, seq: int) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Zero-copy ``(pk, row)`` pairs visible at commit sequence *seq*.

        The pk set is materialized atomically (GIL) before walking, so a
        concurrent writer can neither tear the iteration nor raise
        ``dict changed size``; rows the writer commits afterwards carry
        a higher sequence number and stay invisible.
        """
        if _probe_users:
            note_table_read(self.schema.name)
        for pk, head in list(self._rows.items()):
            node = self._visible_at(head, seq)
            if node is not None and node.row is not None:
                yield pk, node.row

    def count_at(self, seq: int) -> int:
        """Number of rows visible at commit sequence *seq*.

        O(1) while the table has not moved past *seq* (the live count
        equals the snapshot count, seqlock-verified); otherwise a full
        chain-walking pass — snapshot ``statistics()``/``explain()`` on
        a table with newer commits pay O(rows).
        """
        epoch = self._mutation_epoch
        if not (epoch & 1) and self._pending_ops == 0 and self._version <= seq:
            live = self._live
            if self._mutation_epoch == epoch:
                return live
        return sum(1 for _ in self.items_at(seq))

    # -- versioning (query-cache keys, seqlock) --------------------------------

    @property
    def version(self) -> int:
        """Commit sequence number of the last committed change here."""
        return self._version

    @property
    def mutation_epoch(self) -> int:
        """Seqlock epoch: bumped entering *and* leaving every state
        change (committed or not, incl. undo), so it is odd while a
        mutation is in flight and even when the table is stable."""
        return self._mutation_epoch

    @property
    def dirty(self) -> bool:
        """True while an open transaction has uncommitted changes here."""
        return self._pending_ops > 0

    def _begin_change(self) -> None:
        self._mutation_epoch += 1

    def _end_change(self) -> None:
        self._mutation_epoch += 1
        self._pending_ops += 1

    def _end_undo(self) -> None:
        self._mutation_epoch += 1
        if self._pending_ops > 0:
            self._pending_ops -= 1

    def commit_version(self, seq: int) -> None:
        """Publish pending mutations as one new committed version.

        Called by the database at commit (and once after recovery) with
        the new global commit sequence number; stamps every uncommitted
        version so snapshots at or above *seq* see them.  A rollback
        never calls this, so the version — and with it every cached
        result for the pre-transaction state — survives.

        Publication is seqlock-guarded: the epoch goes odd for the
        duration, and ``_version`` moves before ``_pending_ops`` clears.
        Otherwise a lock-free reader racing this window could observe
        an even epoch, ``dirty`` False, and a stale ``version`` all at
        once — and wrongly trust the live indexes, which already
        reflect this commit's deletes and updates.
        """
        if self._pending_ops:
            self._mutation_epoch += 1
            for node in self._uncommitted:
                node.seq = seq
            self._uncommitted.clear()
            self._version = seq
            self._pending_ops = 0
            self._mutation_epoch += 1

    def adopt_version(self, seq: int) -> None:
        """Move this table's committed version forward to *seq* without
        publishing any row change.

        Used by replica bootstrap to mirror the *primary's* per-table
        version vector exactly: a table whose last committed change on
        the primary was at ``seq`` must report the same version here, or
        ``ETag``s derived from the vector would spuriously differ across
        replica routing.  Caller holds the writer lock; never moves the
        version backwards and never touches a dirty table (those are
        stamped by :meth:`commit_version`).
        """
        if seq > self._version and not self._pending_ops:
            self._mutation_epoch += 1
            self._version = seq
            self._mutation_epoch += 1

    def _publish_out_of_band(self) -> int:
        """Reserve a commit sequence number for non-transactional
        changes (schema evolution) and move this table's version to it.
        Caller holds the writer lock and must hand the number to
        ``Database._publish_commit_seq`` once any new versions are
        linked (stamp-then-publish, so lock-free snapshot opens never
        observe a half-applied migration)."""
        seq = self._db._reserve_commit_seq()
        self._version = seq
        return seq

    # -- version pruning ---------------------------------------------------------

    def _truncate_chain(self, head: RowVersion, horizon: int) -> int:
        """Cut *head*'s chain below the newest version visible at
        *horizon*; returns the number of nodes dropped.  Safe against
        concurrent readers: every live snapshot sits at or above the
        horizon, so the kept node is the oldest any reader can need."""
        node = head
        while node is not None and (node.seq is None or node.seq > horizon):
            node = node.older
        if node is None or node.older is None:
            return 0
        dropped = 0
        cursor = node.older
        node.older = None
        while cursor is not None:
            dropped += 1
            cursor = cursor.older
        return dropped

    def prune_versions(self, horizon: int) -> int:
        """Sweep every chain, dropping versions below *horizon* and
        removing fully-dead tombstone entries.  Caller holds the writer
        lock.  Returns the number of chain nodes reclaimed."""
        if self._reclaimable == 0:
            return 0
        dropped = 0
        reclaimable = 0
        for pk in list(self._rows):
            head = self._rows[pk]
            dropped += self._truncate_chain(head, horizon)
            if (
                head.row is None
                and head.older is None
                and head.seq is not None
                and head.seq <= horizon
            ):
                # Committed tombstone with no history left and no
                # snapshot that could still see the row: the chain is
                # fully dead.
                del self._rows[pk]
                dropped += 1
            else:
                node = head
                while node is not None:
                    if node.older is not None or node.row is None:
                        reclaimable += 1
                    node = node.older
        self._reclaimable = reclaimable
        if dropped:
            self._m_pruned.inc(dropped)
        return dropped

    def version_chain_length(self, pk: Any) -> int:
        """Number of retained versions for *pk* (0 = unknown pk)."""
        length = 0
        node = self._rows.get(pk)
        while node is not None:
            length += 1
            node = node.older
        return length

    # -- validation helpers --------------------------------------------------

    def _normalize(self, values: dict[str, Any], *, for_insert: bool) -> dict[str, Any]:
        """Coerce values, apply defaults (insert only), reject unknown columns."""
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown column(s) {sorted(unknown)!r}"
            )
        row: dict[str, Any] = {}
        for col in self.schema.columns:
            if col.name in values:
                row[col.name] = coerce(values[col.name], col.type, column=col.name)
            elif for_insert:
                if col.primary_key and self._auto_pk:
                    continue  # allocated later
                row[col.name] = coerce(
                    col.default_value(), col.type, column=col.name
                )
        return row

    def _validate_row(self, row: dict[str, Any]) -> None:
        """NOT NULL, per-column checks, table checks. Raises on violation."""
        for col in self.schema.columns:
            value = row.get(col.name)
            if value is None:
                if not col.nullable:
                    raise NotNullViolation(
                        f"column {self.name}.{col.name} may not be NULL",
                        table=self.name,
                        constraint=f"nn_{self.name}_{col.name}",
                    )
                continue
            if col.check is not None and not col.check(value):
                raise CheckViolation(
                    f"column {self.name}.{col.name}: value {value!r} failed "
                    "its check",
                    table=self.name,
                    constraint=f"ck_{self.name}_{col.name}",
                )
        for check in self.schema.checks:
            if not check.predicate(row):
                raise CheckViolation(
                    f"table {self.name!r}: check {check.name!r} failed"
                    + (f" ({check.description})" if check.description else ""),
                    table=self.name,
                    constraint=check.name,
                )

    def _check_foreign_keys(self, row: dict[str, Any]) -> None:
        for col, fk in self.schema.foreign_keys():
            value = row.get(col.name)
            if value is None:
                continue
            target = self._db.table(fk.table)
            if value not in target:
                raise ForeignKeyViolation(
                    f"{self.name}.{col.name}={value!r} references missing "
                    f"{fk.table}.{fk.column}",
                    table=self.name,
                    constraint=f"fk_{self.name}_{col.name}",
                )

    def _check_unique(self, row: dict[str, Any], pk: Any) -> None:
        for index in self._unique_indexes:
            index.check_insert(row, pk)

    # -- index plumbing ------------------------------------------------------

    def _index_count(self) -> int:
        return (
            len(self._unique_indexes)
            + len(self._hash_indexes)
            + len(self._sorted_indexes)
            + len(self._ordered_indexes)
        )

    def _index_add(self, row: dict[str, Any], pk: Any) -> None:
        for index in self._unique_indexes:
            index.add(row, pk)
        for index in self._hash_indexes.values():
            index.add(row, pk)
        for index in self._sorted_indexes.values():
            index.add(row, pk)
        for index in self._ordered_indexes.values():
            index.add(row, pk)
        self._m_index_add.inc(self._index_count())

    def _index_remove(self, row: dict[str, Any], pk: Any) -> None:
        for index in self._unique_indexes:
            index.remove(row, pk)
        for index in self._hash_indexes.values():
            index.remove(row, pk)
        for index in self._sorted_indexes.values():
            index.remove(row, pk)
        for index in self._ordered_indexes.values():
            index.remove(row, pk)
        self._m_index_remove.inc(self._index_count())

    # -- mutations (called by Transaction) ------------------------------------

    def apply_insert(self, values: dict[str, Any]) -> tuple[dict[str, Any], UndoEntry]:
        """Validate and insert; returns ``(stored_row_copy, undo)``."""
        row = self._normalize(values, for_insert=True)
        if self._pk not in row or row[self._pk] is None:
            if not self._auto_pk:
                raise NotNullViolation(
                    f"table {self.name!r}: TEXT primary key must be supplied",
                    table=self.name,
                    constraint=f"nn_{self.name}_{self._pk}",
                )
            row[self._pk] = self._ids.allocate()
        pk = row[self._pk]
        head = self._rows.get(pk)
        if head is not None and head.row is not None:
            raise PrimaryKeyViolation(
                f"table {self.name!r}: primary key {pk!r} already exists",
                table=self.name,
                constraint=f"pk_{self.name}",
            )
        self._validate_row(row)
        self._check_unique(row, pk)
        self._check_foreign_keys(row)
        if self._auto_pk and isinstance(pk, int):
            self._ids.observe(pk)
        self._begin_change()
        node = RowVersion(row, None, head)
        self._rows[pk] = node
        self._uncommitted.append(node)
        self._live += 1
        self._lazy_truncate(node)
        self._index_add(row, pk)
        self._stats.on_insert(row)
        self._end_change()
        return dict(row), UndoEntry("insert", self.name, pk, None, dict(row))

    def apply_update(
        self, pk: Any, changes: dict[str, Any]
    ) -> tuple[dict[str, Any], UndoEntry]:
        """Validate and update row *pk*; returns ``(new_row_copy, undo)``."""
        head = self._rows.get(pk)
        if head is None or head.row is None:
            raise RowNotFound(self.name, pk)
        normalized = self._normalize(changes, for_insert=False)
        if self._pk in normalized and normalized[self._pk] != pk:
            raise SchemaError(
                f"table {self.name!r}: primary key of row {pk!r} cannot change"
            )
        before = head.row
        candidate = {**before, **normalized}
        self._validate_row(candidate)
        self._check_unique(candidate, pk)
        self._check_foreign_keys(candidate)
        self._begin_change()
        self._index_remove(before, pk)
        node = RowVersion(candidate, None, head)
        self._rows[pk] = node
        self._uncommitted.append(node)
        self._reclaimable += 1
        self._lazy_truncate(node)
        self._index_add(candidate, pk)
        self._stats.on_remove(before)
        self._stats.on_insert(candidate)
        self._end_change()
        return dict(candidate), UndoEntry(
            "update", self.name, pk, dict(before), dict(candidate)
        )

    def apply_delete(self, pk: Any) -> tuple[dict[str, Any], UndoEntry]:
        """Delete row *pk*; returns ``(deleted_row_copy, undo)``.

        The chain gets a tombstone head so snapshots pinned before the
        delete keep seeing the row.  Referential actions
        (restrict/cascade/set_null) are orchestrated by the transaction,
        which sees all tables.
        """
        head = self._rows.get(pk)
        if head is None or head.row is None:
            raise RowNotFound(self.name, pk)
        before = head.row
        self._begin_change()
        self._index_remove(before, pk)
        node = RowVersion(None, None, head)
        self._rows[pk] = node
        self._uncommitted.append(node)
        self._live -= 1
        self._reclaimable += 2  # the tombstone plus the superseded version
        self._lazy_truncate(node)
        self._stats.on_remove(before)
        self._end_change()
        return dict(before), UndoEntry("delete", self.name, pk, dict(before), None)

    def _lazy_truncate(self, head: RowVersion) -> None:
        """Write-path pruning: cut this chain below the version horizon
        so chains stay short without waiting for a full sweep."""
        if head.older is None:
            return
        dropped = self._truncate_chain(head, self._db.version_horizon())
        if dropped:
            self._reclaimable = max(0, self._reclaimable - dropped)
            self._m_pruned.inc(dropped)

    def apply_undo(self, entry: UndoEntry) -> None:
        """Reverse one previously applied mutation (rollback path).

        Undo entries are replayed in reverse application order, so the
        chain head for ``entry.pk`` is always the uncommitted version
        that mutation created: undo pops it.
        """
        head = self._rows.get(entry.pk)
        assert head is not None and head.seq is None, (
            f"undo of {entry.op} on {self.name}[{entry.pk!r}] found a "
            "committed head; undo order violated"
        )
        assert self._uncommitted and self._uncommitted[-1] is head
        self._begin_change()
        self._uncommitted.pop()
        if entry.op == "insert":
            assert head.row is not None
            self._index_remove(head.row, entry.pk)
            self._stats.on_remove(head.row)
            if head.older is None:
                del self._rows[entry.pk]
            else:
                self._rows[entry.pk] = head.older
            self._live -= 1
        elif entry.op == "delete":
            older = head.older
            assert older is not None and older.row is not None
            self._rows[entry.pk] = older
            self._index_add(older.row, entry.pk)
            self._stats.on_insert(older.row)
            self._live += 1
            self._reclaimable = max(0, self._reclaimable - 2)
        elif entry.op == "update":
            older = head.older
            assert older is not None and older.row is not None
            assert head.row is not None
            self._index_remove(head.row, entry.pk)
            self._rows[entry.pk] = older
            self._index_add(older.row, entry.pk)
            self._stats.on_remove(head.row)
            self._stats.on_insert(older.row)
            self._reclaimable = max(0, self._reclaimable - 1)
        else:  # pragma: no cover - defensive
            raise SchemaError(f"unknown undo op {entry.op!r}")
        self._end_undo()

    # -- planner hooks --------------------------------------------------------

    def hash_index_for(self, columns: tuple[str, ...]) -> HashIndex | None:
        return self._hash_indexes.get(columns)

    def sorted_index_for(self, column: str) -> SortedIndex | None:
        return self._sorted_indexes.get(column)

    def ordered_index_for(self, columns: tuple[str, ...]) -> OrderedIndex | None:
        """The ordered index over exactly *columns*, if one exists."""
        if len(columns) == 1:
            return self._sorted_indexes.get(columns[0])
        return self._ordered_indexes.get(columns)

    def ordered_indexes(self) -> "list[OrderedIndex]":
        """Every ordered index (single-column twins + declared composites)."""
        return list(self._sorted_indexes.values()) + list(
            self._ordered_indexes.values()
        )

    def hash_indexes(self) -> "list[HashIndex]":
        """Every non-unique hash index (planner candidate enumeration)."""
        return list(self._hash_indexes.values())

    def unique_index_for(self, columns: tuple[str, ...]) -> HashIndex | None:
        for index in self._unique_indexes:
            if index.columns == columns:
                return index
        return None

    def indexed_columns(self) -> set[str]:
        """Single columns for which an equality index exists."""
        cols = {spec[0] for spec in self._hash_indexes if len(spec) == 1}
        cols |= {
            idx.columns[0] for idx in self._unique_indexes if len(idx.columns) == 1
        }
        return cols

    def statistics(self) -> TableStatistics:
        """Per-column reservoir statistics (planner cardinality input)."""
        return self._stats

    def distinct_count(self, column: str) -> int:
        """Best-available distinct-value count for *column*.

        Prefers exact O(1) counts off an index over that column (hash or
        ordered), falling back to the reservoir-sample estimate.  The PK
        column is exact by construction (one value per live row).
        """
        if column == self._pk:
            return self._live
        index = self._hash_indexes.get((column,))
        if index is not None:
            return index.distinct_keys()
        sorted_index = self._sorted_indexes.get(column)
        if sorted_index is not None:
            return sorted_index.distinct_keys()
        for unique in self._unique_indexes:
            if unique.columns == (column,):
                return unique.distinct_keys()
        return self._stats.distinct_estimate(column, self._live)

    def column_min_max(self, column: str) -> "tuple[Any, Any] | None":
        """O(1) (min, max) for *column* via its ordered index, if any."""
        index = self._sorted_indexes.get(column)
        if index is None or len(index) == 0:
            return None
        low = index.min_key()
        high = index.max_key()
        if low is None or high is None:
            return None
        return low[0], high[0]

    def stats_state(self) -> dict[str, Any]:
        """JSON-safe sampler state for checkpoint persistence."""
        return self._stats.state()

    def restore_stats(self, state: dict[str, Any]) -> None:
        """Restore sampler state captured by :meth:`stats_state`."""
        self._stats = TableStatistics(list(self.schema.column_names))
        self._stats.restore(state)

    # -- schema evolution -----------------------------------------------------

    def add_column(self, column) -> None:
        """Add *column* to the live table, backfilling existing rows.

        Existing rows receive the column's default (evaluated per row
        for callable defaults).  A non-nullable column therefore needs
        a default when rows exist.  New unique/index structures are
        built over the backfilled data; a uniqueness conflict aborts
        the whole operation before any state changes.  Backfill
        publishes *new* row versions (payloads are immutable), so
        snapshots pinned before the migration keep the old shape.
        """
        from repro.storage.schema import TableSchema

        if self.schema.has_column(column.name):
            raise SchemaError(
                f"table {self.name!r} already has column {column.name!r}"
            )
        if column.primary_key:
            raise SchemaError("cannot add a primary-key column")
        backfill: dict[Any, Any] = {}
        for pk, head in self._rows.items():
            if head.row is None:
                continue
            value = coerce(column.default_value(), column.type, column=column.name)
            if value is None and not column.nullable:
                raise SchemaError(
                    f"column {column.name!r} is NOT NULL but has no default "
                    "to backfill existing rows with"
                )
            backfill[pk] = value
        if column.unique and self._live > 1:
            non_null = [v for v in backfill.values() if v is not None]
            if len(non_null) != len(set(map(repr, non_null))):
                raise SchemaError(
                    f"cannot add unique column {column.name!r}: backfill "
                    "default would duplicate"
                )

        new_schema = TableSchema(
            name=self.schema.name,
            columns=list(self.schema.columns) + [column],
            indexes=list(self.schema.indexes),
            ordered=list(self.schema.ordered),
            unique_together=list(self.schema.unique_together),
            checks=list(self.schema.checks),
            doc=self.schema.doc,
        )
        self.schema = new_schema
        self._stats.add_column(column.name)
        self._stats.on_backfill(column.name, list(backfill.values()))
        self._begin_change()
        seq = self._publish_out_of_band()
        for pk, value in backfill.items():
            head = self._rows[pk]
            self._rows[pk] = RowVersion(
                {**head.row, column.name: value}, seq, head
            )
            self._reclaimable += 1
        self._mutation_epoch += 1  # close the seqlock without going dirty
        self._db._publish_commit_seq(seq)
        if column.unique:
            index = HashIndex(self.name, (column.name,), unique=True)
            for pk, head in self._rows.items():
                if head.row is not None:
                    index.add(head.row, pk)
            self._unique_indexes.append(index)

    def add_index(self, columns: tuple[str, ...], *, ordered: bool = False) -> None:
        """Create a secondary index over existing data.

        With ``ordered=True`` a composite ordered index is built instead
        of a hash index, giving the planner prefix seeks and covering
        reads over *columns* (single-column ordered indexes come for
        free with plain indexes, so ``ordered`` matters for composites).
        """
        for name in columns:
            self.schema.column(name)  # validates existence
        timer = self._db.obs.timer()
        if ordered and len(columns) > 1:
            if columns in self._ordered_indexes:
                raise SchemaError(
                    f"table {self.name!r} already has an ordered index on "
                    f"{columns!r}"
                )
            self._begin_change()
            ordered_index = OrderedIndex(self.name, columns)
            for pk, head in self._rows.items():
                if head.row is not None:
                    ordered_index.add(head.row, pk)
            self._ordered_indexes[columns] = ordered_index
            self.schema.ordered = list(self.schema.ordered) + [columns]
            self._db._publish_commit_seq(self._publish_out_of_band())
            self._mutation_epoch += 1
            self._m_index_build.observe(timer.elapsed())
            return
        if columns in self._hash_indexes:
            raise SchemaError(
                f"table {self.name!r} already has an index on {columns!r}"
            )
        self._begin_change()
        index = HashIndex(self.name, columns)
        for pk, head in self._rows.items():
            if head.row is not None:
                index.add(head.row, pk)
        self._hash_indexes[columns] = index
        if len(columns) == 1 and columns[0] not in self._sorted_indexes:
            sorted_index = SortedIndex(self.name, columns[0])
            for pk, head in self._rows.items():
                if head.row is not None:
                    sorted_index.add(head.row, pk)
            self._sorted_indexes[columns[0]] = sorted_index
        self.schema.indexes = list(self.schema.indexes) + [columns]
        self._db._publish_commit_seq(self._publish_out_of_band())
        self._mutation_epoch += 1
        self._m_index_build.observe(timer.elapsed())

    # -- maintenance ------------------------------------------------------------

    def rebuild_indexes(self) -> None:
        """Drop and rebuild every index from the row store (admin/repair)."""
        timer = self._db.obs.timer()
        self._begin_change()
        for index in self._unique_indexes:
            index.clear()
        for index in self._hash_indexes.values():
            index.clear()
        for index in self._sorted_indexes.values():
            index.clear()
        for index in self._ordered_indexes.values():
            index.clear()
        for pk, head in self._rows.items():
            if head.row is not None:
                self._index_add(head.row, pk)
        self._mutation_epoch += 1
        self._m_index_build.observe(timer.elapsed())

    def verify_integrity(self) -> list[str]:
        """Cross-check rows against constraints and indexes; return problems."""
        problems: list[str] = []
        for pk, head in self._rows.items():
            row = head.row
            if row is None:
                continue
            try:
                self._validate_row(row)
            except CheckViolation as exc:
                problems.append(f"{self.name}[{pk}]: {exc}")
            except NotNullViolation as exc:
                problems.append(f"{self.name}[{pk}]: {exc}")
            try:
                self._check_foreign_keys(row)
            except ForeignKeyViolation as exc:
                problems.append(f"{self.name}[{pk}]: {exc}")
            for index in self._unique_indexes:
                if pk not in index.lookup(index.key_for(row)):
                    problems.append(
                        f"{self.name}[{pk}]: missing from unique index {index.name}"
                    )
            for index in self._hash_indexes.values():
                if pk not in index.lookup(index.key_for(row)):
                    problems.append(
                        f"{self.name}[{pk}]: missing from index {index.name}"
                    )
        return problems

    # -- statistics ------------------------------------------------------------

    def version_statistics(self) -> dict[str, int]:
        """Chain shape counters for the admin console / tests."""
        chains = 0
        nodes = 0
        tombstones = 0
        multi = 0
        for head in list(self._rows.values()):
            chains += 1
            if head.older is not None:
                multi += 1
            node = head
            while node is not None:
                nodes += 1
                if node.row is None:
                    tombstones += 1
                node = node.older
        return {
            "chains": chains,
            "nodes": nodes,
            "tombstones": tombstones,
            "superseded_versions": nodes - chains,
            "multi_version_chains": multi,
        }
