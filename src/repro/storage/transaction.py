"""Transactions: atomic multi-table mutations with rollback and savepoints.

The engine is single-writer: a database-wide re-entrant lock is held for
the duration of a transaction (acquired in
:meth:`~repro.storage.database.Database.transaction`).  Inside one, every
mutation is applied immediately to the live tables and an undo entry is
recorded; rollback replays the undo log in reverse, and commit hands the
redo log to the write-ahead log for durability.

Referential delete actions live here because they span tables: deleting a
row consults the database's reverse foreign-key map and either refuses
(``restrict``), recursively deletes (``cascade``), or nulls the
referencing column (``set_null``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    ForeignKeyViolation,
    RowNotFound,
    TransactionError,
    WalWriteError,
)
from repro.storage.table import UndoEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database

#: Signature of post-commit observers registered on the database.
CommitListener = Callable[[list[UndoEntry]], None]

_ACTIVE = "active"
_COMMITTED = "committed"
_ROLLED_BACK = "rolled_back"


class Transaction:
    """One atomic unit of work.  Obtain via ``Database.transaction()``."""

    def __init__(self, database: "Database", txn_id: int, *, timer=None):
        self._db = database
        self.txn_id = txn_id
        #: Monotonic timer started at begin; the database reads it at
        #: commit to record end-to-end transaction latency.
        self.timer = timer
        self._log: list[UndoEntry] = []
        self._state = _ACTIVE
        self._savepoints: dict[str, int] = {}

    # -- state ----------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._state == _ACTIVE

    def _require_active(self) -> None:
        if self._state != _ACTIVE:
            raise TransactionError(
                f"transaction #{self.txn_id} is {self._state}, not active"
            )

    # -- mutations --------------------------------------------------------------

    def insert(self, table: str, values: dict[str, Any]) -> dict[str, Any]:
        """Insert *values* into *table*; returns the stored row (with pk)."""
        self._require_active()
        row, undo = self._db.table(table).apply_insert(values)
        self._log.append(undo)
        return row

    def update(self, table: str, pk: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply *changes* to row *pk* of *table*; returns the new row."""
        self._require_active()
        row, undo = self._db.table(table).apply_update(pk, changes)
        self._log.append(undo)
        return row

    def delete(self, table: str, pk: Any) -> dict[str, Any]:
        """Delete row *pk* of *table*, honouring referential actions.

        Returns the deleted row.  ``restrict`` references raise
        :class:`ForeignKeyViolation` before anything is touched; cascades
        and set-nulls are applied depth-first and roll back with the rest
        of the transaction.
        """
        self._require_active()
        return self._delete_recursive(table, pk, chain=set())

    def _delete_recursive(
        self, table: str, pk: Any, *, chain: set[tuple[str, Any]]
    ) -> dict[str, Any]:
        key = (table, pk)
        if key in chain:
            # Cycle in cascade graph: this row is already being deleted.
            return self._db.table(table).get(pk)
        chain.add(key)

        tbl = self._db.table(table)
        if pk not in tbl:
            raise RowNotFound(table, pk)

        for ref_table, ref_column, on_delete in self._db.referencing(table):
            ref = self._db.table(ref_table)
            index = ref.hash_index_for((ref_column,))
            if index is not None:
                ref_pks = index.lookup((pk,))
            else:
                # Read-only scan: use the internal rows directly instead
                # of per-row copies.
                ref_pks = {
                    rpk
                    for rpk, row in ref.raw_items()
                    if row.get(ref_column) == pk
                }
            ref_pks = {
                rpk for rpk in ref_pks if (ref_table, rpk) not in chain
            }
            if not ref_pks:
                continue
            if on_delete == "restrict":
                raise ForeignKeyViolation(
                    f"cannot delete {table}[{pk!r}]: referenced by "
                    f"{len(ref_pks)} row(s) of {ref_table}.{ref_column}",
                    table=table,
                    constraint=f"fk_{ref_table}_{ref_column}",
                )
            if on_delete == "cascade":
                for rpk in sorted(ref_pks, key=repr):
                    self._delete_recursive(ref_table, rpk, chain=chain)
            elif on_delete == "set_null":
                for rpk in sorted(ref_pks, key=repr):
                    _, undo = ref.apply_update(rpk, {ref_column: None})
                    self._log.append(undo)

        row, undo = tbl.apply_delete(pk)
        self._log.append(undo)
        return row

    # -- reads (within the transaction's view) -----------------------------------

    def get(self, table: str, pk: Any) -> dict[str, Any]:
        """Read a row; the engine is single-writer so this sees own writes."""
        self._require_active()
        return self._db.table(table).get(pk)

    # -- savepoints ---------------------------------------------------------------

    def savepoint(self, name: str) -> None:
        """Mark the current position; a later rollback can return here."""
        self._require_active()
        self._savepoints[name] = len(self._log)

    def rollback_to(self, name: str) -> None:
        """Undo everything applied since :meth:`savepoint` *name*."""
        self._require_active()
        if name not in self._savepoints:
            raise TransactionError(f"no savepoint named {name!r}")
        mark = self._savepoints[name]
        while len(self._log) > mark:
            entry = self._log.pop()
            self._db.table(entry.table).apply_undo(entry)
        # Savepoints taken after the mark are now invalid.
        self._savepoints = {
            sp_name: pos for sp_name, pos in self._savepoints.items() if pos <= mark
        }

    # -- lifecycle -------------------------------------------------------------------

    def commit(self) -> None:
        """Make the transaction durable and release the writer lock."""
        self._require_active()
        self._state = _COMMITTED
        try:
            self._db._finish_commit(self)
        except WalWriteError as exc:
            # The WAL append failed while the writer lock was still
            # held: the in-memory state must not claim durability it
            # does not have.  Undo, release, and surface the cause.
            self._state = _ACTIVE
            self._rollback_log()
            self._state = _ROLLED_BACK
            self._db._finish_abort(self)
            raise (exc.__cause__ or exc) from None
        # Any other failure happens after the lock release (post-commit
        # listeners, group-fsync wait): the transaction is committed in
        # memory and cannot be unwound here, so the error propagates
        # with the committed state intact.

    def _mark_committed(self) -> None:
        """Flip to committed without running the commit path.

        Only the split phase-2 of a cross-shard commit uses this: the
        database has already made the commit record durable via
        :meth:`Database.commit_prepared_durable` and publishes /
        releases the writer lock itself.
        """
        self._require_active()
        self._state = _COMMITTED

    def rollback(self) -> None:
        """Undo every mutation of this transaction and release the lock."""
        self._require_active()
        self._rollback_log()
        self._state = _ROLLED_BACK
        self._db._finish_abort(self)

    def _rollback_log(self) -> None:
        while self._log:
            entry = self._log.pop()
            self._db.table(entry.table).apply_undo(entry)

    @property
    def operations(self) -> list[UndoEntry]:
        """The mutations applied so far (redo log for the WAL)."""
        return list(self._log)

    # -- context manager --------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        self._require_active()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self.is_active:
            # Caller already committed or rolled back explicitly.
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
