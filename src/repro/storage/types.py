"""Column types and value coercion for the storage engine.

Every value written to a table passes through :func:`coerce` for its
column's declared type.  Coercion is strict where it matters (no silent
truncation, no bool→int surprises) and convenient where it is safe
(ISO strings for datetimes, ints for floats).
"""

from __future__ import annotations

import datetime as _dt
import enum
import json
from typing import Any

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The value domains the engine supports."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    DATETIME = "datetime"
    JSON = "json"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnType.{self.name}"


_DATETIME_FORMATS = (
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%dT%H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d",
)


def _parse_datetime(value: str) -> _dt.datetime:
    for fmt in _DATETIME_FORMATS:
        try:
            return _dt.datetime.strptime(value, fmt)
        except ValueError:
            continue
    raise SchemaError(f"cannot parse {value!r} as a datetime")


def coerce(value: Any, column_type: ColumnType, *, column: str = "?") -> Any:
    """Coerce *value* to *column_type*, raising :class:`SchemaError` on mismatch.

    ``None`` passes through — nullability is enforced separately by the
    table so that the error message can name the constraint.
    """
    if value is None:
        return None

    if column_type is ColumnType.INT:
        # bool is a subclass of int; writing True into an INT column is
        # almost always a bug, so reject it explicitly.
        if isinstance(value, bool):
            raise SchemaError(f"column {column!r}: bool given for INT")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SchemaError(f"column {column!r}: {value!r} is not an int")

    if column_type is ColumnType.FLOAT:
        if isinstance(value, bool):
            raise SchemaError(f"column {column!r}: bool given for FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        raise SchemaError(f"column {column!r}: {value!r} is not a float")

    if column_type is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise SchemaError(f"column {column!r}: {value!r} is not text")

    if column_type is ColumnType.BOOL:
        if isinstance(value, bool):
            return value
        raise SchemaError(f"column {column!r}: {value!r} is not a bool")

    if column_type is ColumnType.DATETIME:
        if isinstance(value, _dt.datetime):
            return value
        if isinstance(value, _dt.date):
            return _dt.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            return _parse_datetime(value)
        raise SchemaError(f"column {column!r}: {value!r} is not a datetime")

    if column_type is ColumnType.JSON:
        # Accept anything JSON-representable; round-trip to guarantee it
        # and to deep-copy so callers cannot mutate stored state.
        try:
            return json.loads(json.dumps(value))
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"column {column!r}: {value!r} is not JSON-serializable"
            ) from exc

    raise SchemaError(f"unknown column type {column_type!r}")  # pragma: no cover


def to_jsonable(value: Any, column_type: ColumnType) -> Any:
    """Encode a coerced value for the WAL / snapshot files."""
    if value is None:
        return None
    if column_type is ColumnType.DATETIME:
        return value.isoformat()
    return value


def from_jsonable(value: Any, column_type: ColumnType) -> Any:
    """Decode a WAL / snapshot value back to its runtime representation."""
    if value is None:
        return None
    if column_type is ColumnType.DATETIME:
        return _parse_datetime(value)
    return coerce(value, column_type)


def sort_key(value: Any) -> tuple:
    """Total-order key over heterogeneous, possibly-None values.

    ``None`` sorts before everything (matching SQL ``NULLS FIRST``), then
    values are grouped by type so comparisons never raise.
    """
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, _dt.datetime):
        return (3, value.isoformat())
    if isinstance(value, str):
        return (4, value)
    return (5, json.dumps(value, sort_keys=True, default=str))
