"""Write-ahead log: durability and crash recovery.

Committed transactions append one JSON line each to the log file.  Every
record carries a CRC32 of its payload; recovery replays records until the
first torn/corrupt line (a crash mid-append) and truncates the tail, or
raises :class:`~repro.errors.WalCorruption` when corruption appears
*before* intact records (which indicates tampering, not a crash).

A *checkpoint* writes a full snapshot of every table and resets the log;
recovery loads the most recent snapshot, then replays the WAL on top.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import WalCorruption
from repro.storage.table import UndoEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability


def _encode_payload(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


class WriteAheadLog:
    """Append-only transaction log with CRC-protected records."""

    def __init__(self, path: "str | Path", *, obs: "Observability | None" = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._obs = obs
        self._m_fsync = (
            obs.metrics.histogram(
                "storage_wal_fsync_seconds", "fsync of one WAL record"
            )
            if obs is not None
            else None
        )

    # -- writing ----------------------------------------------------------------

    def append_commit(
        self,
        txn_id: int,
        operations: list[UndoEntry],
        encode_value,
    ) -> None:
        """Durably record one committed transaction.

        *encode_value* maps ``(table, row_dict)`` to a JSON-safe dict;
        the database supplies it so the WAL stays schema-agnostic.
        """
        ops = []
        for entry in operations:
            ops.append(
                {
                    "op": entry.op,
                    "table": entry.table,
                    "pk": entry.pk,
                    "before": encode_value(entry.table, entry.before),
                    "after": encode_value(entry.table, entry.after),
                }
            )
        payload = {"txn": txn_id, "ops": ops}
        self._append_record("commit", payload)

    def append_checkpoint_marker(self, snapshot_name: str) -> None:
        """Note that a snapshot file now covers everything before here."""
        self._append_record("checkpoint", {"snapshot": snapshot_name})

    def _append_record(self, kind: str, payload: dict[str, Any]) -> None:
        body = _encode_payload({"kind": kind, **payload})
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        self._file.write(f"{crc:08x} {body}\n")
        self._file.flush()
        if self._m_fsync is not None:
            assert self._obs is not None
            timer = self._obs.timer()
            os.fsync(self._file.fileno())
            self._m_fsync.observe(timer.elapsed())
        else:
            os.fsync(self._file.fileno())

    # -- reading -------------------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield intact records in order; stop cleanly at a torn tail.

        Raises :class:`WalCorruption` if a corrupt record is followed by
        an intact one — a crash can only tear the final append.
        """
        if not self.path.exists():
            return
        pending_error: str | None = None
        with open(self.path, "r", encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                record = self._parse_line(line, line_no)
                if record is None:
                    pending_error = f"line {line_no}"
                    continue
                if pending_error is not None:
                    raise WalCorruption(
                        f"WAL {self.path}: corrupt record at {pending_error} "
                        "followed by intact records"
                    )
                yield record

    @staticmethod
    def _parse_line(line: str, line_no: int) -> dict[str, Any] | None:
        if len(line) < 10 or line[8] != " ":
            return None
        crc_hex, body = line[:8], line[9:]
        try:
            expected = int(crc_hex, 16)
        except ValueError:
            return None
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
            return None
        try:
            return json.loads(body)
        except ValueError:
            return None

    def truncate_torn_tail(self) -> int:
        """Rewrite the file keeping only intact records; return kept count.

        Called after recovery so the next append lands on a clean file.
        """
        kept = list(self.records())
        self.close()
        with open(self.path, "w", encoding="utf-8") as fh:
            for record in kept:
                body = _encode_payload(record)
                crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
                fh.write(f"{crc:08x} {body}\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._file = open(self.path, "a", encoding="utf-8")
        return len(kept)

    def reset(self) -> None:
        """Empty the log (after a checkpoint snapshot has been fsynced)."""
        self.close()
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        self._file = open(self.path, "a", encoding="utf-8")

    def size_bytes(self) -> int:
        self._file.flush()
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
