"""Write-ahead log: durability and crash recovery.

Committed transactions append one JSON line each to the log file.  Every
record carries a CRC32 of its payload; recovery replays records until the
first torn/corrupt line (a crash mid-append) and truncates the tail, or
raises :class:`~repro.errors.WalCorruption` when corruption appears
*before* intact records (which indicates tampering, not a crash).

A *checkpoint* writes a full snapshot of every table and resets the log;
recovery loads the most recent snapshot, then replays the WAL on top.

When the log runs under ``group`` durability
(:class:`~repro.storage.durability.Durability`), committers do not fsync
individually: they enqueue their encoded record and wait while a single
*leader* flushes the whole batch with one ``write + fsync``.  Record
order in the file always matches enqueue order, so recovery semantics
are identical across modes.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import CrashPoint, WalCorruption
from repro.obs.tracing import TraceContext
from repro.resilience.faults import fault_point
from repro.storage.durability import Durability
from repro.storage.table import UndoEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability


def _encode_payload(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


class _Batch:
    """One group-commit batch: lines queued for a single write+fsync."""

    __slots__ = ("lines", "traces", "flushed", "error", "leader_ctx")

    def __init__(self) -> None:
        self.lines: list[str] = []
        # Per-line trace context of the enqueuing committer (None when
        # the commit ran outside any trace).  The leader parents its
        # fsync span on the first of these and links the rest, and every
        # follower gets the leader's span context back through its
        # durability ticket — one linked trace across the thread hop.
        self.traces: list["TraceContext | None"] = []
        self.flushed = False
        self.error: BaseException | None = None
        # The leader's fsync span, for followers to link to.
        self.leader_ctx: "TraceContext | None" = None


class WriteAheadLog:
    """Append-only transaction log with CRC-protected records."""

    def __init__(
        self,
        path: "str | Path",
        *,
        obs: "Observability | None" = None,
        durability: "Durability | str | None" = None,
        pending_writers=None,
        shard: str | None = None,
    ):
        """*pending_writers*: optional zero-argument callable reporting
        how many transactions are currently applying changes and will
        enqueue a record soon.  A group-commit leader keeps its window
        open only while this is positive — when nobody else can join
        the batch, waiting is pure latency.

        *shard* labels the fsync/batch instruments with ``{shard=...}``
        when several shard WALs share one metrics registry; standalone
        logs keep the historical unlabelled families."""
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self.durability = Durability.parse(durability)
        self._pending_writers = pending_writers
        self._obs = obs
        self._m_fsync = None
        self._m_batch = None
        if obs is not None:
            _names = ("shard",) if shard is not None else ()
            _vals: dict[str, str] = {"shard": shard} if shard is not None else {}
            self._m_fsync = obs.metrics.histogram(
                "storage_wal_fsync_seconds",
                "fsync of one WAL write (batch)",
                labels=_names,
            ).labels(**_vals)
            self._m_batch = obs.metrics.histogram(
                "storage_wal_batch_records",
                "Records made durable per WAL fsync",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
                labels=_names,
            ).labels(**_vals)
        # Group-commit state: one open batch fills while (at most) one
        # leader flushes a closed batch.  Both conditions share one
        # mutex; the split keeps enqueues from waking every waiter:
        # _join_cv wakes only the window-waiting leader, _flushed_cv
        # wakes the committers blocked on their batch.
        self._mutex = threading.Lock()
        self._join_cv = threading.Condition(self._mutex)
        self._flushed_cv = threading.Condition(self._mutex)
        self._current: _Batch | None = None
        self._leader_active = False
        # Size of the most recently flushed batch.  A solo commit skips
        # the batch window only when the previous batch was also solo:
        # right after a multi-record flush the other committers are busy
        # with post-commit bookkeeping and about to enqueue again, and
        # flushing ahead of them would split the stream into half-sized
        # batches with one stray single-record fsync in between.
        self._last_batch_size = 0
        # Bumped whenever the file is rewritten in place (reset after a
        # checkpoint, torn-tail truncation), invalidating every byte
        # offset a tailer may be holding.  A shrinking tail_offset() is
        # not a reliable signal on its own: post-reset appends can grow
        # the new file past a stale offset between two polls.
        self._generation = 0

    # -- writing ----------------------------------------------------------------

    def append_commit(
        self,
        txn_id: int,
        operations: list[UndoEntry],
        encode_value,
        *,
        seq: int | None = None,
        gtid: str | None = None,
        lazy: bool = False,
    ):
        """Record one committed transaction; returns a *durability ticket*.

        *encode_value* maps ``(table, row_dict)`` to a JSON-safe dict;
        the database supplies it so the WAL stays schema-agnostic.
        *seq*, when given, embeds the database-wide commit sequence
        number in the record so downstream consumers (replication) can
        identify a commit without counting records — the sequence space
        has gaps the record count cannot reproduce.

        Under ``always``/``buffered`` durability the record is written
        before returning and the ticket is ``None``.  Under ``group``
        durability the record is only *enqueued*: the caller must invoke
        the returned zero-argument ticket — after releasing any locks —
        to block until the batch fsync makes the record durable.

        *lazy* skips the per-record fsync under ``always`` durability.
        Only the phase-2 half of a cross-shard commit may use it: by the
        time the participant's commit record is appended, the
        coordinator's fsynced decision record already anchors the
        transaction's durability, and recovery rolls the prepare forward
        from the decision log if this record never reaches the platter.
        The bytes still land in the file (tailers see them); they become
        durable with the next fsync on this WAL.
        """
        payload: dict[str, Any] = {
            "txn": txn_id,
            "ops": self._encode_ops(operations, encode_value),
        }
        if seq is not None:
            payload["seq"] = seq
        if gtid is not None:
            payload["gtid"] = gtid
        return self._append_record("commit", payload, lazy=lazy)

    @staticmethod
    def _encode_ops(
        operations: list[UndoEntry], encode_value
    ) -> list[dict[str, Any]]:
        ops = []
        for entry in operations:
            op: dict[str, Any] = {
                "op": entry.op,
                "table": entry.table,
                "pk": entry.pk,
            }
            # Inserts have no before-image and deletes no after-image;
            # omit the keys instead of serialising nulls.
            if entry.op != "insert":
                before = encode_value(entry.table, entry.before)
                if before is not None:
                    op["before"] = before
            if entry.op != "delete":
                after = encode_value(entry.table, entry.after)
                if after is not None:
                    op["after"] = after
            ops.append(op)
        return ops

    def append_prepare(
        self,
        txn_id: int,
        operations: list[UndoEntry],
        encode_value,
        *,
        gtid: str,
    ) -> None:
        """Phase-1 vote of a cross-shard commit: force the redo log down.

        The record carries the transaction's complete operation list —
        enough to replay it if the coordinator later rules ``commit`` —
        plus the global transaction id that ties it to the coordinator's
        decision record.  Prepares are written synchronously and fsynced
        even under ``group`` durability: a vote that could evaporate in
        a crash is no vote.  Pending group batches are drained first so
        file order never reorders this shard's redo stream.
        """
        if self.durability.grouped:
            self.sync()
        payload: dict[str, Any] = {
            "txn": txn_id,
            "gtid": gtid,
            "ops": self._encode_ops(operations, encode_value),
        }
        self._append_record("prepare", payload)

    def append_abort(self, gtid: str) -> None:
        """Terminate a prepared transaction with an abort outcome."""
        self._append_record("abort", {"gtid": gtid})

    def append_resolution(self, prepare_record: dict[str, Any], *, seq: int):
        """Commit a recovered in-doubt prepare durably.

        Rewrites *prepare_record* (as read back from this log) as a
        normal commit record at sequence *seq*, so the next recovery
        sees a terminated prepare and the replication publisher ships
        the transaction like any other commit.  Returns a durability
        ticket under ``group`` mode.
        """
        payload: dict[str, Any] = {
            "txn": prepare_record.get("txn", 0),
            "ops": prepare_record["ops"],
            "seq": seq,
            "gtid": prepare_record.get("gtid"),
        }
        return self._append_record("commit", payload)

    def append_decision(
        self, gtid: str, outcome: str, shards: list[int]
    ) -> None:
        """Coordinator-side 2PC commit point.

        Appended (and fsynced — decision logs run in ``always`` mode) to
        the coordinator's own log, never to a shard WAL.  A prepare whose
        gtid has a ``commit`` decision here rolls forward on recovery;
        one without any decision is presumed aborted.
        """
        self.append_decisions([(gtid, outcome, shards)])

    def append_decisions(
        self, decisions: "list[tuple[str, str, list[int]]]"
    ) -> None:
        """Batch form of :meth:`append_decision` — one write, one fsync.

        The coordinator group-commits concurrent decisions through here;
        each tuple is ``(gtid, outcome, shards)`` and every record in
        the batch is durable on return.
        """
        fault_point("wal.append")
        lines = []
        for gtid, outcome, shards in decisions:
            body = _encode_payload(
                {
                    "kind": "decision",
                    "gtid": gtid,
                    "outcome": outcome,
                    "shards": shards,
                }
            )
            crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
            lines.append(f"{crc:08x} {body}\n")
        self._write_lines(lines, fsync=self.durability.mode != "buffered")

    def append_replicated(self, record: dict[str, Any]):
        """Re-log a commit record shipped from another node, verbatim.

        The record (including its embedded primary ``seq``) is appended
        exactly as received so a replica restart replays the same
        history a fresh copy of the primary's log would.  Returns a
        durability ticket under ``group`` mode, like
        :meth:`append_commit`.
        """
        kind = record.get("kind", "commit")
        payload = {k: v for k, v in record.items() if k != "kind"}
        return self._append_record(kind, payload)

    def append_checkpoint_marker(
        self, snapshot_name: str, *, seq: int | None = None
    ) -> None:
        """Note that a snapshot file now covers everything before here.

        *seq* is the commit sequence the snapshot captured; recovery
        restores the counter from it so a checkpoint (which resets the
        log and thereby discards every seq-carrying commit record) can
        never regress the sequence space across a restart.
        """
        payload: dict[str, Any] = {"snapshot": snapshot_name}
        if seq is not None:
            payload["seq"] = seq
        self._append_record("checkpoint", payload)

    def _append_record(self, kind: str, payload: dict[str, Any], *, lazy: bool = False):
        # Crash site: the record exists only in memory — a fault here
        # must leave no trace of the transaction on disk.
        fault_point("wal.append")
        body = _encode_payload({"kind": kind, **payload})
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        line = f"{crc:08x} {body}\n"
        if self.durability.grouped and kind == "commit":
            # Capture the committer's trace context *here*, on its own
            # thread — the flush happens on whichever committer becomes
            # leader, where the thread-local stack is someone else's.
            ctx = (
                self._obs.tracer.context() if self._obs is not None else None
            )
            batch = self._enqueue(line, ctx)
            return lambda: self._await_batch(batch)
        self._write_lines(
            [line], fsync=self.durability.mode != "buffered" and not lazy
        )
        return None

    def _write_lines(self, lines: list[str], *, fsync: bool) -> None:
        data = "".join(lines)
        # Crash site: a torn_write fault makes a *prefix* of the batch
        # durable — the partial final record is what recovery's
        # torn-tail healing must truncate away.
        action = fault_point("wal.write")
        if action is not None and action.kind == "torn_write":
            cut = min(max(int(len(data) * action.fraction), 1), len(data) - 1)
            self._file.write(data[:cut])
            self._file.flush()
            os.fsync(self._file.fileno())
            raise CrashPoint(
                f"torn WAL write: {cut}/{len(data)} bytes reached disk"
            )
        self._file.write(data)
        self._file.flush()
        # Crash site: bytes handed to the OS but not yet forced down.
        fault_point("wal.after_write")
        if not fsync:
            return
        if self._m_fsync is not None:
            assert self._obs is not None
            timer = self._obs.timer()
            os.fsync(self._file.fileno())
            self._m_fsync.observe(timer.elapsed())
        else:
            os.fsync(self._file.fileno())
        # Crash site: the record is durable but the committer has not
        # heard back — the classic commit-uncertainty window.
        fault_point("wal.after_fsync")
        if self._m_batch is not None:
            self._m_batch.observe(len(lines))

    # -- group commit ------------------------------------------------------------

    def _enqueue(
        self, line: str, ctx: "TraceContext | None" = None
    ) -> _Batch:
        """Add *line* to the open batch (creating one) and return it."""
        with self._mutex:
            if self._current is None:
                self._current = _Batch()
            batch = self._current
            batch.lines.append(line)
            batch.traces.append(ctx)
            self._join_cv.notify()  # let a window-waiting leader re-evaluate
            return batch

    def _await_batch(self, batch: _Batch) -> "TraceContext | None":
        """Block until *batch* is on disk; re-raise its flush error.

        Returns the leader's fsync-span context (``None`` when the flush
        ran untraced) so the committer can link its own commit span to
        the fsync that made it durable."""
        with self._mutex:
            while not batch.flushed:
                if not self._leader_active:
                    self._leader_active = True
                    # A lone commit with no other writer in flight skips
                    # the batch window: group durability then costs one
                    # fsync, exactly like `always`.
                    alone = (
                        len(batch.lines) <= 1
                        and self._last_batch_size <= 1
                        and (
                            self._pending_writers is None
                            or self._pending_writers() <= 0
                        )
                    )
                    self._lead_locked(batch, wait_window=not alone)
                else:
                    self._flushed_cv.wait()
        if batch.error is not None:
            raise batch.error
        return batch.leader_ctx

    def _lead_locked(self, batch: _Batch, *, wait_window: bool) -> None:
        """Flush *batch* as leader.  Called (and returns) with _mutex held.

        The leader lingers up to the durability window so stragglers can
        join, closes the batch, then performs the write+fsync *outside*
        the mutex so new commits keep enqueueing meanwhile.
        """
        assert batch is self._current
        window_s = self.durability.window_ms / 1000.0
        if wait_window and window_s > 0:
            deadline = time.monotonic() + window_s
            while len(batch.lines) < self.durability.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if (
                    self._pending_writers is not None
                    and self._pending_writers() <= 0
                ):
                    # No writer in flight.  Committers released by the
                    # previous flush run their post-commit bookkeeping
                    # before re-declaring intent, so probe briefly (an
                    # enqueue notifies _join_cv and ends the wait early);
                    # close the batch only if nothing new shows up.
                    seen = len(batch.lines)
                    self._join_cv.wait(min(remaining, 0.0001))
                    if (
                        len(batch.lines) == seen
                        and self._pending_writers() <= 0
                    ):
                        break
                    continue
                # Writers are applying and will enqueue soon; tick short
                # so an aborting writer never costs the whole window.
                self._join_cv.wait(min(remaining, 0.0005))
        self._current = None  # close the batch; later commits start a new one
        self._mutex.release()
        error: BaseException | None = None
        try:
            self._flush_batch(batch)
        except BaseException as exc:  # propagate to every waiter
            error = exc
        self._mutex.acquire()
        batch.error = error
        batch.flushed = True
        self._last_batch_size = len(batch.lines)
        self._leader_active = False
        self._flushed_cv.notify_all()

    def _flush_batch(self, batch: _Batch) -> None:
        """Write+fsync a closed batch, under a span when any committer
        in it was tracing.

        The span runs on the *leader's* thread: it nests under the
        leader's own commit span when the leader is itself a traced
        committer, else it adopts the first traced enqueuer's context —
        either way the fsync lands inside an existing trace rather than
        starting its own.  ``linked_traces`` lists every distinct trace
        that shared this fsync, and :attr:`_Batch.leader_ctx` carries
        the span back to the waiting followers."""
        linked = [ctx for ctx in batch.traces if ctx is not None]
        tracer = self._obs.tracer if self._obs is not None else None
        if tracer is None or not linked:
            self._write_lines(batch.lines, fsync=True)
            return
        parent = tracer.context() or linked[0]
        with tracer.span(
            "wal.group_fsync", parent=parent, batch=len(batch.lines)
        ) as span:
            trace_ids = sorted({ctx.trace_id for ctx in linked})
            if len(trace_ids) > 1 or trace_ids[0] != span.trace_id:
                span.set(linked_traces=trace_ids)
            self._write_lines(batch.lines, fsync=True)
            batch.leader_ctx = span.context()

    def sync(self) -> None:
        """Drain pending group batches and force the file to disk.

        Checkpoints and ``close`` call this so no enqueued-but-unflushed
        record is ever lost to a log reset; under ``buffered`` durability
        it is also the point where the tail becomes crash-safe.
        """
        with self._mutex:
            while True:
                batch = self._current
                if batch is None and not self._leader_active:
                    break
                if batch is not None and not self._leader_active:
                    self._leader_active = True
                    self._lead_locked(batch, wait_window=False)
                    continue
                self._flushed_cv.wait()
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    # -- reading -------------------------------------------------------------------

    def records(self, start_offset: int = 0) -> Iterator[dict[str, Any]]:
        """Yield intact records in order; stop cleanly at a torn tail.

        *start_offset* resumes the scan from a byte position previously
        returned by :meth:`tail_offset` or observed through
        :meth:`records_with_offsets`, so repeated reads of a growing log
        are O(new bytes) rather than O(file) each time.  It must point
        at a record boundary (0 or a yielded ``end_offset``).

        Raises :class:`WalCorruption` if a corrupt record is followed by
        an intact one — a crash can only tear the final append.
        """
        pending_error: str | None = None
        for record, _end, reason in self._scan(start_offset):
            if record is None:
                if reason == "incomplete":
                    return  # unterminated tail line: nothing after it yet
                pending_error = reason
                continue
            if pending_error is not None:
                raise WalCorruption(
                    f"WAL {self.path}: corrupt record at {pending_error} "
                    "followed by intact records"
                )
            yield record

    def records_with_offsets(
        self, start_offset: int = 0
    ) -> Iterator[tuple[dict[str, Any], int]]:
        """Yield ``(record, end_offset)`` pairs; stop at the first bad line.

        This is the *lenient* scan used for live tailing: a torn,
        corrupt, or still-being-written final line simply ends the
        iteration (the returned offsets never straddle it), so a tailer
        can poll a log that is growing under its feet and resume from
        the last good ``end_offset`` once more bytes arrive.
        """
        for record, end, _reason in self._scan(start_offset):
            if record is None:
                return
            yield record, end

    def _scan(
        self, start_offset: int
    ) -> Iterator[tuple[dict[str, Any] | None, int, str]]:
        """Walk line-framed records from *start_offset*.

        Yields ``(record, end_offset, reason)`` where ``record`` is
        ``None`` for a bad line (``reason`` says why: ``"incomplete"``
        for a line missing its newline, else a location string).  Byte
        offsets are exact because the scan reads in binary mode.
        """
        if not self.path.exists():
            return
        offset = start_offset
        line_no = 0
        with open(self.path, "rb") as fh:
            fh.seek(start_offset)
            for raw in fh:
                line_no += 1
                end = offset + len(raw)
                if not raw.endswith(b"\n"):
                    yield None, offset, "incomplete"
                    return
                offset = end
                line = raw.decode("utf-8", errors="replace").rstrip("\n")
                if not line:
                    continue
                record = self._parse_line(line, line_no)
                if record is None:
                    yield None, offset, f"line {line_no} (+{start_offset}B)"
                    continue
                yield record, offset, ""

    def generation(self) -> int:
        """Monotonic counter of in-place rewrites (reset / truncate).

        A tailer holding byte offsets must rescan from 0 whenever this
        changes: the offsets belong to the previous incarnation of the
        file, even if the new one has already grown past them.
        """
        return self._generation

    def tail_offset(self) -> int:
        """Byte position past the last record handed to the OS.

        Flushes Python's userspace buffer first so the value is usable
        as a ``records(start_offset=...)`` resume point for everything
        appended so far.  Under ``group`` durability, call :meth:`sync`
        first if enqueued-but-unflushed batches must be included.
        """
        if not self._file.closed:
            self._file.flush()
        return self.path.stat().st_size if self.path.exists() else 0

    @staticmethod
    def _parse_line(line: str, line_no: int) -> dict[str, Any] | None:
        if len(line) < 10 or line[8] != " ":
            return None
        crc_hex, body = line[:8], line[9:]
        try:
            expected = int(crc_hex, 16)
        except ValueError:
            return None
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
            return None
        try:
            return json.loads(body)
        except ValueError:
            return None

    def truncate_torn_tail(self) -> int:
        """Rewrite the file keeping the intact *prefix*; return kept count.

        Everything from the first torn/corrupt line onward is dropped —
        including any valid-looking records after the tear, because a
        record whose predecessor never fully landed cannot be trusted to
        belong to the committed prefix (replication can redeliver frames
        out of band; replay must stop at the tear).  Idempotent: a clean
        log round-trips unchanged.  Called after recovery (and by
        replica promotion) so the next append lands on a clean file.
        """
        kept = [record for record, _end in self.records_with_offsets()]
        self.close()
        with open(self.path, "w", encoding="utf-8") as fh:
            for record in kept:
                body = _encode_payload(record)
                crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
                fh.write(f"{crc:08x} {body}\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._file = open(self.path, "a", encoding="utf-8")
        self._generation += 1
        return len(kept)

    def reset(self) -> None:
        """Empty the log (after a checkpoint snapshot has been fsynced)."""
        self.sync()
        self.close()
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        self._file = open(self.path, "a", encoding="utf-8")
        self._generation += 1

    def size_bytes(self) -> int:
        self._file.flush()
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
