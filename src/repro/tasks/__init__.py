"""Task orientation (paper Figure 8).

"B-Fabric is a task-oriented system that reminds its users about open
tasks, awaiting to be performed next."  Tasks are derived from events:
as soon as a new annotation is added, a release-annotation task appears
in the corresponding expert's task list; releasing (or rejecting) the
annotation completes the task automatically.
"""

from repro.tasks.service import Task, TaskService
from repro.tasks.rules import install_standard_rules

__all__ = ["Task", "TaskService", "install_standard_rules"]
