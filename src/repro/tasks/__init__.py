"""Task orientation (paper Figure 8) and the durable background-job queue.

"B-Fabric is a task-oriented system that reminds its users about open
tasks, awaiting to be performed next."  Tasks are derived from events:
as soon as a new annotation is added, a release-annotation task appears
in the corresponding expert's task list; releasing (or rejecting) the
annotation completes the task automatically.

The job queue (:mod:`repro.tasks.queue`) is the machine-facing sibling:
durable, at-least-once background work — imports, application runs —
drained by :class:`~repro.tasks.workers.WorkerPool` with crash-safe
visibility-timeout leases.
"""

from repro.tasks.service import Task, TaskService
from repro.tasks.rules import install_standard_rules
from repro.tasks.queue import Job, JobAttempt, JobQueue, queue_models
from repro.tasks.workers import WorkerPool

__all__ = [
    "Task",
    "TaskService",
    "install_standard_rules",
    "Job",
    "JobAttempt",
    "JobQueue",
    "queue_models",
    "WorkerPool",
]
