"""The durable job queue: at-least-once background work, stored in the database.

Imports and application runs used to execute inline in the caller's
thread, so a crash mid-import relied entirely on call-site compensation.
The queue moves that work onto a ``job`` table **in the database
itself** — it inherits WAL durability, MVCC introspection, sharding and
replication for free — and re-expresses the resilience policies as
queue state transitions::

    pending ──claim──▶ leased ──ack──▶ done
       ▲                 │
       │ lease expired   ├──nack (attempts left)──▶ retry_wait ──due──▶ pending
       └─────────────────┘                │
                                          └──nack (exhausted)──▶ dead ──▶ DLQ

Semantics:

* **Leases (visibility timeout).**  :meth:`JobQueue.claim` marks a job
  ``leased`` until ``lease_expires_at``; a worker that dies simply stops
  heartbeating and the job reappears as ``pending`` once the lease
  expires — at-least-once delivery with crash-safe redelivery and no
  coordinator process.  Long jobs stay owned via :meth:`heartbeat`.
* **Idempotency keys.**  Enqueueing with a key already held by a live
  (non-dead) job returns that job instead of a duplicate; handlers use
  the same key to make redelivered work effects-once.
* **Backoff as schedule.**  A failed attempt does not sleep anywhere —
  the job parks in ``retry_wait`` with a deterministic, jittered wake
  time (:class:`~repro.resilience.policies.RetryPolicy` semantics) and
  the next claim after ``available_at`` redelivers it.
* **Dead-lettering.**  Exhausted jobs flip to ``dead`` and are filed in
  the :class:`~repro.resilience.dlq.DeadLetterQueue` referencing the
  durable job row, so ``repro dlq retry`` works after a restart — the
  payload lives in the database, not in a process-local cache.
* **Backpressure.**  ``max_depth`` bounds the runnable backlog;
  :meth:`enqueue` sheds with :class:`~repro.errors.QueueSaturated` once
  producers outrun the workers.

Fault sites ``queue.claim``, ``queue.ack`` and ``queue.heartbeat`` let
the torture driver kill a worker at every point of the lease protocol
(see :func:`repro.resilience.torture.run_ingest_torture`).
"""

from __future__ import annotations

import datetime as _dt
import random
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import LeaseLost, QueueError, QueueSaturated, StateError
from repro.orm import (
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    TextField,
)
from repro.resilience.faults import fault_point
from repro.resilience.policies import RetryPolicy
from repro.util.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.resilience.dlq import DeadLetterQueue

JOB_STATES = ("pending", "leased", "done", "retry_wait", "dead")


def encode_principal(principal: Any) -> dict[str, Any]:
    """JSON-safe form of a Principal for job payloads."""
    return {
        "user_id": principal.user_id,
        "login": principal.login,
        "role": principal.role.value,
    }


def decode_principal(data: dict[str, Any]) -> Any:
    """Rebuild a Principal from :func:`encode_principal` output."""
    from repro.security.principals import Principal, Role

    return Principal(
        user_id=data["user_id"], login=data["login"], role=Role(data["role"])
    )

#: States a job can still run from (counted against ``max_depth``).
RUNNABLE_STATES = ("pending", "leased", "retry_wait")

#: Backoff between redelivery attempts; deterministic per (job, attempt).
DEFAULT_RETRY = RetryPolicy(
    max_attempts=5, base_delay=0.2, max_delay=30.0, multiplier=2.0,
    jitter=0.1, seed=2010,
)


class Job(Model):
    """One unit of background work, durable across process restarts."""

    __table__ = "job"
    id = IntField(primary_key=True)
    job_type = TextField(nullable=False, index=True)
    state = TextField(
        nullable=False, default="pending", check=lambda v: v in JOB_STATES
    )
    priority = IntField(default=0)
    #: Concurrency-limit key, e.g. ``provider:instrument-a`` — the worker
    #: pool caps in-flight jobs per channel (per-provider rate limiting).
    channel = TextField(default="")
    payload = JsonField(default=dict)
    idempotency_key = TextField(default="", index=True)
    attempts = IntField(default=0)
    max_attempts = IntField(default=5)
    #: Not claimable before this time (enqueue time, schedule, or the
    #: retry_wait wake time).
    available_at = DateTimeField()
    lease_expires_at = DateTimeField()
    leased_by = TextField(default="")
    result = JsonField(default=dict)
    error = TextField(default="")
    #: The enqueuer's trace context; worker spans join this trace.
    trace = JsonField(default=dict)
    enqueued_at = DateTimeField()
    updated_at = DateTimeField()
    __indexes__ = ["state", ("state", "job_type")]


class JobAttempt(Model):
    """One delivery of one job — the queue's introspection trail."""

    __table__ = "job_attempt"
    id = IntField(primary_key=True)
    job_id = IntField(nullable=False, index=True, foreign_key="job.id")
    number = IntField(default=1)
    worker = TextField(default="")
    started_at = DateTimeField()
    finished_at = DateTimeField()
    #: running | done | retry_wait | dead | lease_expired
    outcome = TextField(default="running")
    error = TextField(default="")
    __indexes__ = [("job_id", "number")]


def queue_models() -> list[type[Model]]:
    return [Job, JobAttempt]


class JobQueue:
    """Durable, priority, at-least-once work queue over the ``job`` table.

    Thread-safe: one in-process lock serializes state transitions (the
    database rows are what survives a crash; the lock only arbitrates
    between this process's workers).  Handlers are registered here so
    every :class:`~repro.tasks.workers.WorkerPool` — including the
    throwaway pool behind ``repro queue drain`` — sees the same table.
    """

    def __init__(
        self,
        registry: Registry,
        *,
        clock: Clock | None = None,
        obs: "Observability | None" = None,
        dlq: "DeadLetterQueue | None" = None,
        retry: RetryPolicy = DEFAULT_RETRY,
        max_depth: int | None = None,
    ):
        self._registry = registry
        self._jobs = registry.register(Job)
        self._attempts = registry.register(JobAttempt)
        self._clock = clock or SystemClock()
        self._obs = obs
        self._dlq = dlq
        self._retry = retry
        self._max_depth = max_depth
        self._cond = threading.Condition(threading.RLock())
        self._handlers: dict[str, Callable[[Job], Any]] = {}
        self._lease_lost_handlers: dict[str, Callable[[Job, Any], None]] = {}
        self._pools: list[Any] = []
        self._lease_expirations = 0
        self._duplicates_suppressed = 0
        self._shed = 0
        #: job id → monotonic enqueue instant, for claim-to-start latency
        #: (in-process measurement; survives nothing, costs nothing).
        self._enqueued_mono: dict[int, float] = {}
        self._claim_latency = deque(maxlen=4096)
        self._m_enqueued = self._m_completed = self._m_expired = None
        self._m_shed = self._m_duplicates = self._h_claim = None
        if obs is not None:
            self._m_enqueued = obs.metrics.counter(
                "queue_jobs_enqueued_total", "Jobs accepted by the queue",
                labels=("job_type",),
            )
            self._m_completed = obs.metrics.counter(
                "queue_jobs_completed_total",
                "Jobs reaching a terminal or retry transition",
                labels=("job_type", "outcome"),
            )
            self._m_expired = obs.metrics.counter(
                "queue_lease_expired_total",
                "Leases that expired and made their job claimable again",
            )
            self._m_shed = obs.metrics.counter(
                "queue_shed_total",
                "Enqueues rejected because the backlog hit max_depth",
            )
            self._m_duplicates = obs.metrics.counter(
                "queue_duplicates_suppressed_total",
                "Enqueues answered by an existing job (idempotency key)",
            )
            self._h_claim = obs.metrics.histogram(
                "queue_claim_delay_seconds",
                "Delay between a job becoming available and its claim",
            )

    # -- handler registry --------------------------------------------------------

    def register_handler(
        self,
        job_type: str,
        handler: Callable[[Job], Any],
        *,
        on_lease_lost: Callable[[Job, Any], None] | None = None,
    ) -> None:
        """Map *job_type* to the callable a worker runs.

        *on_lease_lost* is the loser's compensation: when a worker
        finishes a job whose lease was lost meanwhile (it was redelivered
        to someone else), the hook gets ``(job, result)`` to discard the
        now-duplicate effects.
        """
        self._handlers[job_type] = handler
        if on_lease_lost is not None:
            self._lease_lost_handlers[job_type] = on_lease_lost

    def handler(self, job_type: str) -> Callable[[Job], Any] | None:
        return self._handlers.get(job_type)

    def lease_lost_handler(
        self, job_type: str
    ) -> Callable[[Job, Any], None] | None:
        return self._lease_lost_handlers.get(job_type)

    def handler_types(self) -> list[str]:
        return sorted(self._handlers)

    # -- worker-pool registry ------------------------------------------------------

    def attach_pool(self, pool: Any) -> None:
        with self._cond:
            if pool not in self._pools:
                self._pools.append(pool)

    def detach_pool(self, pool: Any) -> None:
        with self._cond:
            if pool in self._pools:
                self._pools.remove(pool)

    def pools(self) -> list[Any]:
        with self._cond:
            return list(self._pools)

    def workers_active(self) -> bool:
        """Is anybody draining this queue right now?

        The synchronous facade paths (``import_files``, ``run``) use
        this to decide between enqueue-then-wait and inline execution,
        so deployments without a worker pool keep working unchanged.
        """
        return any(pool.is_running() for pool in self.pools())

    def active_worker_count(self) -> int:
        return sum(pool.alive_count() for pool in self.pools())

    # -- enqueue --------------------------------------------------------------------

    def enqueue(
        self,
        job_type: str,
        payload: dict[str, Any] | None = None,
        *,
        priority: int = 0,
        channel: str = "",
        idempotency_key: str = "",
        max_attempts: int | None = None,
        delay_seconds: float = 0.0,
        trace: dict[str, str] | None = None,
    ) -> Job:
        """Add one job; returns the persisted row.

        With an *idempotency_key* held by an existing non-dead job the
        existing job is returned instead (duplicate suppression) — a
        client retry of "import these files" never imports them twice.
        Raises :class:`QueueSaturated` once the runnable backlog reaches
        ``max_depth`` (backpressure, not silent queueing).
        """
        if trace is None and self._obs is not None:
            context = self._obs.tracer.context()
            trace = context.to_dict() if context is not None else None
        with self._cond:
            if idempotency_key:
                existing = self._live_job_for_key(idempotency_key)
                if existing is not None:
                    self._duplicates_suppressed += 1
                    if self._m_duplicates is not None:
                        self._m_duplicates.inc()
                    return existing
            if self._max_depth is not None:
                backlog = sum(
                    self._jobs.query().where("state", "=", s).count()
                    for s in RUNNABLE_STATES
                )
                if backlog >= self._max_depth:
                    self._shed += 1
                    if self._m_shed is not None:
                        self._m_shed.inc()
                    raise QueueSaturated(
                        f"queue backlog is {backlog} >= max_depth "
                        f"{self._max_depth}; retry later",
                        depth=backlog,
                    )
            now = self._clock.now()
            job = self._jobs.create(
                job_type=job_type,
                state="pending",
                priority=priority,
                channel=channel,
                payload=payload or {},
                idempotency_key=idempotency_key,
                attempts=0,
                max_attempts=(
                    max_attempts
                    if max_attempts is not None
                    else self._retry.max_attempts
                ),
                available_at=now + _dt.timedelta(seconds=delay_seconds),
                lease_expires_at=None,
                leased_by="",
                result={},
                error="",
                trace=trace or {},
                enqueued_at=now,
                updated_at=now,
            )
            self._enqueued_mono[job.id] = self._clock.monotonic()
            if self._m_enqueued is not None:
                self._m_enqueued.labels(job_type=job_type).inc()
            self._cond.notify_all()
            return job

    def _live_job_for_key(self, key: str) -> Job | None:
        for job in self._jobs.query().where("idempotency_key", "=", key).all():
            if job.state != "dead":
                return job
        return None

    # -- claiming (the lease protocol) ---------------------------------------------

    def claim(
        self,
        worker: str,
        *,
        limit: int = 1,
        lease_seconds: float = 30.0,
        job_types: "set[str] | None" = None,
        exclude_job_types: "set[str] | frozenset[str]" = frozenset(),
        exclude_channels: "set[str] | frozenset[str]" = frozenset(),
    ) -> list[Job]:
        """Atomically lease up to *limit* due jobs for *worker*.

        Expired leases are reclaimed first, so a killed worker's jobs
        become claimable the moment their visibility timeout passes.
        Ordering is priority (descending) then id — FIFO within a
        priority band.  The ``queue.claim`` fault site fires only when
        the claim would actually return work, so scripted kills land on
        a real delivery, not an idle poll.
        """
        with self._cond:
            now = self._clock.now()
            self._expire_due_leases(now)
            candidates = [
                job
                for job in self._due_jobs(now)
                if (job_types is None or job.job_type in job_types)
                and job.job_type not in exclude_job_types
                and job.channel not in exclude_channels
            ]
            if not candidates:
                return []
            fault_point("queue.claim")
            candidates.sort(key=lambda j: (-j.priority, j.id))
            claimed: list[Job] = []
            expiry = now + _dt.timedelta(seconds=lease_seconds)
            for job in candidates[: max(1, limit)]:
                updated = self._jobs.update(
                    job.id,
                    state="leased",
                    leased_by=worker,
                    lease_expires_at=expiry,
                    attempts=job.attempts + 1,
                    updated_at=now,
                )
                self._attempts.create(
                    job_id=job.id,
                    number=updated.attempts,
                    worker=worker,
                    started_at=now,
                    finished_at=None,
                    outcome="running",
                    error="",
                )
                enqueued = self._enqueued_mono.pop(job.id, None)
                if enqueued is not None:
                    delay = max(0.0, self._clock.monotonic() - enqueued)
                    self._claim_latency.append(delay)
                    if self._h_claim is not None:
                        self._h_claim.observe(delay)
                claimed.append(updated)
            return claimed

    def _due_jobs(self, now: _dt.datetime) -> list[Job]:
        due: list[Job] = []
        for state in ("pending", "retry_wait"):
            due.extend(
                self._jobs.query()
                .where("state", "=", state)
                .where("available_at", "<=", now)
                .all()
            )
        return due

    def _expire_due_leases(self, now: _dt.datetime) -> int:
        expired = 0
        for job in self._jobs.query().where("state", "=", "leased").all():
            if job.lease_expires_at is None or job.lease_expires_at > now:
                continue
            self._jobs.update(
                job.id,
                state="pending",
                leased_by="",
                lease_expires_at=None,
                available_at=now,
                updated_at=now,
            )
            self._finish_attempts(job.id, now, "lease_expired", "")
            expired += 1
        if expired:
            self._lease_expirations += expired
            if self._m_expired is not None:
                self._m_expired.inc(expired)
            self._cond.notify_all()
        return expired

    def expire_leases(self) -> int:
        """Reclaim every expired lease now (claim also does this lazily).

        This is how the queue recovers from a process kill: the restarted
        deployment simply waits out the old leases — no fencing tokens,
        no session registry, nothing else to repair.
        """
        with self._cond:
            return self._expire_due_leases(self._clock.now())

    def heartbeat(
        self, job_id: int, worker: str, *, extend_seconds: float = 30.0
    ) -> Job:
        """Extend a held lease; long jobs call this under the timeout."""
        with self._cond:
            fault_point("queue.heartbeat")
            job = self._owned(job_id, worker)
            return self._jobs.update(
                job_id,
                lease_expires_at=self._clock.now()
                + _dt.timedelta(seconds=extend_seconds),
                updated_at=self._clock.now(),
            )

    # -- completion ------------------------------------------------------------------

    def ack(
        self, job_id: int, worker: str, result: dict[str, Any] | None = None
    ) -> Job:
        """Mark a leased job done.  The fault site fires *before* the
        durable update — a kill here leaves the job leased, lease expiry
        redelivers it, and the handler's idempotency key suppresses the
        double effect (the torn-ack scenario)."""
        with self._cond:
            fault_point("queue.ack")
            self._owned(job_id, worker)
            now = self._clock.now()
            updated = self._jobs.update(
                job_id,
                state="done",
                result=result or {},
                leased_by="",
                lease_expires_at=None,
                error="",
                updated_at=now,
            )
            self._finish_attempts(job_id, now, "done", "")
            self._count_completion(updated.job_type, "done")
            self._cond.notify_all()
            return updated

    def nack(
        self,
        job_id: int,
        worker: str,
        error: str,
        *,
        retryable: bool = True,
    ) -> Job:
        """Record a failed attempt.

        Attempts remaining → ``retry_wait`` with a deterministic
        backoff wake time; exhausted (or not *retryable*) → ``dead`` and
        a dead letter referencing the durable job row.
        """
        with self._cond:
            job = self._owned(job_id, worker)
            now = self._clock.now()
            if retryable and job.attempts < job.max_attempts:
                delay = self._backoff_delay(job)
                updated = self._jobs.update(
                    job_id,
                    state="retry_wait",
                    leased_by="",
                    lease_expires_at=None,
                    available_at=now + _dt.timedelta(seconds=delay),
                    error=error,
                    updated_at=now,
                )
                self._finish_attempts(job_id, now, "retry_wait", error)
                self._count_completion(job.job_type, "retry_wait")
            else:
                updated = self._jobs.update(
                    job_id,
                    state="dead",
                    leased_by="",
                    lease_expires_at=None,
                    error=error,
                    updated_at=now,
                )
                self._finish_attempts(job_id, now, "dead", error)
                self._count_completion(job.job_type, "dead")
                self._dead_letter(updated, error)
            self._cond.notify_all()
            return updated

    def _backoff_delay(self, job: Job) -> float:
        """RetryPolicy backoff, seeded per (job, attempt) — deterministic."""
        policy = self._retry
        attempt = max(1, job.attempts)
        delay = min(
            policy.max_delay, policy.base_delay * policy.multiplier ** (attempt - 1)
        )
        if policy.jitter:
            rng = random.Random(f"{policy.seed}:{job.id}:{attempt}")
            delay *= 1 + policy.jitter * (2 * rng.random() - 1)
        return max(0.0, delay)

    def _dead_letter(self, job: Job, error: str) -> None:
        if self._dlq is None:
            return
        self._dlq.add(
            f"job.{job.job_type}",
            "job_queue",
            {"job_id": job.id, "job_type": job.job_type},
            QueueError(error or "job exhausted its attempts"),
            source="queue",
        )

    def _owned(self, job_id: int, worker: str) -> Job:
        job = self._jobs.get_or_none(job_id)
        if job is None:
            raise StateError(f"no job with id {job_id}")
        if job.state != "leased" or job.leased_by != worker:
            raise LeaseLost(
                f"job {job_id} is not leased by {worker!r} "
                f"(state={job.state}, leased_by={job.leased_by!r})",
                job_id=job_id,
            )
        return job

    def _finish_attempts(
        self, job_id: int, now: _dt.datetime, outcome: str, error: str
    ) -> None:
        for attempt in self._attempts.find(job_id=job_id, outcome="running"):
            self._attempts.update(
                attempt.id, finished_at=now, outcome=outcome, error=error
            )

    def _count_completion(self, job_type: str, outcome: str) -> None:
        if self._m_completed is not None:
            self._m_completed.labels(job_type=job_type, outcome=outcome).inc()

    # -- operator surface ---------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        job = self._jobs.get_or_none(job_id)
        if job is None:
            raise StateError(f"no job with id {job_id}")
        return job

    def attempts_of(self, job_id: int) -> list[JobAttempt]:
        return sorted(self._attempts.find(job_id=job_id), key=lambda a: a.number)

    def list(self, *, state: str | None = None) -> list[Job]:
        query = self._jobs.query()
        if state is not None:
            query = query.where("state", "=", state)
        return query.order_by("id").all()

    def retry_dead(self, job_id: int) -> Job:
        """Re-run a dead job from its durable payload (operator replay)."""
        with self._cond:
            job = self.get(job_id)
            if job.state != "dead":
                raise StateError(f"job {job_id} is {job.state}, not dead")
            now = self._clock.now()
            updated = self._jobs.update(
                job_id,
                state="pending",
                attempts=0,
                error="",
                leased_by="",
                lease_expires_at=None,
                available_at=now,
                updated_at=now,
            )
            self._enqueued_mono[job_id] = self._clock.monotonic()
            self._cond.notify_all()
            return updated

    def retry_all_dead(self) -> int:
        revived = 0
        for job in self.list(state="dead"):
            self.retry_dead(job.id)
            revived += 1
        return revived

    def wait(self, job_id: int, *, timeout: float | None = None) -> Job:
        """Block until the job is terminal (``done`` or ``dead``).

        This is the enqueue-then-wait half of the synchronous facade
        paths.  Returns the job in whatever state it reached; on timeout
        it returns the job as-is — callers inspect ``state``.
        """
        deadline = (
            self._clock.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                job = self.get(job_id)
                if job.state in ("done", "dead"):
                    return job
                remaining = 0.1
                if deadline is not None:
                    remaining = deadline - self._clock.monotonic()
                    if remaining <= 0:
                        return job
                # Bounded waits so manual clocks and lease expiry are
                # re-checked even with no notify in between.
                self._cond.wait(min(0.1, remaining))

    def wait_for_work(self, timeout: float) -> None:
        """Park an idle worker until an enqueue/transition notifies."""
        with self._cond:
            self._cond.wait(timeout)

    def has_runnable(self) -> bool:
        with self._cond:
            now = self._clock.now()
            if self._due_jobs(now):
                return True
            return self._jobs.query().where("state", "=", "leased").exists()

    def depth(self) -> int:
        """Runnable backlog: pending + leased + retry_wait."""
        return sum(
            self._jobs.query().where("state", "=", s).count()
            for s in RUNNABLE_STATES
        )

    def status(self) -> dict[str, Any]:
        """Everything the admin page / ``repro queue status`` shows."""
        with self._cond:
            states = {
                state: self._jobs.query().where("state", "=", state).count()
                for state in JOB_STATES
            }
            per_type: dict[str, dict[str, int]] = {}
            for job in self._jobs.all():
                per_type.setdefault(job.job_type, dict.fromkeys(JOB_STATES, 0))
                per_type[job.job_type][job.state] += 1
            return {
                "depth": sum(states[s] for s in RUNNABLE_STATES),
                "states": states,
                "per_type": per_type,
                "lease_expirations": self._lease_expirations,
                "duplicates_suppressed": self._duplicates_suppressed,
                "shed": self._shed,
                "active_workers": self.active_worker_count(),
                "handlers": self.handler_types(),
            }

    def claim_latency_samples(self) -> list[float]:
        """Recent claim-to-start delays, seconds (for the bench harness)."""
        with self._cond:
            return list(self._claim_latency)
