"""Event-to-task derivation rules.

The rules encode the paper's behaviour: "as soon as a new annotation is
added to the vocabulary, a new task to release this annotation appears
in the task list of the corresponding expert".  Completion is just as
automatic — the review outcome closes the task.

Further standard rules cover imports awaiting extract assignment and
failed experiment runs needing attention.
"""

from __future__ import annotations

from repro.security.principals import SYSTEM
from repro.tasks.service import TaskService
from repro.util.events import EventBus

#: Task kinds created by the standard rules.
KIND_RELEASE_ANNOTATION = "release_annotation"
KIND_ASSIGN_EXTRACTS = "assign_extracts"
KIND_INVESTIGATE_FAILURE = "investigate_failure"


def install_standard_rules(events: EventBus, tasks: TaskService) -> None:
    """Subscribe the standard derivation rules on *events*."""

    def on_annotation_created(annotation, principal, similar, **_):
        title = f"Release annotation '{annotation.value}'"
        if similar:
            best = similar[0]
            title += f" (similar to '{best[0].value}', {best[1]:.0%})"
        tasks.create(
            KIND_RELEASE_ANNOTATION,
            title,
            assignee_role="employee",
            entity_type="annotation",
            entity_id=annotation.id,
            payload={
                "value": annotation.value,
                "attribute_id": annotation.attribute_id,
                "similar": [
                    {"id": a.id, "value": a.value, "score": round(score, 3)}
                    for a, score in similar
                ],
            },
        )

    def on_annotation_reviewed(annotation, principal, **_):
        tasks.complete_for_entity(
            principal, KIND_RELEASE_ANNOTATION, "annotation", annotation.id
        )

    def on_annotation_merged(keep, merged, principal, **_):
        # The merged value no longer needs its own review.
        tasks.complete_for_entity(
            principal, KIND_RELEASE_ANNOTATION, "annotation", merged.id
        )
        tasks.complete_for_entity(
            principal, KIND_RELEASE_ANNOTATION, "annotation", keep.id
        )

    def on_import_awaiting_assignment(workunit, principal, unassigned, **_):
        tasks.create(
            KIND_ASSIGN_EXTRACTS,
            f"Assign extracts to {unassigned} imported file(s) of "
            f"workunit '{workunit.name}'",
            assignee_id=principal.user_id,
            entity_type="workunit",
            entity_id=workunit.id,
            payload={"unassigned": unassigned},
        )

    def on_extracts_assigned(workunit, principal, **_):
        tasks.complete_for_entity(
            principal, KIND_ASSIGN_EXTRACTS, "workunit", workunit.id
        )

    def on_experiment_failed(workunit, error, **_):
        tasks.create(
            KIND_INVESTIGATE_FAILURE,
            f"Experiment run for workunit '{workunit.name}' failed: {error}",
            assignee_role="admin",
            entity_type="workunit",
            entity_id=workunit.id,
            payload={"error": str(error)},
        )

    events.subscribe("annotation.created", on_annotation_created)
    events.subscribe("annotation.released", on_annotation_reviewed)
    events.subscribe("annotation.rejected", on_annotation_reviewed)
    events.subscribe("annotation.merged", on_annotation_merged)
    events.subscribe("import.awaiting_assignment", on_import_awaiting_assignment)
    events.subscribe("import.extracts_assigned", on_extracts_assigned)
    events.subscribe("experiment.failed", on_experiment_failed)
