"""Task storage and inbox queries."""

from __future__ import annotations

from repro.audit.log import AuditLog
from repro.errors import StateError
from repro.orm import (
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    TextField,
)
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock

TASK_STATES = ("open", "done", "cancelled")


class Task(Model):
    """One open item in somebody's task list.

    Assignment is either to a concrete user (``assignee_id``) or to a
    role (``assignee_role``) — annotation review goes to every expert,
    so it is role-assigned.
    """

    __table__ = "task"
    id = IntField(primary_key=True)
    kind = TextField(nullable=False, index=True)
    title = TextField(nullable=False)
    status = TextField(
        nullable=False, default="open", check=lambda v: v in TASK_STATES
    )
    assignee_id = IntField(foreign_key="user.id")
    assignee_role = TextField(default="")
    entity_type = TextField(default="")
    entity_id = IntField(default=0)
    payload = JsonField(default=dict)
    created_at = DateTimeField()
    completed_at = DateTimeField()
    completed_by = IntField(foreign_key="user.id")
    __indexes__ = [("entity_type", "entity_id"), "status", "assignee_role"]


class TaskService:
    """Creates, lists and completes tasks."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        clock: Clock | None = None,
    ):
        self._registry = registry
        self._audit = audit
        self._clock = clock or SystemClock()
        self._tasks = registry.repository(Task)

    # -- creation ----------------------------------------------------------------

    def create(
        self,
        kind: str,
        title: str,
        *,
        assignee_id: int | None = None,
        assignee_role: str = "",
        entity_type: str = "",
        entity_id: int = 0,
        payload: dict | None = None,
    ) -> Task:
        """Open a task.  Exactly one of assignee_id/assignee_role required."""
        if (assignee_id is None) == (assignee_role == ""):
            raise StateError(
                "a task needs exactly one of assignee_id or assignee_role"
            )
        return self._tasks.create(
            kind=kind,
            title=title,
            assignee_id=assignee_id,
            assignee_role=assignee_role,
            entity_type=entity_type,
            entity_id=entity_id,
            payload=payload or {},
            created_at=self._clock.now(),
        )

    # -- inbox -------------------------------------------------------------------

    def inbox(self, principal: Principal) -> list[Task]:
        """Open tasks for *principal*: personal plus role-addressed ones."""
        personal = (
            self._tasks.query()
            .where("status", "=", "open")
            .where("assignee_id", "=", principal.user_id)
            .all()
        )
        role_names = [principal.role.value]
        if principal.is_expert:
            # Admins also see employee-role (expert) work.
            role_names = ["employee", "admin"] if principal.is_admin else ["employee"]
        by_role = (
            self._tasks.query()
            .where("status", "=", "open")
            .where("assignee_role", "in", role_names)
            .all()
        )
        merged = {task.id: task for task in personal + by_role}
        return sorted(merged.values(), key=lambda t: t.id)

    def open_for_entity(self, entity_type: str, entity_id: int) -> list[Task]:
        return (
            self._tasks.query()
            .where("status", "=", "open")
            .where("entity_type", "=", entity_type)
            .where("entity_id", "=", entity_id)
            .all()
        )

    def open_count(self, principal: Principal) -> int:
        return len(self.inbox(principal))

    def get(self, task_id: int) -> Task:
        return self._tasks.get(task_id)

    # -- completion ------------------------------------------------------------------

    def complete(self, principal: Principal, task_id: int) -> Task:
        """Mark a task done (by hand or by the rule engine)."""
        task = self._tasks.get(task_id)
        if task.status != "open":
            raise StateError(f"task {task_id} is {task.status}, not open")
        updated = self._tasks.update(
            task_id,
            status="done",
            completed_at=self._clock.now(),
            completed_by=principal.user_id,
        )
        self._audit.record(
            principal, "update", "task", task_id, f"completed: {task.title}"
        )
        return updated

    def cancel(self, principal: Principal, task_id: int) -> Task:
        task = self._tasks.get(task_id)
        if task.status != "open":
            raise StateError(f"task {task_id} is {task.status}, not open")
        updated = self._tasks.update(
            task_id,
            status="cancelled",
            completed_at=self._clock.now(),
            completed_by=principal.user_id,
        )
        self._audit.record(
            principal, "update", "task", task_id, f"cancelled: {task.title}"
        )
        return updated

    def complete_for_entity(
        self, principal: Principal, kind: str, entity_type: str, entity_id: int
    ) -> int:
        """Complete every open *kind* task attached to one object.

        Used by the rules: releasing an annotation completes its
        review task without anyone touching the task list.
        """
        done = 0
        for task in self.open_for_entity(entity_type, entity_id):
            if task.kind == kind:
                self.complete(principal, task.id)
                done += 1
        return done
