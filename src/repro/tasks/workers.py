"""Worker pool draining the durable job queue.

Each worker is a daemon thread in a claim → run → ack loop; a shared
heartbeat thread extends the leases of everything in flight so long
jobs survive their visibility timeout without per-worker timers.

Crash safety is the whole point of the design:

* A worker that dies mid-job (simulated by
  :class:`~repro.errors.CrashPoint` from a fault site) does **nothing**
  on the way down — no nack, no cleanup.  The job stays leased until
  the visibility timeout passes, then redelivers to a live worker.
  Handlers are therefore written to be redeliverable (idempotency keys
  plus compensation of any partial first attempt).
* A worker whose lease expired *while it was still running* (heartbeat
  thread killed, GC pause, …) gets :class:`~repro.errors.LeaseLost`
  from ``ack`` — the job was redelivered and someone else owns it now.
  The pool routes the loser's result to the handler's ``on_lease_lost``
  hook so the duplicate side effects are discarded, keeping the
  at-least-once queue effects-once at the domain layer.

Concurrency limits (``type_limits`` per job type, ``channel_limits`` per
channel — e.g. per instrument provider) are enforced at claim time: a
worker excludes saturated types/channels from its claim, so limits hold
across the whole pool without a central dispatcher.
"""

from __future__ import annotations

import threading
import time as _time
from typing import TYPE_CHECKING, Any

from repro.errors import (
    AccessDenied,
    CrashPoint,
    EntityNotFound,
    LeaseLost,
    ValidationError,
)
from repro.obs.tracing import TraceContext
from repro.resilience.faults import fault_point
from repro.tasks.queue import Job, JobQueue
from repro.util.clock import Clock, SystemClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: Errors that mean "this job can never succeed" — straight to dead,
#: no retry_wait churn (bad request, not bad luck).
NON_RETRYABLE = (ValidationError, EntityNotFound, AccessDenied)


class WorkerPool:
    """N worker threads + one heartbeat thread over a :class:`JobQueue`.

    ``start()`` spawns the threads; ``stop(drain=True)`` finishes what
    is claimed then exits; ``kill()`` abandons the threads with leases
    intact — the restart path the torture driver exercises.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        workers: int = 2,
        lease_seconds: float = 30.0,
        claim_batch: int = 4,
        poll_interval: float = 0.05,
        heartbeat_interval: float | None = None,
        type_limits: dict[str, int] | None = None,
        channel_limits: dict[str, int] | None = None,
        name: str = "pool",
        clock: Clock | None = None,
        obs: "Observability | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._queue = queue
        self._worker_count = workers
        self._lease_seconds = lease_seconds
        self._claim_batch = max(1, claim_batch)
        self._poll_interval = poll_interval
        # A third of the lease keeps two heartbeats of slack before
        # expiry even if one is delayed by the GIL or a slow commit.
        self._heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.01, lease_seconds / 3.0)
        )
        self._type_limits = dict(type_limits or {})
        self._channel_limits = dict(channel_limits or {})
        self.name = name
        self._clock = clock or SystemClock()
        self._obs = obs
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._heartbeat_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._drain_mode = False
        #: worker name → Job currently being run (heartbeat targets).
        self._in_flight: dict[str, Job] = {}
        self._killed_workers = 0
        self._jobs_run = 0
        self._m_running = None
        if obs is not None:
            self._m_running = obs.metrics.gauge(
                "queue_workers_running",
                "Live worker threads per pool",
                labels=("pool",),
            ).labels(pool=name)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._lock:
            if self._threads:
                raise RuntimeError(f"pool {self.name!r} is already started")
            self._stop.clear()
            self._drain_mode = False
            for index in range(self._worker_count):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(f"{self.name}-w{index + 1}",),
                    name=f"{self.name}-w{index + 1}",
                    daemon=True,
                )
                self._threads.append(thread)
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"{self.name}-heartbeat",
                daemon=True,
            )
        self._queue.attach_pool(self)
        for thread in self._threads:
            thread.start()
        self._heartbeat_thread.start()
        self._update_running_gauge()
        return self

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> bool:
        """Stop the pool.

        With ``drain=True`` workers first finish the backlog (claimed
        *and* claimable) — the graceful-shutdown contract: an enqueue
        racing the stop either lands before the last claim and runs, or
        stays pending for the next pool.  Returns ``True`` if every
        thread exited within *timeout*.
        """
        with self._lock:
            threads = list(self._threads)
            heartbeat = self._heartbeat_thread
            self._drain_mode = drain
        self._stop.set()
        deadline = self._clock.monotonic() + timeout
        joined = True
        for thread in threads:
            remaining = max(0.0, deadline - self._clock.monotonic())
            thread.join(remaining)
            joined = joined and not thread.is_alive()
        if heartbeat is not None:
            heartbeat.join(max(0.0, deadline - self._clock.monotonic()))
            joined = joined and not heartbeat.is_alive()
        with self._lock:
            self._threads = []
            self._heartbeat_thread = None
        self._queue.detach_pool(self)
        self._update_running_gauge()
        return joined

    def drain(self, *, timeout: float = 30.0) -> bool:
        """Graceful shutdown: finish the backlog, then stop."""
        return self.stop(drain=True, timeout=timeout)

    def kill(self) -> None:
        """Abandon the pool without stopping work cleanly.

        Threads are daemons and will die when their current claim loop
        observes the stop flag; in-flight leases are left to expire —
        exactly what a SIGKILL leaves behind.  Used by the torture
        driver to simulate a process kill around a restart.
        """
        self._stop.set()
        with self._lock:
            self._threads = []
            self._heartbeat_thread = None
            self._in_flight.clear()
        self._queue.detach_pool(self)
        self._update_running_gauge()

    def is_running(self) -> bool:
        with self._lock:
            return any(t.is_alive() for t in self._threads)

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    @property
    def killed_workers(self) -> int:
        """Workers that died on a simulated kill (torture accounting)."""
        with self._lock:
            return self._killed_workers

    @property
    def jobs_run(self) -> int:
        with self._lock:
            return self._jobs_run

    # -- the worker loop ---------------------------------------------------------------

    def _worker_loop(self, worker: str) -> None:
        try:
            while not self._stop.is_set():
                ran = self._claim_and_run(worker)
                if not ran:
                    self._queue.wait_for_work(self._poll_interval)
            if self._drain_mode:
                # Graceful drain: keep claiming until the queue is dry.
                while self._claim_and_run(worker):
                    pass
        except CrashPoint:
            # Simulated kill: die exactly as SIGKILL would — no nack, no
            # cleanup; the lease expires and the job redelivers.
            with self._lock:
                self._killed_workers += 1
            self._in_flight.pop(worker, None)
            self._update_running_gauge()
            return
        finally:
            self._in_flight.pop(worker, None)

    def _claim_and_run(self, worker: str) -> bool:
        """Claim up to a batch and run it; ``False`` when nothing was due."""
        exclude_types, exclude_channels = self._saturated()
        # Concurrency limits need headroom accounting per claimed job, so
        # limited pools claim one at a time; unlimited pools batch.
        limit = (
            1
            if (self._type_limits or self._channel_limits)
            else self._claim_batch
        )
        jobs = self._queue.claim(
            worker,
            limit=limit,
            lease_seconds=self._lease_seconds,
            exclude_job_types=exclude_types,
            exclude_channels=exclude_channels,
        )
        ran = False
        for job in jobs:
            self._run_job(worker, job)
            ran = True
        return ran

    def _saturated(self) -> tuple[set[str], set[str]]:
        """Job types / channels at their in-flight concurrency limit."""
        with self._lock:
            in_flight = list(self._in_flight.values())
        type_counts: dict[str, int] = {}
        channel_counts: dict[str, int] = {}
        for job in in_flight:
            type_counts[job.job_type] = type_counts.get(job.job_type, 0) + 1
            if job.channel:
                channel_counts[job.channel] = (
                    channel_counts.get(job.channel, 0) + 1
                )
        types = {
            t
            for t, cap in self._type_limits.items()
            if type_counts.get(t, 0) >= cap
        }
        channels = {
            c
            for c, cap in self._channel_limits.items()
            if channel_counts.get(c, 0) >= cap
        }
        return types, channels

    def _run_job(self, worker: str, job: Job) -> None:
        with self._lock:
            self._in_flight[worker] = job
        try:
            parent = TraceContext.from_dict(job.trace)
            if self._obs is not None:
                with self._obs.tracer.span(
                    "queue.job",
                    parent=parent,
                    job_id=job.id,
                    job_type=job.job_type,
                    attempt=job.attempts,
                    worker=worker,
                ) as span:
                    self._execute(worker, job, span)
            else:
                self._execute(worker, job, None)
        finally:
            with self._lock:
                self._in_flight.pop(worker, None)
                self._jobs_run += 1

    def _execute(self, worker: str, job: Job, span: Any) -> None:
        handler = self._queue.handler(job.job_type)
        result: Any = None
        try:
            fault_point("worker.run")
            if handler is None:
                raise ValidationError(
                    f"no handler registered for job type {job.job_type!r}"
                )
            result = handler(job)
            self._queue.ack(job.id, worker, result if isinstance(result, dict) else {})
            if span is not None:
                span.set(outcome="done")
        except CrashPoint:
            raise  # a simulated kill must not be softened into a nack
        except LeaseLost:
            # The visibility timeout fired mid-run and the job went to
            # someone else.  Hand the duplicate effects to the handler's
            # compensation hook; the queue row is the winner's problem.
            if span is not None:
                span.status = "error"
                span.set(outcome="lease_lost")
            hook = self._queue.lease_lost_handler(job.job_type)
            if hook is not None:
                try:
                    hook(job, result)
                except Exception:
                    pass  # compensation is best-effort; the winner re-runs
        except Exception as exc:
            retryable = not isinstance(exc, NON_RETRYABLE)
            if span is not None:
                span.status = "error"
                span.set(outcome="retry" if retryable else "dead")
            try:
                self._queue.nack(
                    job.id,
                    worker,
                    f"{type(exc).__name__}: {exc}",
                    retryable=retryable,
                )
            except LeaseLost:
                pass  # expired while failing: redelivery handles it

    # -- heartbeats -----------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        try:
            while not self._stop.wait(self._heartbeat_interval):
                self._beat()
            # During a drain, keep in-flight leases alive until the
            # workers finish their last claims (stop is set by now, so
            # the wait above no longer paces us).
            while self._drain_mode and self._has_in_flight():
                self._beat()
                _time.sleep(self._heartbeat_interval)
        except CrashPoint:
            with self._lock:
                self._killed_workers += 1
            return  # leases stop extending; expiry takes over

    def _has_in_flight(self) -> bool:
        with self._lock:
            return bool(self._in_flight)

    def _beat(self) -> None:
        with self._lock:
            flights = list(self._in_flight.items())
        for worker, job in flights:
            try:
                self._queue.heartbeat(
                    job.id, worker, extend_seconds=self._lease_seconds
                )
            except LeaseLost:
                pass  # the worker itself finds out at ack/nack time

    def _update_running_gauge(self) -> None:
        if self._m_running is not None:
            self._m_running.set(self.alive_count())
