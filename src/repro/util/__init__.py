"""Shared utilities: id generation, clocks, text helpers, validation."""

from repro.util.clock import Clock, SystemClock, ManualClock, Timer
from repro.util.ids import IdAllocator, token_hex
from repro.util.text import (
    normalize_whitespace,
    slugify,
    levenshtein,
    normalized_similarity,
    token_set_similarity,
    best_name_match,
)

__all__ = [
    "Clock",
    "SystemClock",
    "ManualClock",
    "Timer",
    "IdAllocator",
    "token_hex",
    "normalize_whitespace",
    "slugify",
    "levenshtein",
    "normalized_similarity",
    "token_set_similarity",
    "best_name_match",
]
