"""Clock abstraction.

Timestamps appear throughout B-Fabric (audit trails, task creation times,
workunit dates). Tests need deterministic time, so every subsystem takes a
:class:`Clock` and production code defaults to :class:`SystemClock`.
"""

from __future__ import annotations

import datetime as _dt
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of the current time."""

    @abstractmethod
    def now(self) -> _dt.datetime:
        """Return the current time as a naive UTC datetime."""

    def timestamp(self) -> float:
        """Return the current time as seconds since the epoch."""
        return self.now().replace(tzinfo=_dt.timezone.utc).timestamp()

    def isoformat(self) -> str:
        """Return the current time as an ISO-8601 string."""
        return self.now().isoformat(timespec="seconds")


class SystemClock(Clock):
    """The real wall clock (UTC)."""

    def now(self) -> _dt.datetime:
        return _dt.datetime.utcnow().replace(microsecond=0)


class ManualClock(Clock):
    """A clock that only moves when told to; for deterministic tests.

    >>> clock = ManualClock(start=_dt.datetime(2010, 1, 15, 9, 0))
    >>> clock.now().hour
    9
    >>> clock.advance(seconds=3600)
    >>> clock.now().hour
    10
    """

    def __init__(self, start: _dt.datetime | None = None):
        self._now = start or _dt.datetime(2010, 1, 1, 0, 0, 0)

    def now(self) -> _dt.datetime:
        return self._now

    def advance(self, *, seconds: float = 0.0, minutes: float = 0.0,
                hours: float = 0.0, days: float = 0.0) -> None:
        """Move the clock forward by the given amount."""
        delta = _dt.timedelta(
            seconds=seconds, minutes=minutes, hours=hours, days=days
        )
        if delta < _dt.timedelta(0):
            raise ValueError("clock cannot move backwards")
        self._now = self._now + delta

    def set(self, moment: _dt.datetime) -> None:
        """Jump to an absolute moment (may be earlier; tests own the clock)."""
        self._now = moment
