"""Clock abstraction.

Timestamps appear throughout B-Fabric (audit trails, task creation times,
workunit dates). Tests need deterministic time, so every subsystem takes a
:class:`Clock` and production code defaults to :class:`SystemClock`.

Besides wall time, clocks expose a *monotonic* reading for measuring
durations (:meth:`Clock.monotonic` / :meth:`Clock.timer`).  The
observability layer times every instrumented hot path through it, so
span and histogram tests run deterministically under :class:`ManualClock`.
"""

from __future__ import annotations

import datetime as _dt
import time as _time
from abc import ABC, abstractmethod


class Timer:
    """Measures elapsed seconds on a clock's monotonic source.

    >>> clock = ManualClock()
    >>> timer = clock.timer()
    >>> clock.advance(seconds=2.5)
    >>> timer.elapsed()
    2.5
    """

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: "Clock"):
        self._clock = clock
        self._start = clock.monotonic()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return max(0.0, self._clock.monotonic() - self._start)

    def restart(self) -> float:
        """Return the elapsed seconds and start a fresh measurement."""
        now = self._clock.monotonic()
        elapsed = max(0.0, now - self._start)
        self._start = now
        return elapsed


class Clock(ABC):
    """Source of the current time."""

    @abstractmethod
    def now(self) -> _dt.datetime:
        """Return the current time as a naive UTC datetime."""

    def timestamp(self) -> float:
        """Return the current time as seconds since the epoch."""
        return self.now().replace(tzinfo=_dt.timezone.utc).timestamp()

    def isoformat(self) -> str:
        """Return the current time as an ISO-8601 string."""
        return self.now().isoformat(timespec="seconds")

    def monotonic(self) -> float:
        """A reading in seconds that never moves backwards.

        Only differences are meaningful; the default derives it from
        wall time (sub-second resolution not guaranteed — real clocks
        override this).
        """
        return self.timestamp()

    def timer(self) -> Timer:
        """Start measuring elapsed time from now."""
        return Timer(self)


class SystemClock(Clock):
    """The real wall clock (UTC)."""

    __slots__ = ("_iso_second", "_iso_value")

    def __init__(self) -> None:
        self._iso_second = -1
        self._iso_value = ""

    def now(self) -> _dt.datetime:
        return _dt.datetime.utcnow().replace(microsecond=0)

    def isoformat(self) -> str:
        # Timestamps are second-resolution, so the formatted string only
        # changes once a second; caching it keeps per-event logging off
        # the datetime-formatting path (it is called on every commit).
        second = int(_time.time())
        if second != self._iso_second:
            self._iso_value = _dt.datetime.utcfromtimestamp(second).isoformat()
            self._iso_second = second
        return self._iso_value

    def monotonic(self) -> float:
        return _time.perf_counter()


class ManualClock(Clock):
    """A clock that only moves when told to; for deterministic tests.

    >>> clock = ManualClock(start=_dt.datetime(2010, 1, 15, 9, 0))
    >>> clock.now().hour
    9
    >>> clock.advance(seconds=3600)
    >>> clock.now().hour
    10
    """

    def __init__(self, start: _dt.datetime | None = None):
        self._now = start or _dt.datetime(2010, 1, 1, 0, 0, 0)
        self._mono = 0.0

    def now(self) -> _dt.datetime:
        return self._now

    def monotonic(self) -> float:
        """Seconds accumulated by :meth:`advance` (``set`` never rewinds it)."""
        return self._mono

    def advance(self, *, seconds: float = 0.0, minutes: float = 0.0,
                hours: float = 0.0, days: float = 0.0) -> None:
        """Move the clock forward by the given amount."""
        delta = _dt.timedelta(
            seconds=seconds, minutes=minutes, hours=hours, days=days
        )
        if delta < _dt.timedelta(0):
            raise ValueError("clock cannot move backwards")
        self._now = self._now + delta
        self._mono += delta.total_seconds()

    def set(self, moment: _dt.datetime) -> None:
        """Jump to an absolute moment (may be earlier; tests own the clock)."""
        self._now = moment
