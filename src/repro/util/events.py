"""A minimal synchronous event bus with subscriber isolation.

Decouples producers (annotation created, import finished, experiment
done) from consumers (the task system, the search indexer) without any
threading: handlers run inline, in subscription order.

Subscribers are *isolated*: one handler raising does not prevent
delivery to the handlers behind it.  The failed delivery is counted
(``events_subscriber_errors_total``), logged, and routed to the
attached dead-letter queue (:meth:`EventBus.attach_dlq`) — or, without
one, kept on a bounded in-memory ``failures`` list — so a crashing
consumer can neither lose an event nor poison later deliveries.

When constructed with an observability hub the bus records one publish
latency histogram and a handler-invocation counter per event name.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.resilience.dlq import DeadLetterQueue

Handler = Callable[..., None]

#: Failures remembered in memory when no dead-letter queue is attached.
_FAILURE_MEMORY = 100


class EventBus:
    """Publish/subscribe by event name."""

    def __init__(self, *, obs: "Observability | None" = None) -> None:
        self._handlers: dict[str, list[Handler]] = defaultdict(list)
        self._delivered = 0
        self._errors = 0
        self._dlq: "DeadLetterQueue | None" = None
        #: ``(event, handler, error)`` of recent failures (fallback
        #: introspection when no DLQ is attached; DLQ rows otherwise).
        self.failures: deque[tuple[str, Handler, BaseException]] = deque(
            maxlen=_FAILURE_MEMORY
        )
        self._obs = obs
        self._m_errors = None
        if obs is not None:
            self._m_publish = obs.metrics.histogram(
                "events_publish_seconds",
                "Latency of one publish (all handlers)",
                labels=("event",),
            )
            self._m_handled = obs.metrics.counter(
                "events_handled_total",
                "Handler invocations",
                labels=("event",),
            )
            self._m_errors = obs.metrics.counter(
                "events_subscriber_errors_total",
                "Handler invocations that raised (isolated, dead-lettered)",
                labels=("event",),
            )

    def attach_dlq(self, dlq: "DeadLetterQueue") -> None:
        """Route failed deliveries to *dlq* from now on."""
        self._dlq = dlq

    def subscribe(self, event: str, handler: Handler) -> None:
        """Register *handler* for *event* (duplicates allowed, run twice)."""
        self._handlers[event].append(handler)

    def unsubscribe(self, event: str, handler: Handler) -> None:
        try:
            self._handlers[event].remove(handler)
        except ValueError:
            pass

    def handlers_for(self, event: str) -> list[Handler]:
        """The current subscribers of *event*, in delivery order."""
        return list(self._handlers.get(event, ()))

    def publish(self, event: str, **payload: Any) -> int:
        """Call every handler of *event*; returns how many were invoked.

        A failing handler does not abort the publication: the error is
        isolated, counted, and the failed delivery is dead-lettered so
        it can be replayed once the consumer is fixed.  Every handler
        behind the failing one still runs.
        """
        handlers = list(self._handlers.get(event, ()))
        timer = self._obs.clock.timer() if self._obs is not None else None
        ran = 0
        try:
            for handler in handlers:
                ran += 1
                self._delivered += 1
                try:
                    handler(**payload)
                except Exception as exc:
                    self._errors += 1
                    if self._m_errors is not None:
                        self._m_errors.labels(event=event).inc()
                    if self._obs is not None:
                        self._obs.log.log(
                            "events.subscriber_error",
                            topic=event,
                            handler=getattr(handler, "__qualname__", repr(handler)),
                            error=str(exc),
                        )
                    if self._dlq is not None:
                        self._dlq.add(event, handler, payload, exc)
                    else:
                        self.failures.append((event, handler, exc))
        finally:
            if self._obs is not None:
                self._m_handled.labels(event=event).inc(ran)
                assert timer is not None
                self._m_publish.labels(event=event).observe(timer.elapsed())
        return len(handlers)

    @property
    def delivered(self) -> int:
        """Total handler invocations (monitoring)."""
        return self._delivered

    @property
    def subscriber_errors(self) -> int:
        """Total handler invocations that raised (monitoring)."""
        return self._errors
