"""A minimal synchronous event bus.

Decouples producers (annotation created, import finished, experiment
done) from consumers (the task system, the search indexer) without any
threading: handlers run inline, in subscription order.

When constructed with an observability hub the bus records one publish
latency histogram and a handler-invocation counter per event name.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

Handler = Callable[..., None]


class EventBus:
    """Publish/subscribe by event name."""

    def __init__(self, *, obs: "Observability | None" = None) -> None:
        self._handlers: dict[str, list[Handler]] = defaultdict(list)
        self._delivered = 0
        self._obs = obs
        if obs is not None:
            self._m_publish = obs.metrics.histogram(
                "events_publish_seconds",
                "Latency of one publish (all handlers)",
                labels=("event",),
            )
            self._m_handled = obs.metrics.counter(
                "events_handled_total",
                "Handler invocations",
                labels=("event",),
            )

    def subscribe(self, event: str, handler: Handler) -> None:
        """Register *handler* for *event* (duplicates allowed, run twice)."""
        self._handlers[event].append(handler)

    def unsubscribe(self, event: str, handler: Handler) -> None:
        try:
            self._handlers[event].remove(handler)
        except ValueError:
            pass

    def publish(self, event: str, **payload: Any) -> int:
        """Call every handler of *event*; returns how many ran.

        A failing handler aborts the publication — events fire inside
        service operations and a broken consumer must not be silently
        skipped (the enclosing transaction, if any, will roll back).
        Handlers that did run before the failure keep their delivery
        credit.
        """
        handlers = list(self._handlers.get(event, ()))
        timer = self._obs.clock.timer() if self._obs is not None else None
        ran = 0
        try:
            for handler in handlers:
                ran += 1
                self._delivered += 1
                handler(**payload)
        finally:
            if self._obs is not None:
                self._m_handled.labels(event=event).inc(ran)
                assert timer is not None
                self._m_publish.labels(event=event).observe(timer.elapsed())
        return len(handlers)

    @property
    def delivered(self) -> int:
        """Total handler invocations (monitoring)."""
        return self._delivered
