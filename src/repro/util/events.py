"""A minimal synchronous event bus.

Decouples producers (annotation created, import finished, experiment
done) from consumers (the task system, the search indexer) without any
threading: handlers run inline, in subscription order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

Handler = Callable[..., None]


class EventBus:
    """Publish/subscribe by event name."""

    def __init__(self) -> None:
        self._handlers: dict[str, list[Handler]] = defaultdict(list)
        self._delivered = 0

    def subscribe(self, event: str, handler: Handler) -> None:
        """Register *handler* for *event* (duplicates allowed, run twice)."""
        self._handlers[event].append(handler)

    def unsubscribe(self, event: str, handler: Handler) -> None:
        try:
            self._handlers[event].remove(handler)
        except ValueError:
            pass

    def publish(self, event: str, **payload: Any) -> int:
        """Call every handler of *event*; returns how many ran.

        A failing handler aborts the publication — events fire inside
        service operations and a broken consumer must not be silently
        skipped (the enclosing transaction, if any, will roll back).
        """
        handlers = list(self._handlers.get(event, ()))
        for handler in handlers:
            handler(**payload)
        self._delivered += len(handlers)
        return len(handlers)

    @property
    def delivered(self) -> int:
        """Total handler invocations (monitoring)."""
        return self._delivered
