"""Identifier generation.

B-Fabric assigns every persistent object a numeric surrogate id.  The
storage engine hands allocation to an :class:`IdAllocator` per table so
that ids remain dense, monotonic, and reproducible in tests.
"""

from __future__ import annotations

import secrets
import threading


class IdAllocator:
    """Thread-safe monotonic integer id source.

    The allocator never reissues an id, even after deletes: B-Fabric's
    audit trail refers to objects by id long after they are gone.
    """

    def __init__(self, start: int = 1):
        if start < 1:
            raise ValueError("ids start at 1")
        self._next = start
        self._lock = threading.Lock()

    def allocate(self) -> int:
        """Return the next unused id."""
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def peek(self) -> int:
        """Return the id the next :meth:`allocate` call would produce."""
        with self._lock:
            return self._next

    def observe(self, used_id: int) -> None:
        """Tell the allocator an id is in use (e.g. during WAL recovery)."""
        with self._lock:
            if used_id >= self._next:
                self._next = used_id + 1


def token_hex(nbytes: int = 16) -> str:
    """Return a random hex token, e.g. for web-session identifiers."""
    return secrets.token_hex(nbytes)
