"""Text utilities: normalization, similarity, and fuzzy name matching.

Two B-Fabric features rest on these primitives:

* *annotation similarity detection* (paper §2, Figures 5–7): newly created
  vocabulary entries are compared against existing ones so that experts
  get merge recommendations for near-duplicates such as ``Hopeless`` vs.
  ``Hopeles``;
* *assign-extracts intelligence* (Figure 11): imported data resources are
  pre-matched to extracts by file-name similarity so the scientist
  "typically just needs to press the save button".
"""

from __future__ import annotations

import re
import unicodedata

_WHITESPACE_RE = re.compile(r"\s+")
_SLUG_RE = re.compile(r"[^a-z0-9]+")


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def slugify(text: str) -> str:
    """Lower-case *text* and replace non-alphanumerics with hyphens.

    >>> slugify("Arabidopsis Thaliana (light)")
    'arabidopsis-thaliana-light'
    """
    text = unicodedata.normalize("NFKD", text)
    text = text.encode("ascii", "ignore").decode("ascii").lower()
    return _SLUG_RE.sub("-", text).strip("-")


def fold(text: str) -> str:
    """Case-fold and strip accents for similarity comparison."""
    text = unicodedata.normalize("NFKD", text)
    text = "".join(ch for ch in text if not unicodedata.combining(ch))
    return normalize_whitespace(text.casefold())


def levenshtein(a: str, b: str, *, limit: int | None = None) -> int:
    """Return the edit distance between *a* and *b*.

    With *limit*, computation stops early once the distance provably
    exceeds it and ``limit + 1`` is returned; callers only comparing
    against a threshold avoid the full O(len(a)*len(b)) cost for very
    different strings.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if limit is not None and abs(len(a) - len(b)) > limit:
        return limit + 1
    # Classic two-row dynamic program; `previous` is the row for a[:i].
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            value = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost,  # substitution
            )
            current.append(value)
            if value < row_min:
                row_min = value
        if limit is not None and row_min > limit:
            return limit + 1
        previous = current
    return previous[-1]


def normalized_similarity(a: str, b: str) -> float:
    """Return edit-distance similarity in [0, 1]; 1.0 means identical.

    Strings are case- and accent-folded first, so ``Hopeless`` vs.
    ``hopeles`` score high.

    >>> round(normalized_similarity("Hopeless", "Hopeles"), 3)
    0.875
    """
    fa, fb = fold(a), fold(b)
    if not fa and not fb:
        return 1.0
    longest = max(len(fa), len(fb))
    return 1.0 - levenshtein(fa, fb) / longest


def token_set_similarity(a: str, b: str) -> float:
    """Jaccard similarity of the word sets of *a* and *b* in [0, 1].

    Complements edit distance for multi-word annotations where word order
    differs (``"heat shock"`` vs. ``"shock heat"``).
    """
    ta = set(fold(a).split())
    tb = set(fold(b).split())
    if not ta and not tb:
        return 1.0
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)


def combined_similarity(a: str, b: str) -> float:
    """Blend of edit-distance and token-set similarity used system-wide.

    The max of the two measures is taken: either near-identical spelling
    or near-identical word sets is enough to recommend a merge.
    """
    return max(normalized_similarity(a, b), token_set_similarity(a, b))


_STEM_RE = re.compile(r"\.[A-Za-z0-9]{1,8}$")


def filename_stem(name: str) -> str:
    """Strip directories and one trailing extension from a file name."""
    name = name.replace("\\", "/").rsplit("/", 1)[-1]
    return _STEM_RE.sub("", name)


def best_name_match(
    name: str,
    candidates: dict[object, str],
    *,
    minimum: float = 0.3,
) -> tuple[object, float] | None:
    """Return ``(key, score)`` of the candidate most similar to *name*.

    *candidates* maps arbitrary keys (e.g. extract ids) to display names.
    File extensions are stripped from *name* before comparison so that
    ``wt_light_1.cel`` matches the extract ``wt light 1``.  Returns
    ``None`` when nothing reaches *minimum*.
    """
    stem = filename_stem(name)
    # Treat separators as spaces so that underscore/hyphen conventions in
    # file names line up with human-entered extract names.
    stem_text = re.sub(r"[_\-.]+", " ", stem)
    best_key: object | None = None
    best_score = minimum
    for key, candidate in candidates.items():
        cand_text = re.sub(r"[_\-.]+", " ", candidate)
        score = combined_similarity(stem_text, cand_text)
        if score > best_score or (score == best_score and best_key is None):
            best_key = key
            best_score = score
    if best_key is None:
        return None
    return best_key, best_score
