"""Workflow engine (OSWorkflow analogue).

The paper drives both data import and experiment execution through
workflows and notes that "B-Fabric supports arbitrary complex workflows
based on its underlying workflow engine (OSWorkflow)".  This engine
reproduces OSWorkflow's model:

* a :class:`~repro.workflow.definitions.WorkflowDefinition` is a named
  graph of *steps*; each step offers *actions*;
* an action has an optional guard *condition*, *pre-functions* that run
  before the transition and *post-functions* after it, and a result
  step (or ``END``);
* a running :class:`~repro.workflow.engine.WorkflowInstance` is
  persisted with its current step and context, and every transition is
  recorded in a history table;
* the current step can be *highlighted* in a textual or DOT rendering —
  the demo's "the next step to be taken by the user is highlighted in
  the graphical representation".
"""

from repro.workflow.definitions import (
    END,
    Action,
    Step,
    WorkflowDefinition,
)
from repro.workflow.engine import WorkflowEngine, WorkflowInstance, workflow_models
from repro.workflow.render import render_ascii, render_dot

__all__ = [
    "END",
    "Action",
    "Step",
    "WorkflowDefinition",
    "WorkflowEngine",
    "WorkflowInstance",
    "workflow_models",
    "render_ascii",
    "render_dot",
]
