"""Workflow definitions: steps, actions, conditions, functions.

Definitions are code (like OSWorkflow's XML, but typed and validated at
construction).  They are immutable once validated; instances reference
them by name through the engine's definition registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import WorkflowDefinitionError

#: Sentinel result: firing the action completes the workflow.
END = "__end__"

#: Guard signature: receives the instance context, returns admissibility.
Condition = Callable[[dict[str, Any]], bool]

#: Pre/post function signature: receives the mutable instance context.
StepFunction = Callable[[dict[str, Any]], None]


@dataclass(frozen=True)
class Action:
    """One action offered by a step.

    :param name: identifier, unique within the step.
    :param target: the step the workflow moves to, or :data:`END`.
    :param label: human-readable button text for the portal.
    :param condition: optional guard; the action is only available when
        it returns ``True`` for the instance context.
    :param pre_functions: run before the transition (still in the old
        step); raising aborts the transition.
    :param post_functions: run after the transition (in the new step).
    :param auto: fired automatically by the engine as soon as it becomes
        available after entering the step (system steps, e.g. "run the
        R report generation").
    """

    name: str
    target: str
    label: str = ""
    condition: Condition | None = None
    pre_functions: tuple[StepFunction, ...] = ()
    post_functions: tuple[StepFunction, ...] = ()
    auto: bool = False

    def available(self, context: dict[str, Any]) -> bool:
        if self.condition is None:
            return True
        return bool(self.condition(context))


@dataclass(frozen=True)
class Step:
    """One node of the workflow graph."""

    name: str
    actions: tuple[Action, ...]
    label: str = ""
    description: str = ""

    def action(self, name: str) -> Action | None:
        for action in self.actions:
            if action.name == name:
                return action
        return None

    @property
    def is_terminal(self) -> bool:
        return not self.actions


class WorkflowDefinition:
    """A validated, immutable workflow graph."""

    def __init__(
        self,
        name: str,
        steps: list[Step],
        *,
        initial_step: str | None = None,
        description: str = "",
    ):
        if not steps:
            raise WorkflowDefinitionError(f"workflow {name!r} has no steps")
        self.name = name
        self.description = description
        self._steps: dict[str, Step] = {}
        for step in steps:
            if step.name == END:
                raise WorkflowDefinitionError(
                    f"workflow {name!r}: step may not be named {END!r}"
                )
            if step.name in self._steps:
                raise WorkflowDefinitionError(
                    f"workflow {name!r}: duplicate step {step.name!r}"
                )
            self._steps[step.name] = step
        self.initial_step = initial_step or steps[0].name
        self._validate()

    def _validate(self) -> None:
        if self.initial_step not in self._steps:
            raise WorkflowDefinitionError(
                f"workflow {self.name!r}: initial step "
                f"{self.initial_step!r} does not exist"
            )
        for step in self._steps.values():
            seen_actions: set[str] = set()
            for action in step.actions:
                if action.name in seen_actions:
                    raise WorkflowDefinitionError(
                        f"workflow {self.name!r}: step {step.name!r} has "
                        f"duplicate action {action.name!r}"
                    )
                seen_actions.add(action.name)
                if action.target != END and action.target not in self._steps:
                    raise WorkflowDefinitionError(
                        f"workflow {self.name!r}: action "
                        f"{step.name}.{action.name} targets unknown step "
                        f"{action.target!r}"
                    )
        unreachable = set(self._steps) - self._reachable()
        if unreachable:
            raise WorkflowDefinitionError(
                f"workflow {self.name!r}: unreachable step(s) "
                f"{sorted(unreachable)!r}"
            )
        if not self._can_finish():
            raise WorkflowDefinitionError(
                f"workflow {self.name!r} can never complete: no END action "
                "and no terminal step is reachable"
            )

    def _reachable(self) -> set[str]:
        frontier = [self.initial_step]
        seen: set[str] = set()
        while frontier:
            current = frontier.pop()
            if current in seen or current == END:
                continue
            seen.add(current)
            for action in self._steps[current].actions:
                frontier.append(action.target)
        return seen

    def _can_finish(self) -> bool:
        for step_name in self._reachable():
            step = self._steps[step_name]
            if step.is_terminal:
                return True
            if any(action.target == END for action in step.actions):
                return True
        return False

    # -- access ------------------------------------------------------------------

    def step(self, name: str) -> Step:
        try:
            return self._steps[name]
        except KeyError:
            raise WorkflowDefinitionError(
                f"workflow {self.name!r} has no step {name!r}"
            ) from None

    def steps(self) -> list[Step]:
        return list(self._steps.values())

    def step_names(self) -> list[str]:
        return list(self._steps)

    def edges(self) -> list[tuple[str, str, str]]:
        """``(from_step, action, to_step)`` for every transition."""
        result = []
        for step in self._steps.values():
            for action in step.actions:
                result.append((step.name, action.name, action.target))
        return result
