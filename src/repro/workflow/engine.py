"""The workflow engine: instances, transitions, history.

Instances are persisted rows; their mutable ``context`` dict travels
through conditions and pre/post functions.  ``auto`` actions chain: after
every transition the engine keeps firing available auto-actions until a
step requires a human (this is how the demo's single-step "generate an R
report" workflow runs to completion by itself).
"""

from __future__ import annotations

import time
from typing import Any

from repro.audit.log import AuditLog
from repro.errors import (
    EntityNotFound,
    InvalidActionError,
    StateError,
    WorkflowConditionFailed,
    WorkflowDefinitionError,
    WorkflowTransitionFailed,
)
from repro.obs import Observability
from repro.resilience.faults import fault_point
from repro.resilience.policies import RetryPolicy
from repro.orm import (
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    TextField,
)
from repro.security.principals import Principal
from repro.util.clock import Clock, SystemClock
from repro.util.events import EventBus
from repro.workflow.definitions import END, WorkflowDefinition

INSTANCE_STATES = ("active", "completed", "cancelled", "failed")

#: Safety bound on auto-action chaining (a cycle of autos would spin).
_MAX_AUTO_CHAIN = 100

#: Default bounded retry for transition pre-functions.  Nothing is
#: persisted before they run, so re-running is safe; the short backoff
#: absorbs transient failures (a flaky notifier, a busy store).
DEFAULT_TRANSITION_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, max_delay=0.1, seed=0
)


class WorkflowInstance(Model):
    """A running (or finished) workflow attached to a domain object."""

    __table__ = "workflow_instance"
    id = IntField(primary_key=True)
    definition = TextField(nullable=False, index=True)
    entity_type = TextField(default="")
    entity_id = IntField(default=0)
    current_step = TextField(nullable=False)
    status = TextField(
        nullable=False, default="active", check=lambda v: v in INSTANCE_STATES
    )
    context = JsonField(default=dict)
    created_by = IntField(nullable=False, foreign_key="user.id")
    created_at = DateTimeField()
    updated_at = DateTimeField()
    __indexes__ = [("entity_type", "entity_id"), "status"]


class WorkflowEvent(Model):
    """One recorded transition of an instance."""

    __table__ = "workflow_event"
    id = IntField(primary_key=True)
    instance_id = IntField(nullable=False, foreign_key="workflow_instance.id")
    at = DateTimeField()
    actor = TextField(default="")
    action = TextField(nullable=False)
    from_step = TextField(nullable=False)
    to_step = TextField(nullable=False)


def workflow_models() -> list[type[Model]]:
    return [WorkflowInstance, WorkflowEvent]


class WorkflowEngine:
    """Runs definitions; owns the definition registry."""

    def __init__(
        self,
        registry: Registry,
        *,
        audit: AuditLog,
        events: EventBus,
        clock: Clock | None = None,
        obs: Observability | None = None,
        transition_retry: RetryPolicy | None = None,
    ):
        self._registry = registry
        self._audit = audit
        self._events = events
        self._clock = clock or SystemClock()
        self._transition_retry = (
            transition_retry
            if transition_retry is not None
            else DEFAULT_TRANSITION_RETRY
        )
        self.obs = obs if obs is not None else Observability()
        self._definitions: dict[str, WorkflowDefinition] = {}
        self._instances = registry.repository(WorkflowInstance)
        self._history = registry.repository(WorkflowEvent)
        self._m_transition_seconds = self.obs.metrics.histogram(
            "workflow_transition_seconds",
            "One fired action: guard, functions, persistence",
            labels=("definition", "action"),
        )
        self._m_transitions = self.obs.metrics.counter(
            "workflow_transitions_total",
            "Fired actions",
            labels=("definition",),
        )
        self._m_active = self.obs.metrics.gauge(
            "workflow_active", "Workflow instances currently active"
        )
        self._m_started = self.obs.metrics.counter(
            "workflow_started_total", "Instances started", labels=("definition",)
        )
        self._m_transition_retries = self.obs.metrics.counter(
            "workflow_transition_retries_total",
            "Transition pre-function attempts that were retried",
            labels=("definition",),
        )
        self._m_transition_failures = self.obs.metrics.counter(
            "workflow_transition_failures_total",
            "Transitions that exhausted their retries (instance failed)",
            labels=("definition",),
        )

    # -- definitions ----------------------------------------------------------------

    def register_definition(self, definition: WorkflowDefinition) -> None:
        if definition.name in self._definitions:
            raise WorkflowDefinitionError(
                f"workflow {definition.name!r} already registered"
            )
        self._definitions[definition.name] = definition

    def definition(self, name: str) -> WorkflowDefinition:
        try:
            return self._definitions[name]
        except KeyError:
            raise WorkflowDefinitionError(
                f"no workflow definition named {name!r}"
            ) from None

    def definition_names(self) -> list[str]:
        return sorted(self._definitions)

    # -- lifecycle --------------------------------------------------------------------

    def start(
        self,
        principal: Principal,
        definition_name: str,
        *,
        entity_type: str = "",
        entity_id: int = 0,
        context: dict[str, Any] | None = None,
    ) -> WorkflowInstance:
        """Create an instance in the definition's initial step.

        Auto-actions available in the initial step fire immediately.
        """
        definition = self.definition(definition_name)
        instance = self._instances.create(
            definition=definition_name,
            entity_type=entity_type,
            entity_id=entity_id,
            current_step=definition.initial_step,
            status="active",
            context=context or {},
            created_by=principal.user_id,
            created_at=self._clock.now(),
            updated_at=self._clock.now(),
        )
        self._audit.record(
            principal, "create", "workflow_instance", instance.id,
            f"started {definition_name}",
        )
        self._m_started.labels(definition=definition_name).inc()
        self._m_active.inc()
        self._events.publish(
            "workflow.started", instance=instance, principal=principal
        )
        return self._run_auto_actions(principal, instance)

    def get(self, instance_id: int) -> WorkflowInstance:
        instance = self._instances.get_or_none(instance_id)
        if instance is None:
            raise EntityNotFound("WorkflowInstance", instance_id)
        return instance

    def for_entity(self, entity_type: str, entity_id: int) -> list[WorkflowInstance]:
        return (
            self._instances.query()
            .where("entity_type", "=", entity_type)
            .where("entity_id", "=", entity_id)
            .order_by("id")
            .all()
        )

    def active_instances(self) -> list[WorkflowInstance]:
        return (
            self._instances.query().where("status", "=", "active").order_by("id").all()
        )

    # -- stepping ---------------------------------------------------------------------

    def available_actions(self, instance_id: int) -> list[str]:
        """Actions the current step offers whose conditions hold."""
        instance = self.get(instance_id)
        if instance.status != "active":
            return []
        step = self.definition(instance.definition).step(instance.current_step)
        return [
            action.name
            for action in step.actions
            if action.available(instance.context)
        ]

    def fire(
        self,
        principal: Principal,
        instance_id: int,
        action_name: str,
        **context_updates: Any,
    ) -> WorkflowInstance:
        """Perform *action_name* on the instance.

        ``context_updates`` merge into the context *before* the guard is
        evaluated, so form input can satisfy conditions.  After the
        transition, available auto-actions chain.
        """
        timer = self.obs.timer()
        instance = self.get(instance_id)
        if instance.status != "active":
            raise StateError(
                f"workflow instance {instance_id} is {instance.status}"
            )
        definition = self.definition(instance.definition)
        step = definition.step(instance.current_step)
        action = step.action(action_name)
        if action is None:
            raise InvalidActionError(
                action_name, step.name, [a.name for a in step.actions]
            )
        context = dict(instance.context)
        context.update(context_updates)
        if not action.available(context):
            raise WorkflowConditionFailed(
                f"condition of {step.name}.{action_name} not satisfied"
            )
        self._execute_pre_functions(principal, instance, step.name, action, context)

        to_step = action.target
        now = self._clock.now()
        if to_step == END:
            updated = self._instances.update(
                instance_id,
                status="completed",
                context=context,
                updated_at=now,
            )
        else:
            updated = self._instances.update(
                instance_id,
                current_step=to_step,
                context=context,
                updated_at=now,
            )
        self._history.create(
            instance_id=instance_id,
            at=now,
            actor=principal.login,
            action=action_name,
            from_step=step.name,
            to_step=to_step,
        )

        for function in action.post_functions:
            function(context)
        # Post-functions may mutate the context; persist their effects.
        updated = self._instances.update(instance_id, context=context)

        if updated.status == "completed":
            self._finish_transition(timer, updated, action_name, completed=True)
            self._events.publish(
                "workflow.completed", instance=updated, principal=principal
            )
            return updated
        if definition.step(updated.current_step).is_terminal:
            updated = self._instances.update(instance_id, status="completed")
            self._finish_transition(timer, updated, action_name, completed=True)
            self._events.publish(
                "workflow.completed", instance=updated, principal=principal
            )
            return updated
        self._finish_transition(timer, updated, action_name, completed=False)
        self._events.publish(
            "workflow.transitioned", instance=updated, action=action_name,
            principal=principal,
        )
        return self._run_auto_actions(principal, updated)

    def _execute_pre_functions(
        self,
        principal: Principal,
        instance: WorkflowInstance,
        step_name: str,
        action,
        context: dict[str, Any],
    ) -> None:
        """Run the action's pre-functions under the bounded retry policy.

        Nothing of the transition has been persisted yet, so a failed
        attempt can simply re-run (pre-functions are expected to be
        idempotent over the context).  When the attempts are exhausted
        the instance moves to the terminal ``failed`` state with the
        whole error chain in its context, and
        :class:`~repro.errors.WorkflowTransitionFailed` is raised.
        """
        retry = self._transition_retry
        delays = retry.delays() if retry is not None else iter(())
        attempts: list[str] = []
        while True:
            try:
                fault_point("workflow.transition")
                for function in action.pre_functions:
                    function(context)
                return
            except Exception as exc:
                attempts.append(f"{type(exc).__name__}: {exc}")
                retryable = retry is not None and retry.retryable(exc)
                delay = next(delays, None) if retryable else None
                if delay is None:
                    self._fail_transition(
                        principal, instance, step_name, action.name,
                        attempts, exc,
                    )
                self._m_transition_retries.labels(
                    definition=instance.definition
                ).inc()
                self.obs.log.log(
                    "workflow.transition_retry",
                    instance=instance.id,
                    action=action.name,
                    attempt=len(attempts),
                    delay=delay,
                    error=str(exc),
                )
                if delay > 0:
                    time.sleep(delay)

    def _fail_transition(
        self,
        principal: Principal,
        instance: WorkflowInstance,
        step_name: str,
        action_name: str,
        attempts: list[str],
        cause: BaseException,
    ) -> None:
        """Move *instance* to terminal ``failed``; always raises."""
        now = self._clock.now()
        context = dict(self.get(instance.id).context)
        context["failure_reason"] = attempts[-1]
        context["error_chain"] = list(attempts)
        updated = self._instances.update(
            instance.id, status="failed", context=context, updated_at=now
        )
        self._m_active.dec()
        self._m_transition_failures.labels(definition=instance.definition).inc()
        self._history.create(
            instance_id=instance.id,
            at=now,
            actor=principal.login,
            action=action_name,
            from_step=step_name,
            to_step="__failed__",
        )
        self.obs.log.log(
            "workflow.transition_failed",
            instance=instance.id,
            action=action_name,
            attempts=len(attempts),
            error=attempts[-1],
        )
        self._audit.record(
            principal, "update", "workflow_instance", instance.id,
            f"failed after {len(attempts)} attempt(s): {attempts[-1]}",
        )
        self._events.publish(
            "workflow.failed", instance=updated, principal=principal
        )
        raise WorkflowTransitionFailed(
            f"workflow instance {instance.id}: action {action_name!r} in "
            f"step {step_name!r} failed after {len(attempts)} attempt(s): "
            f"{attempts[-1]}",
            attempts=attempts,
        ) from cause

    def _finish_transition(
        self, timer, instance: WorkflowInstance, action_name: str, *, completed: bool
    ) -> None:
        """Record per-transition metrics; *timer* was started at fire()."""
        elapsed = timer.elapsed()
        self._m_transition_seconds.labels(
            definition=instance.definition, action=action_name
        ).observe(elapsed)
        self._m_transitions.labels(definition=instance.definition).inc()
        if completed:
            self._m_active.dec()
        self.obs.log.log(
            "workflow.transition",
            instance=instance.id,
            definition=instance.definition,
            action=action_name,
            to_step=instance.current_step,
            status=instance.status,
            duration=elapsed,
        )

    def _run_auto_actions(
        self, principal: Principal, instance: WorkflowInstance
    ) -> WorkflowInstance:
        """Chain auto-actions until a human step or completion."""
        definition = self.definition(instance.definition)
        for _ in range(_MAX_AUTO_CHAIN):
            if instance.status != "active":
                return instance
            step = definition.step(instance.current_step)
            auto = next(
                (
                    action
                    for action in step.actions
                    if action.auto and action.available(instance.context)
                ),
                None,
            )
            if auto is None:
                return instance
            instance = self.fire(principal, instance.id, auto.name)
        raise StateError(
            f"workflow instance {instance.id}: auto-action chain exceeded "
            f"{_MAX_AUTO_CHAIN} transitions (cycle of auto actions?)"
        )

    def cancel(self, principal: Principal, instance_id: int) -> WorkflowInstance:
        instance = self.get(instance_id)
        if instance.status != "active":
            raise StateError(
                f"workflow instance {instance_id} is {instance.status}"
            )
        updated = self._instances.update(
            instance_id, status="cancelled", updated_at=self._clock.now()
        )
        self._m_active.dec()
        self._audit.record(
            principal, "update", "workflow_instance", instance_id, "cancelled"
        )
        return updated

    def fail(
        self, principal: Principal, instance_id: int, reason: str
    ) -> WorkflowInstance:
        """Mark an instance failed (used by application connectors)."""
        instance = self.get(instance_id)
        if instance.status != "active":
            raise StateError(
                f"workflow instance {instance_id} is {instance.status}"
            )
        context = dict(instance.context)
        context["failure_reason"] = reason
        updated = self._instances.update(
            instance_id,
            status="failed",
            context=context,
            updated_at=self._clock.now(),
        )
        self._m_active.dec()
        self.obs.log.log(
            "workflow.failed", instance=instance_id, reason=reason
        )
        self._audit.record(
            principal, "update", "workflow_instance", instance_id,
            f"failed: {reason}",
        )
        return updated

    def retry(
        self,
        principal: Principal,
        instance_id: int,
        *,
        from_step: str | None = None,
    ) -> WorkflowInstance:
        """Reactivate a failed instance (workflow administration).

        The instance resumes in *from_step* (default: where it failed);
        auto-actions chain as usual.  Only failed instances can retry —
        cancelled ones stay cancelled.
        """
        instance = self.get(instance_id)
        if instance.status != "failed":
            raise StateError(
                f"workflow instance {instance_id} is {instance.status}; "
                "only failed instances can be retried"
            )
        definition = self.definition(instance.definition)
        target = from_step or instance.current_step
        definition.step(target)  # validates the step exists
        context = dict(instance.context)
        context.pop("failure_reason", None)
        context.pop("error_chain", None)
        now = self._clock.now()
        updated = self._instances.update(
            instance_id,
            status="active",
            current_step=target,
            context=context,
            updated_at=now,
        )
        self._m_active.inc()
        self._history.create(
            instance_id=instance_id,
            at=now,
            actor=principal.login,
            action="__retry__",
            from_step=instance.current_step,
            to_step=target,
        )
        self._audit.record(
            principal, "update", "workflow_instance", instance_id,
            f"retried in step {target}",
        )
        return self._run_auto_actions(principal, updated)

    # -- history ------------------------------------------------------------------------

    def history(self, instance_id: int) -> list[WorkflowEvent]:
        return (
            self._history.query()
            .where("instance_id", "=", instance_id)
            .order_by("id")
            .all()
        )
