"""Graphical representation of workflows.

The portal shows each running workflow with its current step highlighted
("the next step to be taken by the user is highlighted in the graphical
representation").  Two renderers:

* :func:`render_ascii` — a terminal/HTML-pre drawing of the step chain;
* :func:`render_dot` — Graphviz DOT for richer graphs.
"""

from __future__ import annotations

from repro.workflow.definitions import END, WorkflowDefinition


def _ordered_steps(definition: WorkflowDefinition) -> list[str]:
    """Steps in a stable breadth-first order from the initial step."""
    order: list[str] = []
    seen: set[str] = set()
    frontier = [definition.initial_step]
    while frontier:
        current = frontier.pop(0)
        if current in seen or current == END:
            continue
        seen.add(current)
        order.append(current)
        for action in definition.step(current).actions:
            frontier.append(action.target)
    return order


def render_ascii(
    definition: WorkflowDefinition, current_step: str | None = None
) -> str:
    """A textual drawing; the current step is marked with ``▶ [...]``.

    Example (data import workflow waiting on extract assignment)::

        [select provider] --fetch--> ▶[assign extracts] --save--> [done]
    """
    lines = [f"workflow: {definition.name}"]
    for step_name in _ordered_steps(definition):
        step = definition.step(step_name)
        marker = "▶" if step_name == current_step else " "
        label = step.label or step.name
        lines.append(f" {marker}[{label}]")
        for action in step.actions:
            target = "END" if action.target == END else action.target
            guard = " (guarded)" if action.condition is not None else ""
            auto = " (auto)" if action.auto else ""
            lines.append(f"     --{action.name}{guard}{auto}--> {target}")
    return "\n".join(lines)


def render_dot(
    definition: WorkflowDefinition, current_step: str | None = None
) -> str:
    """Graphviz DOT source with the current step filled."""
    lines = [
        f'digraph "{definition.name}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica"];',
        '  __end__ [shape=doublecircle, label="end"];',
    ]
    for step_name in _ordered_steps(definition):
        step = definition.step(step_name)
        attrs = [f'label="{step.label or step.name}"']
        if step_name == current_step:
            attrs.append('style=filled fillcolor="#ffe08a"')
        lines.append(f'  "{step_name}" [{", ".join(attrs)}];')
    for from_step, action, to_step in definition.edges():
        target = "__end__" if to_step == END else to_step
        lines.append(f'  "{from_step}" -> "{target}" [label="{action}"];')
    lines.append("}")
    return "\n".join(lines)
