"""Synthetic deployment workloads.

The paper's only quantitative artifact is the January-2010 FGCZ
deployment table::

    Users 1555       Samples 3151
    Projects 750     Extracts 3642
    Institutes 224   Data Resources 40005
    Organizations 59 Workunits 23979

:class:`DeploymentGenerator` synthesizes a deployment with exactly these
counts (scalable down for tests) and realistic attribute distributions,
giving benchmarks an FGCZ-scale corpus without FGCZ's private data.
"""

from repro.workload.generator import (
    DeploymentGenerator,
    FGCZ_JANUARY_2010,
    DeploymentSpec,
)
from repro.workload.scenario import ActivityReport, BusinessSimulator

__all__ = [
    "DeploymentGenerator",
    "FGCZ_JANUARY_2010",
    "DeploymentSpec",
    "ActivityReport",
    "BusinessSimulator",
]
