"""Deterministic FGCZ-scale deployment synthesis.

The generator writes through the storage layer in large transactions
(it synthesizes *state*, not user operations — replaying three years of
daily lab work through the service layer would only exercise the same
code paths 70,000 times).  Object relationships follow skewed
distributions: a few large projects own many samples and workunits, most
are small, mirroring how shared research infrastructure is actually
used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.facade import BFabric

_SPECIES = (
    "Arabidopsis Thaliana",
    "Homo sapiens",
    "Mus musculus",
    "Saccharomyces cerevisiae",
    "Drosophila melanogaster",
    "Escherichia coli",
    "Rattus norvegicus",
    "Danio rerio",
)

_TREATMENTS = ("light", "dark", "heat", "cold", "drought", "control", "salt")
_TISSUES = ("leaf", "root", "liver", "brain", "muscle", "whole", "culture")
_PROCEDURES = (
    "TRIzol RNA extraction",
    "phenol chloroform",
    "column purification",
    "protein digest",
    "FACS sorting",
)
_FILE_KINDS = (("cel", 8192), ("raw", 16384), ("wiff", 12288), ("txt", 2048))
_WU_PREFIXES = ("import", "analysis", "search", "measurement", "report")


@dataclass(frozen=True)
class DeploymentSpec:
    """Target object counts of a synthetic deployment."""

    users: int
    projects: int
    institutes: int
    organizations: int
    samples: int
    extracts: int
    data_resources: int
    workunits: int

    def scaled(self, factor: float) -> "DeploymentSpec":
        """A proportionally smaller deployment (at least 1 per kind)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("scale factor must be in (0, 1]")
        scale = lambda n: max(1, round(n * factor))
        return DeploymentSpec(
            users=scale(self.users),
            projects=scale(self.projects),
            institutes=scale(self.institutes),
            organizations=scale(self.organizations),
            samples=scale(self.samples),
            extracts=scale(self.extracts),
            data_resources=scale(self.data_resources),
            workunits=scale(self.workunits),
        )

    def as_paper_table(self) -> dict[str, int]:
        return {
            "Users": self.users,
            "Projects": self.projects,
            "Institutes": self.institutes,
            "Organizations": self.organizations,
            "Samples": self.samples,
            "Extracts": self.extracts,
            "Data Resources": self.data_resources,
            "Workunits": self.workunits,
        }


#: The paper's Final-Remark table, exactly.
FGCZ_JANUARY_2010 = DeploymentSpec(
    users=1555,
    projects=750,
    institutes=224,
    organizations=59,
    samples=3151,
    extracts=3642,
    data_resources=40005,
    workunits=23979,
)


class DeploymentGenerator:
    """Populates a :class:`BFabric` instance to a target spec."""

    def __init__(self, system: BFabric, *, seed: int = 2010):
        self._system = system
        self._rng = random.Random(seed)

    def generate(self, spec: DeploymentSpec = FGCZ_JANUARY_2010) -> dict[str, int]:
        """Build the deployment; returns the achieved counts.

        Idempotence is not attempted — call on a fresh system.
        """
        system = self._system
        rng = self._rng
        db = system.db
        now = system.clock.now()

        with db.transaction() as txn:
            org_ids = [
                txn.insert(
                    "organization",
                    {"name": f"Organization {i:03d}", "created_at": now},
                )["id"]
                for i in range(spec.organizations)
            ]
            institute_ids = []
            for i in range(spec.institutes):
                institute_ids.append(
                    txn.insert(
                        "institute",
                        {
                            "name": f"Institute {i:03d}",
                            "organization_id": rng.choice(org_ids),
                            "created_at": now,
                        },
                    )["id"]
                )
            user_ids = []
            for i in range(spec.users):
                role = "scientist"
                if i < 3:
                    role = "admin"
                elif i < 25:
                    role = "employee"
                user_ids.append(
                    txn.insert(
                        "user",
                        {
                            "login": f"user{i:04d}",
                            "full_name": f"User {i:04d}",
                            "email": f"user{i:04d}@example.org",
                            "institute_id": rng.choice(institute_ids),
                            "role": role,
                            "password_hash": "",
                            "active": True,
                            "created_at": now,
                        },
                    )["id"]
                )

        with db.transaction() as txn:
            project_ids = []
            project_owner: dict[int, int] = {}
            for i in range(spec.projects):
                owner = rng.choice(user_ids)
                species = rng.choice(_SPECIES)
                row = txn.insert(
                    "project",
                    {
                        "name": f"{species} study {i:03d}",
                        "description": f"Investigating {rng.choice(_TREATMENTS)} "
                        f"response in {species}",
                        "created_by": owner,
                        "created_at": now,
                    },
                )
                project_ids.append(row["id"])
                project_owner[row["id"]] = owner
                txn.insert(
                    "project_membership",
                    {"user_id": owner, "project_id": row["id"], "role": "leader"},
                )

        # Skewed assignment: earlier projects get more samples (zipf-ish).
        weights = [1.0 / (rank + 1) for rank in range(len(project_ids))]

        with db.transaction() as txn:
            sample_ids = []
            sample_project: dict[int, int] = {}
            for i in range(spec.samples):
                project_id = rng.choices(project_ids, weights=weights)[0]
                species = rng.choice(_SPECIES)
                row = txn.insert(
                    "sample",
                    {
                        "name": f"sample {i:04d} {rng.choice(_TISSUES)}",
                        "project_id": project_id,
                        "species": species,
                        "description": "",
                        "attributes": {
                            "tissue": rng.choice(_TISSUES),
                            "treatment": rng.choice(_TREATMENTS),
                        },
                        "created_by": project_owner[project_id],
                        "created_at": now,
                    },
                )
                sample_ids.append(row["id"])
                sample_project[row["id"]] = project_id

            extract_ids = []
            extract_project: dict[int, int] = {}
            for i in range(spec.extracts):
                sample_id = (
                    sample_ids[i] if i < len(sample_ids) else rng.choice(sample_ids)
                )
                row = txn.insert(
                    "extract",
                    {
                        "name": f"extract {i:04d}",
                        "sample_id": sample_id,
                        "procedure": rng.choice(_PROCEDURES),
                        "description": "",
                        "attributes": {},
                        "created_by": project_owner[sample_project[sample_id]],
                        "created_at": now,
                    },
                )
                extract_ids.append(row["id"])
                extract_project[row["id"]] = sample_project[sample_id]

        with db.transaction() as txn:
            workunit_ids = []
            workunit_project: dict[int, int] = {}
            for i in range(spec.workunits):
                project_id = rng.choices(project_ids, weights=weights)[0]
                row = txn.insert(
                    "workunit",
                    {
                        "name": f"{rng.choice(_WU_PREFIXES)} workunit {i:05d}",
                        "project_id": project_id,
                        "application_id": None,
                        "description": "",
                        "status": "available",
                        "parameters": {},
                        "created_by": project_owner[project_id],
                        "created_at": now,
                    },
                )
                workunit_ids.append(row["id"])
                workunit_project[row["id"]] = project_id

        extracts_by_project: dict[int, list[int]] = {}
        for extract_id, project_id in extract_project.items():
            extracts_by_project.setdefault(project_id, []).append(extract_id)

        with db.transaction() as txn:
            for i in range(spec.data_resources):
                workunit_id = (
                    workunit_ids[i]
                    if i < len(workunit_ids)
                    else rng.choice(workunit_ids)
                )
                project_id = workunit_project[workunit_id]
                kind, size = rng.choice(_FILE_KINDS)
                candidates = extracts_by_project.get(project_id)
                extract_id = rng.choice(candidates) if candidates else None
                txn.insert(
                    "data_resource",
                    {
                        "name": f"resource_{i:05d}.{kind}",
                        "workunit_id": workunit_id,
                        "extract_id": extract_id,
                        "uri": f"store://generated/resource_{i:05d}.{kind}",
                        "storage": "internal" if i % 3 else "linked",
                        "size_bytes": size,
                        "checksum": "",
                        "is_input": i % 5 == 0,
                        "created_at": now,
                    },
                )

        return system.deployment_statistics()
