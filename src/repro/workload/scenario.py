"""Daily-business simulation through the service layer.

Where :mod:`repro.workload.generator` synthesizes *state* for scale
benchmarks, this module simulates *operations*: scientists registering
samples, extending vocabularies (with typos), importing instrument
runs, running experiments; experts reviewing and merging — the "running
in daily business at FGCZ since beginning of 2007" claim as executable
workload.  Everything goes through the public services, so events,
tasks, workflows, audit and search indexing all fire exactly as in
production.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dataimport import AffymetrixGeneChipProvider
from repro.errors import BFabricError
from repro.facade import BFabric
from repro.security.principals import Principal

_SPECIES = ("Arabidopsis Thaliana", "Homo sapiens", "Mus musculus")
_STATES = ("healthy", "infected", "heat shock", "drought stress", "hopeless")

TWO_GROUP_INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
        {"name": "alpha", "type": "float", "default": 0.05},
    ],
}


@dataclass
class ActivityReport:
    """What a simulation run did."""

    days: int = 0
    samples: int = 0
    extracts: int = 0
    annotations_created: int = 0
    annotations_released: int = 0
    merges: int = 0
    imports: int = 0
    experiment_runs: int = 0
    failures: int = 0
    per_day: list[dict] = field(default_factory=list)


def _typo(rng: random.Random, word: str) -> str:
    if len(word) < 4:
        return word + word[-1]
    position = rng.randrange(1, len(word) - 1)
    return word[:position] + word[position + 1:]


class BusinessSimulator:
    """Drives one B-Fabric system through simulated working days."""

    def __init__(self, system: BFabric, *, seed: int = 7, scientists: int = 3):
        self._system = system
        self._rng = random.Random(seed)
        admin = system.bootstrap()
        self._admin = admin
        self._expert = self._ensure_user(
            "sim_expert", "Simulation Expert", role="employee"
        )
        self._scientists: list[Principal] = [
            self._ensure_user(f"sim_sci{i}", f"Simulated Scientist {i}")
            for i in range(scientists)
        ]
        self._attribute = self._ensure_attribute()
        self._provider = self._ensure_provider()
        self._application = self._ensure_application()
        self._projects: dict[int, Principal] = {}
        self._day = 0

    # -- setup helpers ----------------------------------------------------------

    def _ensure_user(self, login, full_name, role="scientist"):
        user = self._system.directory.user_by_login(login)
        if user is not None:
            return self._system.directory.principal_for(user)
        return self._system.add_user(
            self._admin, login=login, full_name=full_name, role=role
        )

    def _ensure_attribute(self):
        try:
            return self._system.annotations.attribute_by_name("Disease State")
        except BFabricError:
            return self._system.annotations.define_attribute(
                self._expert, "Disease State"
            )

    def _ensure_provider(self):
        name = "sim GeneChip"
        if name not in self._system.imports.provider_names():
            self._system.imports.register_provider(
                AffymetrixGeneChipProvider(name, runs=400)
            )
        return name

    def _ensure_application(self):
        try:
            return self._system.applications.by_name("two group analysis")
        except BFabricError:
            return self._system.applications.register_application(
                self._expert,
                name="two group analysis",
                connector="rserve",
                executable="two_group_analysis",
                interface=TWO_GROUP_INTERFACE,
            )

    # -- one day ------------------------------------------------------------------

    def simulate_days(self, days: int) -> ActivityReport:
        """Run *days* of activity; returns the aggregate report."""
        report = ActivityReport()
        for _ in range(days):
            daily = self._one_day()
            report.days += 1
            report.samples += daily["samples"]
            report.extracts += daily["extracts"]
            report.annotations_created += daily["annotations_created"]
            report.annotations_released += daily["annotations_released"]
            report.merges += daily["merges"]
            report.imports += daily["imports"]
            report.experiment_runs += daily["experiment_runs"]
            report.failures += daily["failures"]
            report.per_day.append(daily)
        return report

    def _one_day(self) -> dict:
        rng = self._rng
        self._day += 1
        daily = dict(
            samples=0, extracts=0, annotations_created=0,
            annotations_released=0, merges=0, imports=0,
            experiment_runs=0, failures=0,
        )

        # Sometimes a new project starts.
        if not self._projects or rng.random() < 0.25:
            owner = rng.choice(self._scientists)
            project = self._system.projects.create(
                owner, f"simulated project day {self._day}"
            )
            self._projects[project.id] = owner

        project_id = rng.choice(list(self._projects))
        owner = self._projects[project_id]

        # Morning: registrations, occasionally with a new (typoed) value.
        for sample_no in range(rng.randint(1, 3)):
            value = rng.choice(_STATES)
            if rng.random() < 0.3:
                value = _typo(rng, value)
            annotation_ids = []
            try:
                annotation, _ = self._system.annotations.create_annotation(
                    owner, self._attribute.id, value
                )
                annotation_ids = [annotation.id]
                daily["annotations_created"] += 1
            except BFabricError:
                existing = self._system.annotations.vocabulary(
                    self._attribute.id, include_pending=True
                )
                match = next((a for a in existing if a.value == value), None)
                if match:
                    annotation_ids = [match.id]
            sample = self._system.samples.register_sample(
                owner, project_id,
                f"day {self._day} sample {sample_no}",
                species=rng.choice(_SPECIES),
                annotation_ids=annotation_ids,
            )
            daily["samples"] += 1
            run = f"scan{rng.randint(1, 400):02d}"
            for letter in ("a", "b"):
                try:
                    self._system.samples.register_extract(
                        owner, sample.id, f"{run} {letter}"
                    )
                    daily["extracts"] += 1
                except BFabricError:
                    pass

        # Midday: an import with automatic assignment.
        if rng.random() < 0.7:
            run = rng.randint(1, 400)
            files = [f"scan{run:02d}_a.cel", f"scan{run:02d}_b.cel"]
            try:
                workunit, resources, _ = self._system.imports.import_files(
                    owner, project_id, self._provider, files,
                    workunit_name=f"day {self._day} import {run}",
                    mode=rng.choice(("copy", "link")),
                )
                self._system.imports.apply_assignments(owner, workunit.id)
                daily["imports"] += 1

                # Afternoon: run the analysis over the fresh import.
                if rng.random() < 0.7:
                    experiment = self._system.experiments.define(
                        owner, project_id,
                        f"day {self._day} analysis {run}",
                        application_id=self._application.id,
                        resource_ids=[r.id for r in resources],
                    )
                    marker = "_a" if rng.random() < 0.9 else "_zz"  # some fail
                    result = self._system.experiments.run(
                        owner, experiment.id,
                        workunit_name=f"day {self._day} results {run}",
                        parameters={"reference_group": marker},
                    )
                    daily["experiment_runs"] += 1
                    if result.status == "failed":
                        daily["failures"] += 1
            except BFabricError:
                daily["failures"] += 1

        # Evening: the expert works the queue.
        for task in list(self._system.tasks.inbox(self._expert))[:5]:
            if task.kind != "release_annotation":
                continue
            recommendations = self._system.annotations.merge_recommendations(
                self._attribute.id
            )
            handled = False
            for rec in recommendations:
                if rec.involves(task.entity_id):
                    try:
                        self._system.annotations.merge(
                            self._expert, rec.keep_id, rec.merge_id
                        )
                        daily["merges"] += 1
                        handled = True
                        break
                    except BFabricError:
                        pass
            if not handled:
                try:
                    self._system.annotations.release(
                        self._expert, task.entity_id
                    )
                    daily["annotations_released"] += 1
                except BFabricError:
                    pass

        if hasattr(self._system.clock, "advance"):
            self._system.clock.advance(days=1)
        return daily
