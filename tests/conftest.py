"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime as dt
import os

import pytest

from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util.clock import ManualClock

#: ``REPRO_TEST_SHARDS=N`` reruns the whole suite with every
#: ``BFabric`` facade backed by a ``ShardedDatabase`` coordinator with N
#: shards instead of a bare ``Database`` — the drop-in compatibility
#: check (CI runs the facade/ORM/portal suites with N=1).  Tests that
#: construct ``Database`` directly are storage-internal and unaffected.
_SHARDS = os.environ.get("REPRO_TEST_SHARDS")
if _SHARDS:
    from repro.facade import BFabric as _BFabric

    _original_init = _BFabric.__init__

    def _sharded_init(self, path=None, **kwargs):
        kwargs.setdefault("shards", int(_SHARDS))
        _original_init(self, path, **kwargs)

    _BFabric.__init__ = _sharded_init


@pytest.fixture
def db() -> Database:
    """A fresh in-memory database."""
    return Database()


@pytest.fixture
def clock() -> ManualClock:
    """A deterministic clock starting at 2010-01-15 09:00."""
    return ManualClock(start=dt.datetime(2010, 1, 15, 9, 0, 0))


@pytest.fixture
def people_db() -> Database:
    """A tiny two-table database used across storage tests."""
    database = Database()
    database.create_table(
        TableSchema(
            name="org",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT, nullable=False, unique=True),
            ],
            indexes=["name"],
        )
    )
    database.create_table(
        TableSchema(
            name="person",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("age", ColumnType.INT),
                Column("org_id", ColumnType.INT, foreign_key="org.id"),
            ],
            indexes=["name", "org_id", "age", ("org_id", "age")],
        )
    )
    return database
