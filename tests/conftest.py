"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util.clock import ManualClock


@pytest.fixture
def db() -> Database:
    """A fresh in-memory database."""
    return Database()


@pytest.fixture
def clock() -> ManualClock:
    """A deterministic clock starting at 2010-01-15 09:00."""
    return ManualClock(start=dt.datetime(2010, 1, 15, 9, 0, 0))


@pytest.fixture
def people_db() -> Database:
    """A tiny two-table database used across storage tests."""
    database = Database()
    database.create_table(
        TableSchema(
            name="org",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT, nullable=False, unique=True),
            ],
            indexes=["name"],
        )
    )
    database.create_table(
        TableSchema(
            name="person",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("age", ColumnType.INT),
                Column("org_id", ColumnType.INT, foreign_key="org.id"),
            ],
            indexes=["name", "org_id", "age", ("org_id", "age")],
        )
    )
    return database
