"""Annotation management: vocabularies, review, similarity, merging.

Covers the paper's Figures 2–7 behaviours end to end.
"""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotations.similarity import MergeRecommendation, SimilarityDetector
from repro.errors import (
    AccessDenied,
    EntityNotFound,
    StateError,
    ValidationError,
)
from repro.facade import BFabric
from repro.util.clock import ManualClock


@pytest.fixture
def system():
    return BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def actors(system):
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Scientist")
    expert = system.add_user(
        admin, login="exp", full_name="Expert", role="employee"
    )
    return admin, scientist, expert


@pytest.fixture
def disease_state(system, actors):
    _, _, expert = actors
    return system.annotations.define_attribute(expert, "Disease State")


class TestAttributes:
    def test_scientist_cannot_define(self, system, actors):
        _, scientist, _ = actors
        with pytest.raises(AccessDenied):
            system.annotations.define_attribute(scientist, "Tissue")

    def test_define_and_lookup(self, system, actors, disease_state):
        fetched = system.annotations.attribute_by_name("Disease State")
        assert fetched.id == disease_state.id

    def test_attributes_for_scopes_by_type(self, system, actors):
        _, _, expert = actors
        system.annotations.define_attribute(expert, "Tissue", applies_to="sample")
        system.annotations.define_attribute(
            expert, "Digest", applies_to="extract"
        )
        assert [a.name for a in system.annotations.attributes_for("sample")] == [
            "Tissue"
        ]

    def test_empty_name_rejected(self, system, actors):
        _, _, expert = actors
        with pytest.raises(ValidationError):
            system.annotations.define_attribute(expert, "   ")

    def test_unknown_attribute_raises(self, system, actors):
        with pytest.raises(EntityNotFound):
            system.annotations.attribute_by_name("Nope")


class TestCreateAnnotation:
    def test_created_pending(self, system, actors, disease_state):
        _, scientist, _ = actors
        annotation, similar = system.annotations.create_annotation(
            scientist, disease_state.id, "Hopeless"
        )
        assert annotation.status == "pending"
        assert similar == []

    def test_duplicate_value_rejected(self, system, actors, disease_state):
        _, scientist, _ = actors
        system.annotations.create_annotation(scientist, disease_state.id, "X")
        with pytest.raises(ValidationError):
            system.annotations.create_annotation(scientist, disease_state.id, "X")

    def test_whitespace_normalized(self, system, actors, disease_state):
        _, scientist, _ = actors
        annotation, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "  Heat   Shock "
        )
        assert annotation.value == "Heat Shock"

    def test_similar_detected_at_creation(self, system, actors, disease_state):
        _, scientist, _ = actors
        system.annotations.create_annotation(scientist, disease_state.id, "Hopeless")
        _, similar = system.annotations.create_annotation(
            scientist, disease_state.id, "Hopeles"
        )
        assert [a.value for a, _ in similar] == ["Hopeless"]
        assert similar[0][1] == pytest.approx(0.875)

    def test_unknown_attribute(self, system, actors):
        _, scientist, _ = actors
        with pytest.raises(EntityNotFound):
            system.annotations.create_annotation(scientist, 404, "x")

    def test_not_in_dropdown_until_released(self, system, actors, disease_state):
        _, scientist, _ = actors
        system.annotations.create_annotation(scientist, disease_state.id, "New")
        assert system.annotations.vocabulary(disease_state.id) == []
        assert len(
            system.annotations.vocabulary(disease_state.id, include_pending=True)
        ) == 1


class TestReviewLifecycle:
    def test_release(self, system, actors, disease_state):
        _, scientist, expert = actors
        annotation, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "Hopeless"
        )
        released = system.annotations.release(expert, annotation.id)
        assert released.status == "released"
        assert released.released_by == expert.user_id
        assert [a.value for a in system.annotations.vocabulary(disease_state.id)] == [
            "Hopeless"
        ]

    def test_scientist_cannot_release(self, system, actors, disease_state):
        _, scientist, _ = actors
        annotation, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "X"
        )
        with pytest.raises(AccessDenied):
            system.annotations.release(scientist, annotation.id)

    def test_double_release_fails(self, system, actors, disease_state):
        _, scientist, expert = actors
        annotation, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "X"
        )
        system.annotations.release(expert, annotation.id)
        with pytest.raises(StateError):
            system.annotations.release(expert, annotation.id)

    def test_reject_removes_links(self, system, actors, disease_state):
        admin, scientist, expert = actors
        project = system.projects.create(scientist, "P")
        sample = system.samples.register_sample(scientist, project.id, "s1")
        annotation, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "Wrong"
        )
        system.annotations.annotate(scientist, annotation.id, "sample", sample.id)
        system.annotations.reject(expert, annotation.id)
        assert system.annotations.annotations_for("sample", sample.id) == []

    def test_pending_review_queue_ordered(self, system, actors, disease_state):
        _, scientist, _ = actors
        for value in ("b", "a", "c"):
            system.annotations.create_annotation(scientist, disease_state.id, value)
        queue = system.annotations.pending_review()
        assert [a.value for a in queue] == ["b", "a", "c"]  # oldest first


class TestSimilarityDetector:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            SimilarityDetector(0.0)
        with pytest.raises(ValueError):
            SimilarityDetector(1.5)

    def test_recommendations_prefer_released_survivor(self):
        detector = SimilarityDetector()
        rows = [
            {"id": 1, "value": "Hopeles", "status": "pending"},
            {"id": 2, "value": "Hopeless", "status": "released"},
        ]
        recs = detector.recommendations(rows)
        assert len(recs) == 1
        assert recs[0].keep_id == 2
        assert recs[0].merge_id == 1

    def test_recommendations_prefer_older_when_same_status(self):
        detector = SimilarityDetector()
        rows = [
            {"id": 5, "value": "Hopeless", "status": "pending"},
            {"id": 9, "value": "Hopeles", "status": "pending"},
        ]
        recs = detector.recommendations(rows)
        assert recs[0].keep_id == 5

    def test_merged_and_rejected_excluded(self):
        detector = SimilarityDetector()
        rows = [
            {"id": 1, "value": "Hopeless", "status": "released"},
            {"id": 2, "value": "Hopeles", "status": "merged"},
            {"id": 3, "value": "Hopelesss", "status": "rejected"},
        ]
        assert detector.recommendations(rows) == []

    def test_dissimilar_not_recommended(self):
        detector = SimilarityDetector()
        rows = [
            {"id": 1, "value": "Hopeless", "status": "released"},
            {"id": 2, "value": "Diabetes", "status": "released"},
        ]
        assert detector.recommendations(rows) == []

    def test_recommendation_involves(self):
        rec = MergeRecommendation(1, 2, "a", "b", 0.9)
        assert rec.involves(1) and rec.involves(2) and not rec.involves(3)

    @given(
        st.lists(
            st.sampled_from(
                ["hopeless", "hopeles", "hopless", "diabetes", "healthy"]
            ),
            min_size=0,
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_recommendations_are_pairwise_and_bounded(self, values):
        detector = SimilarityDetector()
        rows = [
            {"id": i + 1, "value": v, "status": "pending"}
            for i, v in enumerate(values)
        ]
        recs = detector.recommendations(rows)
        n = len(rows)
        assert len(recs) <= n * (n - 1) // 2
        for rec in recs:
            assert rec.keep_id != rec.merge_id
            assert rec.score >= detector.threshold


class TestMerge:
    def make_pair(self, system, scientist, expert, attribute):
        keep, _ = system.annotations.create_annotation(
            scientist, attribute.id, "Hopeless"
        )
        keep = system.annotations.release(expert, keep.id)
        merge, _ = system.annotations.create_annotation(
            scientist, attribute.id, "Hopeles"
        )
        return keep, merge

    def test_merge_reassociates_links(self, system, actors, disease_state):
        admin, scientist, expert = actors
        project = system.projects.create(scientist, "P")
        s1 = system.samples.register_sample(scientist, project.id, "s1")
        s2 = system.samples.register_sample(scientist, project.id, "s2")
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        system.annotations.annotate(scientist, merge.id, "sample", s1.id)
        system.annotations.annotate(scientist, merge.id, "sample", s2.id)

        system.annotations.merge(expert, keep.id, merge.id)

        for sample in (s1, s2):
            values = [
                a.value
                for a in system.annotations.annotations_for("sample", sample.id)
            ]
            assert values == ["Hopeless"]

    def test_merge_deduplicates_links(self, system, actors, disease_state):
        admin, scientist, expert = actors
        project = system.projects.create(scientist, "P")
        sample = system.samples.register_sample(scientist, project.id, "s1")
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        system.annotations.annotate(scientist, keep.id, "sample", sample.id)
        system.annotations.annotate(scientist, merge.id, "sample", sample.id)
        system.annotations.merge(expert, keep.id, merge.id)
        assert (
            len(system.annotations.annotations_for("sample", sample.id)) == 1
        )

    def test_merged_status_and_redirect(self, system, actors, disease_state):
        _, scientist, expert = actors
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        system.annotations.merge(expert, keep.id, merge.id)
        resolved = system.annotations.resolve(merge.id)
        assert resolved.id == keep.id

    def test_pending_survivor_released_by_merge(self, system, actors, disease_state):
        _, scientist, expert = actors
        keep, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "Hopeless"
        )
        merge, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "Hopeles"
        )
        result = system.annotations.merge(expert, keep.id, merge.id)
        assert result.status == "released"

    def test_merge_self_rejected(self, system, actors, disease_state):
        _, scientist, expert = actors
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        with pytest.raises(ValidationError):
            system.annotations.merge(expert, keep.id, keep.id)

    def test_merge_across_attributes_rejected(self, system, actors, disease_state):
        _, scientist, expert = actors
        other = system.annotations.define_attribute(expert, "Tissue")
        a1, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "leafy"
        )
        a2, _ = system.annotations.create_annotation(scientist, other.id, "leaf")
        with pytest.raises(ValidationError):
            system.annotations.merge(expert, a1.id, a2.id)

    def test_double_merge_rejected(self, system, actors, disease_state):
        _, scientist, expert = actors
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        system.annotations.merge(expert, keep.id, merge.id)
        with pytest.raises(StateError):
            system.annotations.merge(expert, keep.id, merge.id)

    def test_scientist_cannot_merge(self, system, actors, disease_state):
        _, scientist, expert = actors
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        with pytest.raises(AccessDenied):
            system.annotations.merge(scientist, keep.id, merge.id)

    def test_chosen_extra_applied(self, system, actors, disease_state):
        _, scientist, expert = actors
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        result = system.annotations.merge(
            expert, keep.id, merge.id, chosen_extra={"severity": "terminal"}
        )
        assert result.extra == {"severity": "terminal"}

    def test_annotate_with_merged_value_fails(self, system, actors, disease_state):
        admin, scientist, expert = actors
        project = system.projects.create(scientist, "P")
        sample = system.samples.register_sample(scientist, project.id, "s1")
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        system.annotations.merge(expert, keep.id, merge.id)
        with pytest.raises(StateError):
            system.annotations.annotate(scientist, merge.id, "sample", sample.id)

    def test_merge_recommendations_end_to_end(self, system, actors, disease_state):
        _, scientist, expert = actors
        keep, merge = self.make_pair(system, scientist, expert, disease_state)
        recs = system.annotations.merge_recommendations(disease_state.id)
        assert len(recs) == 1
        assert (recs[0].keep_id, recs[0].merge_id) == (keep.id, merge.id)
        system.annotations.merge(expert, recs[0].keep_id, recs[0].merge_id)
        assert system.annotations.merge_recommendations(disease_state.id) == []


class TestAnnotateLinks:
    def test_annotate_idempotent(self, system, actors, disease_state):
        admin, scientist, expert = actors
        project = system.projects.create(scientist, "P")
        sample = system.samples.register_sample(scientist, project.id, "s1")
        annotation, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "X"
        )
        link1 = system.annotations.annotate(
            scientist, annotation.id, "sample", sample.id
        )
        link2 = system.annotations.annotate(
            scientist, annotation.id, "sample", sample.id
        )
        assert link1.id == link2.id

    def test_entities_for(self, system, actors, disease_state):
        admin, scientist, expert = actors
        project = system.projects.create(scientist, "P")
        sample = system.samples.register_sample(scientist, project.id, "s1")
        annotation, _ = system.annotations.create_annotation(
            scientist, disease_state.id, "X"
        )
        system.annotations.annotate(scientist, annotation.id, "sample", sample.id)
        assert system.annotations.entities_for(annotation.id) == [
            ("sample", sample.id)
        ]


class TestStandardVocabularies:
    def test_seed_creates_released_values(self, system, actors):
        from repro.annotations.seed import seed_standard_vocabularies

        _, _, expert = actors
        report = seed_standard_vocabularies(system.annotations, expert)
        assert report["Tissue"] == 7
        tissue = system.annotations.attribute_by_name("Tissue")
        values = [a.value for a in system.annotations.vocabulary(tissue.id)]
        assert "leaf" in values
        # Extraction Method is scoped to extracts, not samples.
        extraction = system.annotations.attribute_by_name(
            "Extraction Method", "extract"
        )
        assert system.annotations.vocabulary(extraction.id)

    def test_seed_is_idempotent(self, system, actors):
        from repro.annotations.seed import seed_standard_vocabularies

        _, _, expert = actors
        seed_standard_vocabularies(system.annotations, expert)
        second = seed_standard_vocabularies(system.annotations, expert)
        assert all(count == 0 for count in second.values())

    def test_seed_leaves_no_open_tasks(self, system, actors):
        from repro.annotations.seed import seed_standard_vocabularies

        _, _, expert = actors
        seed_standard_vocabularies(system.annotations, expert)
        assert system.tasks.open_count(expert) == 0
