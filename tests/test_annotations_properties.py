"""Property-based tests for annotation-merge invariants.

Whatever sequence of creates, annotates, releases and merges happens,
the system must preserve:

* every annotated object resolves to live (non-merged) values only;
* merge redirects form a forest (resolving always terminates at a live
  annotation);
* no object carries duplicate links to the same annotation;
* the total number of linked objects never changes due to a merge
  (links move or collapse, never vanish into dangling state).
"""

import datetime as dt

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.errors import BFabricError
from repro.facade import BFabric
from repro.util.clock import ManualClock

VALUES = ["hopeless", "hopeles", "hoopless", "healthy", "healty", "diabetic"]


class AnnotationMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.system = BFabric(
            clock=ManualClock(dt.datetime(2010, 1, 15)), index_on_events=False
        )
        admin = self.system.bootstrap()
        self.scientist = self.system.add_user(
            admin, login="sci", full_name="Sci"
        )
        self.expert = self.system.add_user(
            admin, login="exp", full_name="Exp", role="employee"
        )
        self.attribute = self.system.annotations.define_attribute(
            self.expert, "State"
        )
        project = self.system.projects.create(self.scientist, "P")
        self.samples = [
            self.system.samples.register_sample(
                self.scientist, project.id, f"s{i}"
            )
            for i in range(4)
        ]
        self.annotation_ids: list[int] = []

    @rule(value=st.sampled_from(VALUES))
    def create(self, value):
        try:
            annotation, _ = self.system.annotations.create_annotation(
                self.scientist, self.attribute.id, value
            )
            self.annotation_ids.append(annotation.id)
        except BFabricError:
            pass  # duplicate value

    @rule(data=st.data())
    def annotate(self, data):
        if not self.annotation_ids:
            return
        annotation_id = data.draw(st.sampled_from(self.annotation_ids))
        sample = data.draw(st.sampled_from(self.samples))
        try:
            self.system.annotations.annotate(
                self.scientist, annotation_id, "sample", sample.id
            )
        except BFabricError:
            pass  # merged/rejected target

    @rule(data=st.data())
    def release(self, data):
        if not self.annotation_ids:
            return
        annotation_id = data.draw(st.sampled_from(self.annotation_ids))
        try:
            self.system.annotations.release(self.expert, annotation_id)
        except BFabricError:
            pass

    @rule(data=st.data())
    def merge(self, data):
        if len(self.annotation_ids) < 2:
            return
        keep = data.draw(st.sampled_from(self.annotation_ids))
        merge = data.draw(st.sampled_from(self.annotation_ids))
        try:
            self.system.annotations.merge(self.expert, keep, merge)
        except BFabricError:
            pass  # self-merge, double merge, etc.

    # -- invariants ----------------------------------------------------------

    @invariant()
    def links_point_at_live_annotations(self):
        for row in self.system.db.rows("annotation_link"):
            annotation = self.system.db.get("annotation", row["annotation_id"])
            assert annotation["status"] in ("pending", "released"), (
                f"link {row['id']} points at {annotation['status']} annotation"
            )

    @invariant()
    def resolve_terminates_at_live(self):
        for annotation_id in self.annotation_ids:
            resolved = self.system.annotations.resolve(annotation_id)
            assert resolved.status in ("pending", "released", "rejected")

    @invariant()
    def no_duplicate_links(self):
        seen = set()
        for row in self.system.db.rows("annotation_link"):
            key = (row["annotation_id"], row["entity_type"], row["entity_id"])
            assert key not in seen
            seen.add(key)

    @invariant()
    def storage_integrity(self):
        assert self.system.db.verify_integrity() == []


AnnotationMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestAnnotationStateMachine = AnnotationMachine.TestCase


@given(
    values=st.lists(st.sampled_from(VALUES), min_size=2, max_size=6, unique=True)
)
@settings(max_examples=20, deadline=None)
def test_merging_everything_into_one_keeps_all_links(values):
    """Chain-merge N values into the first: every link lands there."""
    system = BFabric(
        clock=ManualClock(dt.datetime(2010, 1, 15)), index_on_events=False
    )
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Sci")
    expert = system.add_user(admin, login="exp", full_name="Exp", role="employee")
    attribute = system.annotations.define_attribute(expert, "State")
    project = system.projects.create(scientist, "P")

    annotations = []
    for i, value in enumerate(values):
        annotation, _ = system.annotations.create_annotation(
            scientist, attribute.id, value
        )
        sample = system.samples.register_sample(scientist, project.id, f"s{i}")
        system.annotations.annotate(scientist, annotation.id, "sample", sample.id)
        annotations.append(annotation)

    survivor = annotations[0]
    for other in annotations[1:]:
        system.annotations.merge(expert, survivor.id, other.id)

    assert len(system.annotations.entities_for(survivor.id)) == len(values)
    for annotation in annotations[1:]:
        assert system.annotations.resolve(annotation.id).id == survivor.id
