"""Application integration: connectors, registry, experiments, results."""

import datetime as dt
import io
import zipfile
from pathlib import Path

import pytest

from repro.apps.connectors import LocalPythonConnector, RunOutcome, RunRequest
from repro.apps.registry import check_parameters, validate_interface
from repro.apps.rserve import RserveConnector, two_group_analysis
from repro.dataimport import AffymetrixGeneChipProvider
from repro.errors import (
    ApplicationError,
    ConnectorError,
    EntityNotFound,
    StateError,
    ValidationError,
)
from repro.facade import BFabric
from repro.util.clock import ManualClock

TWO_GROUP_INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
        {"name": "alpha", "type": "float", "default": 0.05},
    ],
    "output": "per-gene statistics CSV + report",
}


@pytest.fixture
def system(tmp_path):
    return BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def scientist(system):
    admin = system.bootstrap()
    return system.add_user(admin, login="sci", full_name="Sci")


@pytest.fixture
def project(system, scientist):
    return system.projects.create(scientist, "Arabidopsis light response")


@pytest.fixture
def imported(system, scientist, project):
    """A completed import: workunit + 4 cel resources with extracts."""
    system.imports.register_provider(AffymetrixGeneChipProvider("gc", runs=2))
    sample = system.samples.register_sample(
        scientist, project.id, "col0", species="Arabidopsis Thaliana"
    )
    system.samples.batch_register_extracts(
        scientist, sample.id, ["scan01 a", "scan01 b", "scan02 a", "scan02 b"]
    )
    workunit, resources, _ = system.imports.import_files(
        scientist, project.id, "gc",
        ["scan01_a.cel", "scan01_b.cel", "scan02_a.cel", "scan02_b.cel"],
        workunit_name="chips",
    )
    system.imports.apply_assignments(scientist, workunit.id)
    return workunit, resources


@pytest.fixture
def two_group_app(system, scientist):
    return system.applications.register_application(
        scientist,
        name="two group analysis",
        connector="rserve",
        executable="two_group_analysis",
        interface=TWO_GROUP_INTERFACE,
    )


class TestInterfaceValidation:
    def test_valid(self):
        assert validate_interface(TWO_GROUP_INTERFACE) == {}

    def test_missing_inputs(self):
        assert "inputs" in validate_interface({"parameters": []})

    def test_unknown_input_kind(self):
        errors = validate_interface({"inputs": ["hologram"]})
        assert "hologram" in errors["inputs"]

    def test_parameter_without_name(self):
        errors = validate_interface(
            {"inputs": ["resource"], "parameters": [{"type": "text"}]}
        )
        assert "parameters[0]" in errors

    def test_duplicate_parameter(self):
        errors = validate_interface(
            {
                "inputs": ["resource"],
                "parameters": [{"name": "a"}, {"name": "a"}],
            }
        )
        assert "parameters[1]" in errors

    def test_choice_requires_choices(self):
        errors = validate_interface(
            {
                "inputs": ["resource"],
                "parameters": [{"name": "mode", "type": "choice"}],
            }
        )
        assert "parameters[0]" in errors


class TestParameterChecking:
    def test_defaults_applied(self):
        effective = check_parameters(
            TWO_GROUP_INTERFACE, {"reference_group": "_a"}
        )
        assert effective == {"reference_group": "_a", "alpha": 0.05}

    def test_required_missing(self):
        with pytest.raises(ValidationError) as excinfo:
            check_parameters(TWO_GROUP_INTERFACE, {})
        assert excinfo.value.field_errors == {"reference_group": "required"}

    def test_unknown_parameter(self):
        with pytest.raises(ValidationError):
            check_parameters(
                TWO_GROUP_INTERFACE, {"reference_group": "x", "bogus": 1}
            )

    def test_type_coercion(self):
        effective = check_parameters(
            TWO_GROUP_INTERFACE, {"reference_group": "x", "alpha": "0.01"}
        )
        assert effective["alpha"] == 0.01

    def test_bad_type(self):
        with pytest.raises(ValidationError):
            check_parameters(
                TWO_GROUP_INTERFACE,
                {"reference_group": "x", "alpha": "not a number"},
            )

    def test_choice_validated(self):
        interface = {
            "inputs": ["resource"],
            "parameters": [
                {"name": "mode", "type": "choice", "choices": ["fast", "slow"]}
            ],
        }
        assert check_parameters(interface, {"mode": "fast"}) == {"mode": "fast"}
        with pytest.raises(ValidationError):
            check_parameters(interface, {"mode": "warp"})


class TestConnectors:
    def make_request(self, tmp_path, executable="script"):
        return RunRequest(
            application="app",
            executable=executable,
            input_files=[],
            parameters={},
            attributes={},
            workdir=tmp_path,
        )

    def test_local_python_runs_script(self, tmp_path):
        connector = LocalPythonConnector()

        def script(request):
            out = request.workdir / "out.txt"
            out.write_text("hello")
            return RunOutcome(files=[out])

        connector.register_script("script", script)
        outcome = connector.run(self.make_request(tmp_path))
        assert outcome.files[0].read_text() == "hello"

    def test_unknown_script(self, tmp_path):
        connector = LocalPythonConnector()
        with pytest.raises(ConnectorError):
            connector.run(self.make_request(tmp_path))

    def test_crash_wrapped(self, tmp_path):
        connector = LocalPythonConnector()
        connector.register_script(
            "script", lambda request: 1 / 0
        )
        with pytest.raises(ConnectorError):
            connector.run(self.make_request(tmp_path))

    def test_phantom_result_file_rejected(self, tmp_path):
        connector = LocalPythonConnector()
        connector.register_script(
            "script",
            lambda request: RunOutcome(files=[request.workdir / "ghost.txt"]),
        )
        with pytest.raises(ConnectorError):
            connector.run(self.make_request(tmp_path))

    def test_duplicate_script(self):
        connector = LocalPythonConnector()
        connector.register_script("s", lambda r: RunOutcome(files=[]))
        with pytest.raises(ConnectorError):
            connector.register_script("s", lambda r: RunOutcome(files=[]))

    def test_rserve_session_log(self, tmp_path):
        connector = RserveConnector()
        connector.register_script(
            "ok", lambda request: RunOutcome(files=[])
        )
        connector.run(self.make_request(tmp_path, "ok"))
        assert any("RS.connect" in line for line in connector.session_log)
        assert any("status: ok" in line for line in connector.session_log)

    def test_rserve_error_logged(self, tmp_path):
        connector = RserveConnector()

        def bad(request):
            raise ApplicationError("input empty")

        connector.register_script("bad", bad)
        with pytest.raises(ApplicationError):
            connector.run(self.make_request(tmp_path, "bad"))
        assert any("status: error" in line for line in connector.session_log)


class TestTwoGroupAnalysis:
    def make_inputs(self, tmp_path, names):
        paths = []
        for name in names:
            path = tmp_path / name
            path.write_bytes(name.encode() * 50)
            paths.append(path)
        return paths

    def run(self, tmp_path, names, parameters):
        workdir = tmp_path / "work"
        workdir.mkdir(exist_ok=True)
        return two_group_analysis(
            RunRequest(
                application="tga",
                executable="two_group_analysis",
                input_files=self.make_inputs(tmp_path, names),
                parameters=parameters,
                attributes={"species": "A. thaliana"},
                workdir=workdir,
            )
        )

    def test_produces_csv_and_report(self, tmp_path):
        outcome = self.run(
            tmp_path,
            ["ref_1.cel", "ref_2.cel", "trt_1.cel", "trt_2.cel"],
            {"reference_group": "ref"},
        )
        names = {Path(f).name for f in outcome.files}
        assert names == {"two_group_result.csv", "report.txt"}
        csv_lines = Path(outcome.files[0]).read_text().splitlines()
        assert csv_lines[0] == "gene,log_fc,t_statistic,p_value"
        assert len(csv_lines) == 1 + outcome.metrics["genes"]
        assert "reference group" in outcome.report

    def test_deterministic(self, tmp_path):
        first = self.run(
            tmp_path, ["r1.cel", "t1.cel", "t2.cel"], {"reference_group": "r"}
        )
        second = self.run(
            tmp_path, ["r1.cel", "t1.cel", "t2.cel"], {"reference_group": "r"}
        )
        assert (
            Path(first.files[0]).read_text() == Path(second.files[0]).read_text()
        )

    def test_missing_reference_group(self, tmp_path):
        with pytest.raises(ApplicationError):
            self.run(tmp_path, ["a.cel"], {})

    def test_empty_group(self, tmp_path):
        with pytest.raises(ApplicationError):
            self.run(
                tmp_path, ["trt_1.cel", "trt_2.cel"], {"reference_group": "ref"}
            )

    def test_no_inputs(self, tmp_path):
        workdir = tmp_path / "w"
        workdir.mkdir()
        with pytest.raises(ApplicationError):
            two_group_analysis(
                RunRequest("a", "t", [], {"reference_group": "r"}, {}, workdir)
            )


class TestApplicationRegistry:
    def test_register_and_lookup(self, system, scientist, two_group_app):
        assert system.applications.by_name("two group analysis").id == two_group_app.id
        assert system.applications.count() == 1

    def test_unknown_connector_rejected(self, system, scientist):
        with pytest.raises(ValidationError):
            system.applications.register_application(
                scientist, name="x", connector="fortran",
                executable="x", interface=TWO_GROUP_INTERFACE,
            )

    def test_invalid_interface_rejected(self, system, scientist):
        with pytest.raises(ValidationError):
            system.applications.register_application(
                scientist, name="x", connector="rserve",
                executable="x", interface={"inputs": []},
            )

    def test_deactivate(self, system, scientist, two_group_app):
        system.applications.deactivate(scientist, two_group_app.id)
        assert system.applications.active_applications() == []

    def test_missing_application(self, system):
        with pytest.raises(EntityNotFound):
            system.applications.get(404)


class TestExperiments:
    def test_define_validates_selection(self, system, scientist, project,
                                         imported, two_group_app):
        workunit, resources = imported
        experiment = system.experiments.define(
            scientist, project.id, "light effect",
            application_id=two_group_app.id,
            resource_ids=[r.id for r in resources],
            attributes={"species": "Arabidopsis Thaliana", "treatment": "light"},
        )
        assert experiment.resource_ids == [r.id for r in resources]

    def test_define_requires_resources_when_interface_says_so(
        self, system, scientist, project, two_group_app
    ):
        with pytest.raises(ValidationError):
            system.experiments.define(
                scientist, project.id, "empty",
                application_id=two_group_app.id, resource_ids=[],
            )

    def test_define_rejects_foreign_resources(
        self, system, scientist, project, imported, two_group_app
    ):
        _, resources = imported
        other = system.projects.create(scientist, "Other")
        with pytest.raises(ValidationError):
            system.experiments.define(
                scientist, other.id, "cross",
                application_id=two_group_app.id,
                resource_ids=[resources[0].id],
            )

    def test_run_produces_available_workunit(
        self, system, scientist, project, imported, two_group_app
    ):
        _, resources = imported
        experiment = system.experiments.define(
            scientist, project.id, "light effect",
            application_id=two_group_app.id,
            resource_ids=[r.id for r in resources],
        )
        workunit = system.experiments.run(
            scientist, experiment.id, workunit_name="results",
            parameters={"reference_group": "_a"},
        )
        assert workunit.status == "available"
        outputs = system.workunits.resources_of(
            scientist, workunit.id, inputs=False
        )
        assert {r.name for r in outputs} == {
            "two_group_result.csv", "report.txt",
        }
        inputs = system.workunits.resources_of(
            scientist, workunit.id, inputs=True
        )
        assert len(inputs) == len(resources)
        # Inputs keep their extract associations.
        assert all(r.extract_id is not None for r in inputs)

    def test_run_validates_parameters(
        self, system, scientist, project, imported, two_group_app
    ):
        _, resources = imported
        experiment = system.experiments.define(
            scientist, project.id, "light effect",
            application_id=two_group_app.id,
            resource_ids=[r.id for r in resources],
        )
        with pytest.raises(ValidationError):
            system.experiments.run(
                scientist, experiment.id, workunit_name="x", parameters={}
            )

    def test_deferred_run_pending_then_ready(
        self, system, scientist, project, imported, two_group_app
    ):
        _, resources = imported
        experiment = system.experiments.define(
            scientist, project.id, "light effect",
            application_id=two_group_app.id,
            resource_ids=[r.id for r in resources],
        )
        workunit = system.experiments.run(
            scientist, experiment.id, workunit_name="deferred",
            parameters={"reference_group": "_a"}, defer=True,
        )
        assert workunit.status == "pending"
        assert workunit.id in {
            w.id for w in system.experiments.pending_runs(scientist)
        }
        workunit = system.experiments.execute_pending(scientist, workunit.id)
        assert workunit.status == "available"
        assert system.experiments.pending_runs(scientist) == []

    def test_failed_run_opens_admin_task(
        self, system, scientist, project, imported, two_group_app
    ):
        admin = system.bootstrap()
        _, resources = imported
        experiment = system.experiments.define(
            scientist, project.id, "bad grouping",
            application_id=two_group_app.id,
            resource_ids=[r.id for r in resources],
        )
        workunit = system.experiments.run(
            scientist, experiment.id, workunit_name="will fail",
            parameters={"reference_group": "no_such_marker"},
        )
        assert workunit.status == "failed"
        titles = [t.title for t in system.tasks.inbox(admin)]
        assert any("failed" in t for t in titles)
        instances = system.workflow.for_entity("workunit", workunit.id)
        assert instances[0].status == "failed"

    def test_execute_pending_without_workflow(self, system, scientist, project):
        workunit = system.workunits.create(scientist, project.id, "plain")
        with pytest.raises(StateError):
            system.experiments.execute_pending(scientist, workunit.id)


class TestResults:
    def make_available_run(self, system, scientist, project, imported, app):
        _, resources = imported
        experiment = system.experiments.define(
            scientist, project.id, "light effect",
            application_id=app.id, resource_ids=[r.id for r in resources],
        )
        return system.experiments.run(
            scientist, experiment.id, workunit_name="results",
            parameters={"reference_group": "_a"},
        )

    def test_zip_contains_results_and_report(
        self, system, scientist, project, imported, two_group_app
    ):
        workunit = self.make_available_run(
            system, scientist, project, imported, two_group_app
        )
        payload = system.results.as_zip_bytes(scientist, workunit.id)
        with zipfile.ZipFile(io.BytesIO(payload)) as archive:
            names = set(archive.namelist())
            assert "two_group_result.csv" in names
            assert "report.txt" in names
            assert "report/run_report.txt" in names
            content = archive.read("two_group_result.csv").decode()
            assert content.startswith("gene,")

    def test_zip_requires_available(self, system, scientist, project):
        workunit = system.workunits.create(scientist, project.id, "pending wu")
        with pytest.raises(StateError):
            system.results.as_zip_bytes(scientist, workunit.id)

    def test_write_zip(self, system, scientist, project, imported,
                       two_group_app, tmp_path):
        workunit = self.make_available_run(
            system, scientist, project, imported, two_group_app
        )
        target = system.results.write_zip(
            scientist, workunit.id, tmp_path / "out" / "results.zip"
        )
        assert target.is_file()
        assert zipfile.is_zipfile(target)

    def test_report_text(self, system, scientist, project, imported, two_group_app):
        workunit = self.make_available_run(
            system, scientist, project, imported, two_group_app
        )
        report = system.results.read_report(workunit.id)
        assert "Two Group Analysis Report" in report
