"""The benchmark harness: report shape, validation, CLI plumbing."""

import json

from repro.bench import (
    REPORT_SCHEMA,
    bench_commit_mode,
    run_benchmarks,
    validate_report,
    write_report,
)


class TestCommitBench:
    def test_counts_line_up(self, tmp_path):
        result = bench_commit_mode(
            "group", txns=40, threads=4, base_dir=tmp_path
        )
        assert result["committed"] == result["transactions"] == 40
        assert result["tx_per_sec"] > 0
        assert 0 < result["fsyncs"] <= 40

    def test_always_mode_fsyncs_per_commit(self, tmp_path):
        result = bench_commit_mode(
            "always", txns=20, threads=4, base_dir=tmp_path
        )
        assert result["fsyncs"] >= result["transactions"]


class TestReport:
    def test_smoke_report_is_valid(self, tmp_path):
        report = run_benchmarks(scale=0.02, threads=4, data_dir=tmp_path)
        assert report["schema"] == REPORT_SCHEMA
        assert validate_report(report) == []
        out = tmp_path / "report.json"
        write_report(report, out)
        assert validate_report(json.loads(out.read_text())) == []

    def test_validation_flags_problems(self):
        assert validate_report({}) != []
        broken = {
            "schema": REPORT_SCHEMA,
            "benchmarks": {
                "commit_throughput": {"modes": {}},
                "query_latency": {},
                "query_cache": {},
                "search": {},
            },
        }
        problems = validate_report(broken)
        assert any("always" in p for p in problems)
        assert any("query cache" in p for p in problems)
        assert any("concurrency" in p for p in problems)

    def test_validation_checks_concurrency_cells(self):
        broken = {
            "schema": REPORT_SCHEMA,
            "benchmarks": {
                "commit_throughput": {"modes": {}},
                "query_latency": {},
                "query_cache": {},
                "search": {},
                "concurrency": {
                    "thread_counts": [1, 4],
                    "workloads": {
                        "read_only": {
                            "1": {"reads": 10, "writes": 0},
                            # 4-thread cell missing
                        },
                        "write_only": {
                            "1": {"reads": 0, "writes": 5},
                            "4": {"reads": 0, "writes": 0},  # no ops
                        },
                        # mixed_90_10 entirely missing
                    },
                },
            },
        }
        problems = validate_report(broken)
        assert any("4-thread cell" in p for p in problems)
        assert any("no operations" in p for p in problems)
        assert any("mixed_90_10" in p for p in problems)
        assert any("mixed_read_scaling" in p for p in problems)


class TestQueueBench:
    def test_validation_requires_queue_section_on_new_reports(self):
        # Enough of a skeleton to get past the earlier short-circuit
        # checks and reach the queue section.
        report = {
            "schema": REPORT_SCHEMA,
            "generated_by": "PR8",
            "benchmarks": {
                "concurrency": {"workloads": {}, "thread_counts": []},
                "replication": {},
            },
        }
        assert "missing queue_ingest section" in validate_report(report)
        # Reports from before the queue existed stay valid without it.
        report["generated_by"] = "PR7"
        problems = validate_report(report)
        assert "missing queue_ingest section" not in problems

    def test_queue_section_runs_at_smoke_scale(self):
        from repro.bench import bench_queue_ingest

        section = bench_queue_ingest(jobs=4, worker_counts=(1, 2))
        for count in ("1", "2"):
            cell = section["workers"][count]
            assert cell["done"] == cell["jobs"] == 4
            assert cell["jobs_per_sec"] > 0
            assert cell["claim_to_start_p95_seconds"] >= 0


class TestReplicationBench:
    def test_validation_requires_replication_section(self):
        report = {
            "schema": REPORT_SCHEMA,
            "benchmarks": {
                "concurrency": {"workloads": {}, "thread_counts": []},
            },
        }
        assert "missing replication section" in validate_report(report)

    def test_replication_section_runs_at_smoke_scale(self, tmp_path):
        from repro.bench import bench_replication

        section = bench_replication(
            commits=48, window=0.2, base_dir=tmp_path
        )
        assert section["apply"]["replicated_per_sec"] > 0
        for count in ("1", "2", "4"):
            assert section["fanout"][count]["reads"] > 0
        assert isinstance(section["fanout_scaling"], float)
        assert section["lag_p95_seqs"] >= 0
