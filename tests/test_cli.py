"""The bfabric command-line tool."""

import pytest

from repro.cli import main


@pytest.fixture
def deployment(tmp_path):
    data = tmp_path / "deploy"
    assert main(["--data", str(data), "init", "--admin-password", "pw"]) == 0
    return data


def run(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCli:
    def test_init_creates_admin(self, tmp_path, capsys):
        data = tmp_path / "d"
        code, out = run(capsys, "--data", str(data), "init")
        assert code == 0
        assert "admin user: admin" in out
        assert (data / "db" / "snapshot.json").exists()

    def test_init_is_idempotent(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "init")
        assert code == 0

    def test_stats_table(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "stats")
        assert code == 0
        assert "Users" in out
        assert "Workunits" in out

    def test_integrity_clean(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "integrity")
        assert code == 0
        assert "no problems" in out

    def test_checkpoint(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "checkpoint")
        assert code == 0
        assert "checkpoint written" in out

    def test_generate_scaled(self, deployment, capsys):
        code, out = run(
            capsys, "--data", str(deployment), "generate", "--scale", "0.005"
        )
        assert code == 0
        assert "Users" in out
        # 0.5% of 1555 users ≈ 8, plus the bootstrap admin.
        users_line = next(
            line for line in out.splitlines() if line.startswith("Users")
        )
        assert int(users_line.split()[-1]) == 9

    def test_reindex_after_generate(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "reindex")
        assert code == 0
        assert "indexed" in out

    def test_search_from_shell(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(
            capsys, "--data", str(deployment), "search", "arabidopsis",
        )
        assert code == 0
        assert out.strip()

    def test_search_unknown_user(self, deployment, capsys):
        with pytest.raises(SystemExit):
            main(["--data", str(deployment), "search", "x",
                  "--as-user", "ghost"])

    def test_metrics_text_exposition(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "metrics")
        assert code == 0
        # Commit activity from generate was persisted and reloaded.
        assert "# TYPE bfabric_storage_commit_seconds histogram" in out
        assert "bfabric_storage_ops_total" in out
        count_line = next(
            line for line in out.splitlines()
            if line.startswith("bfabric_storage_commit_seconds_count")
        )
        assert int(count_line.split()[-1]) > 0

    def test_metrics_json_format(self, deployment, capsys):
        code, out = run(
            capsys, "--data", str(deployment), "metrics", "--format", "json"
        )
        assert code == 0
        import json

        snapshot = json.loads(out)
        assert snapshot["storage_commits_total"]["kind"] == "counter"

    def test_stats_includes_metrics_snapshot(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "stats")
        assert code == 0
        assert "commits observed:" in out
        assert "latency (seconds):" in out
        assert "storage_commit_seconds" in out

    def test_audit_listing(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "audit")
        assert code == 0
        assert "bootstrap" in out

    def test_missing_command_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--data", str(tmp_path)])


class TestCliReports:
    def test_report(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "report")
        assert code == 0
        assert "Busiest projects" in out
        assert "Storage by mode" in out

    def test_provenance(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "provenance", "1")
        assert code == 0
        assert "Workunit #1" in out


class TestCliReplication:
    def test_stats_shows_mvcc_line(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "stats")
        assert code == 0
        assert "MVCC: committed seq" in out
        assert "retained versions" in out

    def test_maintenance_prune(self, deployment, capsys):
        code, out = run(
            capsys, "--data", str(deployment), "maintenance", "prune"
        )
        assert code == 0
        assert "pruned" in out
        assert "horizon seq" in out

    def test_replicate_status(self, deployment, capsys):
        code, out = run(
            capsys, "--data", str(deployment), "replicate", "status"
        )
        assert code == 0
        assert "committed seq" in out
        assert "WAL tail offset" in out

    def test_replicate_promote_heals_torn_wal(self, deployment, capsys):
        # Leave the WAL the way a killed replica process would: torn.
        with open(deployment / "db" / "wal.log", "ab") as fh:
            fh.write(b"deadbeef {torn")
        code, out = run(
            capsys, "--data", str(deployment), "replicate", "promote"
        )
        assert code == 0
        assert "promoted" in out
        code, out = run(capsys, "--data", str(deployment), "integrity")
        assert code == 0

    def test_replicate_serve_and_join(self, tmp_path, capsys):
        import threading

        primary = tmp_path / "primary"
        replica = tmp_path / "replica"
        assert main(["--data", str(primary), "init"]) == 0

        serve_result: list[int] = []

        def serve() -> None:
            serve_result.append(
                main(
                    [
                        "--data", str(primary),
                        "replicate", "serve",
                        "--port", "19510",
                        "--duration", "6",
                    ]
                )
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        import time

        time.sleep(1.0)
        code = main(
            [
                "--data", str(replica),
                "replicate", "join",
                "--primary", "127.0.0.1:19510",
                "--name", "r1",
                "--duration", "3",
            ]
        )
        thread.join(timeout=15.0)
        out = capsys.readouterr().out
        assert code == 0
        assert serve_result == [0]
        assert "connected=True" in out
