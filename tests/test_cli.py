"""The bfabric command-line tool."""

import pytest

from repro.cli import main


@pytest.fixture
def deployment(tmp_path):
    data = tmp_path / "deploy"
    assert main(["--data", str(data), "init", "--admin-password", "pw"]) == 0
    return data


def run(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestCli:
    def test_init_creates_admin(self, tmp_path, capsys):
        data = tmp_path / "d"
        code, out = run(capsys, "--data", str(data), "init")
        assert code == 0
        assert "admin user: admin" in out
        assert (data / "db" / "snapshot.json").exists()

    def test_init_is_idempotent(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "init")
        assert code == 0

    def test_stats_table(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "stats")
        assert code == 0
        assert "Users" in out
        assert "Workunits" in out

    def test_integrity_clean(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "integrity")
        assert code == 0
        assert "no problems" in out

    def test_checkpoint(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "checkpoint")
        assert code == 0
        assert "checkpoint written" in out

    def test_generate_scaled(self, deployment, capsys):
        code, out = run(
            capsys, "--data", str(deployment), "generate", "--scale", "0.005"
        )
        assert code == 0
        assert "Users" in out
        # 0.5% of 1555 users ≈ 8, plus the bootstrap admin.
        users_line = next(
            line for line in out.splitlines() if line.startswith("Users")
        )
        assert int(users_line.split()[-1]) == 9

    def test_reindex_after_generate(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "reindex")
        assert code == 0
        assert "indexed" in out

    def test_search_from_shell(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(
            capsys, "--data", str(deployment), "search", "arabidopsis",
        )
        assert code == 0
        assert out.strip()

    def test_search_unknown_user(self, deployment, capsys):
        with pytest.raises(SystemExit):
            main(["--data", str(deployment), "search", "x",
                  "--as-user", "ghost"])

    def test_metrics_text_exposition(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "metrics")
        assert code == 0
        # Commit activity from generate was persisted and reloaded.
        assert "# TYPE bfabric_storage_commit_seconds histogram" in out
        assert "bfabric_storage_ops_total" in out
        count_line = next(
            line for line in out.splitlines()
            if line.startswith("bfabric_storage_commit_seconds_count")
        )
        assert int(count_line.split()[-1]) > 0

    def test_metrics_json_format(self, deployment, capsys):
        code, out = run(
            capsys, "--data", str(deployment), "metrics", "--format", "json"
        )
        assert code == 0
        import json

        snapshot = json.loads(out)
        assert snapshot["storage_commits_total"]["kind"] == "counter"

    def test_stats_includes_metrics_snapshot(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "stats")
        assert code == 0
        assert "commits observed:" in out
        assert "latency (seconds):" in out
        assert "storage_commit_seconds" in out

    def test_audit_listing(self, deployment, capsys):
        code, out = run(capsys, "--data", str(deployment), "audit")
        assert code == 0
        assert "bootstrap" in out

    def test_missing_command_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--data", str(tmp_path)])


class TestCliReports:
    def test_report(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "report")
        assert code == 0
        assert "Busiest projects" in out
        assert "Storage by mode" in out

    def test_provenance(self, deployment, capsys):
        run(capsys, "--data", str(deployment), "generate", "--scale", "0.005")
        code, out = run(capsys, "--data", str(deployment), "provenance", "1")
        assert code == 0
        assert "Workunit #1" in out
