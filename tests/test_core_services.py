"""Core services: directory, projects, samples/extracts, workunits."""

import datetime as dt

import pytest

from repro.errors import (
    AccessDenied,
    EntityNotFound,
    StateError,
    ValidationError,
)
from repro.facade import BFabric
from repro.util.clock import ManualClock


@pytest.fixture
def system():
    return BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def admin(system):
    return system.bootstrap()


@pytest.fixture
def scientist(system, admin):
    return system.add_user(admin, login="sci", full_name="Scientist")


@pytest.fixture
def project(system, scientist):
    return system.projects.create(scientist, "Arabidopsis light response")


class TestDirectory:
    def test_org_institute_user_chain(self, system, admin):
        org = system.directory.create_organization(admin, "University of Zurich")
        institute = system.directory.create_institute(
            admin, "Institute of Plant Biology", org.id
        )
        user = system.directory.create_user(
            admin,
            login="Grower",
            full_name="Plant Grower",
            institute_id=institute.id,
            email="grower@uzh.ch",
        )
        assert user.login == "grower"  # lowered
        assert system.directory.institutes_of(org.id)[0].id == institute.id

    def test_counts(self, system, admin):
        system.directory.create_organization(admin, "O")
        assert system.directory.counts() == {
            "users": 1,  # bootstrap admin
            "institutes": 0,
            "organizations": 1,
        }

    def test_scientist_cannot_administer(self, system, admin, scientist):
        with pytest.raises(AccessDenied):
            system.directory.create_organization(scientist, "X")
        with pytest.raises(AccessDenied):
            system.directory.create_user(scientist, login="a", full_name="A")

    def test_invalid_user_fields(self, system, admin):
        with pytest.raises(ValidationError) as excinfo:
            system.directory.create_user(
                admin, login="", full_name="", role="wizard", email="nope"
            )
        errors = excinfo.value.field_errors
        assert set(errors) == {"login", "full_name", "role", "email"}

    def test_deactivate(self, system, admin, scientist):
        user = system.directory.deactivate_user(admin, scientist.user_id)
        assert user.active is False

    def test_set_own_password(self, system, admin, scientist):
        system.directory.set_password(scientist, scientist.user_id, "newpw")
        session = system.auth.login("sci", "newpw")
        assert session.principal.user_id == scientist.user_id

    def test_cannot_set_others_password(self, system, admin, scientist):
        other = system.add_user(admin, login="other", full_name="Other")
        with pytest.raises(AccessDenied):
            system.directory.set_password(scientist, other.user_id, "pwpw")

    def test_short_password_rejected(self, system, scientist):
        with pytest.raises(ValidationError):
            system.directory.set_password(scientist, scientist.user_id, "ab")


class TestProjects:
    def test_creator_becomes_leader(self, system, scientist, project):
        members = system.projects.members(scientist, project.id)
        assert [(m.user_id, m.role) for m in members] == [
            (scientist.user_id, "leader")
        ]

    def test_visibility(self, system, admin, scientist, project):
        outsider = system.add_user(admin, login="out", full_name="Out")
        assert system.projects.visible_to(outsider) == []
        assert [p.id for p in system.projects.visible_to(scientist)] == [project.id]
        with pytest.raises(AccessDenied):
            system.projects.get(outsider, project.id)

    def test_add_and_remove_member(self, system, admin, scientist, project):
        member = system.add_user(admin, login="member", full_name="M")
        system.projects.add_member(scientist, project.id, member.user_id)
        assert [p.id for p in system.projects.visible_to(member)] == [project.id]
        assert system.projects.remove_member(scientist, project.id, member.user_id)
        assert system.projects.visible_to(member) == []

    def test_member_cannot_manage(self, system, admin, scientist, project):
        member = system.add_user(admin, login="member", full_name="M")
        system.projects.add_member(scientist, project.id, member.user_id)
        third = system.add_user(admin, login="third", full_name="T")
        with pytest.raises(AccessDenied):
            system.projects.add_member(member, project.id, third.user_id)

    def test_empty_name_rejected(self, system, scientist):
        with pytest.raises(ValidationError):
            system.projects.create(scientist, "  ")


class TestSamples:
    def test_register(self, system, scientist, project):
        sample = system.samples.register_sample(
            scientist, project.id, "wt light 1",
            species="Arabidopsis Thaliana",
            attributes={"treatment": "light"},
        )
        assert sample.id is not None
        assert sample.attributes == {"treatment": "light"}

    def test_duplicate_name_in_project_rejected(self, system, scientist, project):
        system.samples.register_sample(scientist, project.id, "s1")
        with pytest.raises(ValidationError):
            system.samples.register_sample(scientist, project.id, "s1")

    def test_same_name_in_other_project_allowed(self, system, scientist):
        p1 = system.projects.create(scientist, "P1")
        p2 = system.projects.create(scientist, "P2")
        system.samples.register_sample(scientist, p1.id, "s1")
        system.samples.register_sample(scientist, p2.id, "s1")

    def test_outsider_cannot_register(self, system, admin, project):
        outsider = system.add_user(admin, login="out", full_name="Out")
        with pytest.raises(AccessDenied):
            system.samples.register_sample(outsider, project.id, "s1")

    def test_clone_copies_attributes_and_annotations(
        self, system, admin, scientist, project
    ):
        expert = system.add_user(admin, login="exp", full_name="E", role="employee")
        attribute = system.annotations.define_attribute(expert, "Tissue")
        annotation, _ = system.annotations.create_annotation(
            scientist, attribute.id, "leaf"
        )
        original = system.samples.register_sample(
            scientist, project.id, "original",
            species="A. thaliana", attributes={"treatment": "light"},
            annotation_ids=[annotation.id],
        )
        clone = system.samples.clone_sample(
            scientist, original.id, "copy",
            overrides={"attributes": {"replicate": 2}},
        )
        assert clone.species == "A. thaliana"
        assert clone.attributes == {"treatment": "light", "replicate": 2}
        assert [
            a.value for a in system.annotations.annotations_for("sample", clone.id)
        ] == ["leaf"]

    def test_clone_unknown_override_rejected(self, system, scientist, project):
        original = system.samples.register_sample(scientist, project.id, "o")
        with pytest.raises(ValidationError):
            system.samples.clone_sample(
                scientist, original.id, "c", overrides={"bogus": 1}
            )

    def test_clone_missing_sample(self, system, scientist):
        with pytest.raises(EntityNotFound):
            system.samples.clone_sample(scientist, 404, "c")

    def test_batch_register(self, system, scientist, project):
        samples = system.samples.batch_register_samples(
            scientist, project.id, ["a", "b", "c"], species="E. coli"
        )
        assert len(samples) == 3
        assert all(s.species == "E. coli" for s in samples)

    def test_batch_is_atomic(self, system, scientist, project):
        system.samples.register_sample(scientist, project.id, "b")
        with pytest.raises(ValidationError):
            system.samples.batch_register_samples(
                scientist, project.id, ["a", "b"]
            )
        # "a" must not have been created.
        names = [
            s.name
            for s in system.samples.samples_of_project(scientist, project.id)
        ]
        assert names == ["b"]

    def test_batch_duplicate_within_batch(self, system, scientist, project):
        with pytest.raises(ValidationError):
            system.samples.batch_register_samples(
                scientist, project.id, ["x", "x"]
            )

    def test_batch_empty_name(self, system, scientist, project):
        with pytest.raises(ValidationError):
            system.samples.batch_register_samples(scientist, project.id, ["a", " "])


class TestExtracts:
    def test_register_extract(self, system, scientist, project):
        sample = system.samples.register_sample(scientist, project.id, "s")
        extract = system.samples.register_extract(
            scientist, sample.id, "s rna", procedure="TRIzol"
        )
        assert extract.sample_id == sample.id

    def test_several_extracts_per_sample(self, system, scientist, project):
        sample = system.samples.register_sample(scientist, project.id, "s")
        system.samples.register_extract(scientist, sample.id, "rna 1")
        system.samples.register_extract(scientist, sample.id, "rna 2")
        assert len(system.samples.extracts_of_sample(scientist, sample.id)) == 2

    def test_duplicate_extract_name_rejected(self, system, scientist, project):
        sample = system.samples.register_sample(scientist, project.id, "s")
        system.samples.register_extract(scientist, sample.id, "e")
        with pytest.raises(ValidationError):
            system.samples.register_extract(scientist, sample.id, "e")

    def test_extracts_of_project_crosses_samples(self, system, scientist, project):
        s1 = system.samples.register_sample(scientist, project.id, "s1")
        s2 = system.samples.register_sample(scientist, project.id, "s2")
        system.samples.register_extract(scientist, s1.id, "e1")
        system.samples.register_extract(scientist, s2.id, "e2")
        names = [
            e.name
            for e in system.samples.extracts_of_project(scientist, project.id)
        ]
        assert names == ["e1", "e2"]

    def test_clone_extract(self, system, scientist, project):
        sample = system.samples.register_sample(scientist, project.id, "s")
        original = system.samples.register_extract(
            scientist, sample.id, "e", procedure="TRIzol"
        )
        clone = system.samples.clone_extract(scientist, original.id, "e2")
        assert clone.procedure == "TRIzol"
        assert clone.sample_id == sample.id

    def test_batch_register_extracts(self, system, scientist, project):
        sample = system.samples.register_sample(scientist, project.id, "s")
        extracts = system.samples.batch_register_extracts(
            scientist, sample.id, ["e1", "e2"], procedure="column"
        )
        assert [e.procedure for e in extracts] == ["column", "column"]


class TestWorkunits:
    def test_create_and_add_resources(self, system, scientist, project):
        workunit = system.workunits.create(scientist, project.id, "wu")
        resource = system.workunits.add_resource(
            scientist, workunit.id, "file.raw", "store://x/file.raw",
            size_bytes=100,
        )
        assert resource.workunit_id == workunit.id
        assert len(system.workunits.resources_of(scientist, workunit.id)) == 1

    def test_mark_inputs(self, system, scientist, project):
        workunit = system.workunits.create(scientist, project.id, "wu")
        r1 = system.workunits.add_resource(
            scientist, workunit.id, "in.raw", "u://1"
        )
        system.workunits.add_resource(scientist, workunit.id, "out.csv", "u://2")
        assert system.workunits.mark_inputs(scientist, workunit.id, [r1.id]) == 1
        inputs = system.workunits.resources_of(
            scientist, workunit.id, inputs=True
        )
        assert [r.name for r in inputs] == ["in.raw"]

    def test_mark_foreign_resource_rejected(self, system, scientist, project):
        wu1 = system.workunits.create(scientist, project.id, "wu1")
        wu2 = system.workunits.create(scientist, project.id, "wu2")
        resource = system.workunits.add_resource(scientist, wu1.id, "f", "u://1")
        with pytest.raises(ValidationError):
            system.workunits.mark_inputs(scientist, wu2.id, [resource.id])

    def test_lifecycle_transitions(self, system, scientist, project):
        workunit = system.workunits.create(scientist, project.id, "wu")
        workunit = system.workunits.transition(scientist, workunit.id, "processing")
        workunit = system.workunits.transition(scientist, workunit.id, "available")
        assert workunit.status == "available"

    def test_illegal_transition(self, system, scientist, project):
        workunit = system.workunits.create(scientist, project.id, "wu")
        system.workunits.transition(scientist, workunit.id, "available")
        with pytest.raises(StateError):
            system.workunits.transition(scientist, workunit.id, "pending")

    def test_failed_can_retry(self, system, scientist, project):
        workunit = system.workunits.create(scientist, project.id, "wu")
        system.workunits.transition(scientist, workunit.id, "failed")
        retried = system.workunits.transition(scientist, workunit.id, "pending")
        assert retried.status == "pending"

    def test_assign_extract(self, system, scientist, project):
        sample = system.samples.register_sample(scientist, project.id, "s")
        extract = system.samples.register_extract(scientist, sample.id, "e")
        workunit = system.workunits.create(scientist, project.id, "wu")
        resource = system.workunits.add_resource(scientist, workunit.id, "f", "u://1")
        updated = system.workunits.assign_extract(
            scientist, resource.id, extract.id
        )
        assert updated.extract_id == extract.id

    def test_counts(self, system, scientist, project):
        system.workunits.create(scientist, project.id, "wu")
        assert system.workunits.counts() == {
            "workunits": 1, "data_resources": 0,
        }


class TestAuditTrail:
    def test_operations_recorded_per_user(self, system, scientist, project):
        system.samples.register_sample(scientist, project.id, "s1")
        entries = system.audit.for_user(scientist.user_id)
        summaries = [(e.action, e.entity_type) for e in entries]
        assert ("create", "sample") in summaries
        assert ("create", "project") in summaries

    def test_entity_history(self, system, scientist, project):
        sample = system.samples.register_sample(scientist, project.id, "s1")
        history = system.audit.for_entity("sample", sample.id)
        assert len(history) == 1
        assert history[0].action == "create"
