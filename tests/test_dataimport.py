"""Data import: providers, relevance filters, store, matching, service."""

import datetime as dt

import pytest

from repro.dataimport import (
    AffymetrixGeneChipProvider,
    LocalFileSystemProvider,
    ManagedStore,
    MassSpectrometerProvider,
    RelevanceFilter,
    propose_assignments,
)
from repro.dataimport.providers import ProviderFile
from repro.dataimport.store import sha256_of
from repro.errors import ProviderError, ValidationError
from repro.facade import BFabric
from repro.util.clock import ManualClock


@pytest.fixture
def system(tmp_path):
    return BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def scientist(system):
    admin = system.bootstrap()
    return system.add_user(admin, login="sci", full_name="Sci")


@pytest.fixture
def project(system, scientist):
    return system.projects.create(scientist, "P")


class TestRelevanceFilter:
    def make_file(self, name, modified=None):
        return ProviderFile(
            name=name,
            path=name,
            size_bytes=10,
            modified=modified or dt.datetime(2010, 1, 5),
            kind=name.rsplit(".", 1)[-1] if "." in name else "",
        )

    def test_pattern_filter(self):
        f = RelevanceFilter(patterns=["scan*"])
        assert f.matches(self.make_file("scan01_a.cel"))
        assert not f.matches(self.make_file("other.cel"))

    def test_extension_filter(self):
        f = RelevanceFilter(extensions=["cel"])
        assert f.matches(self.make_file("x.cel"))
        assert not f.matches(self.make_file("x.chp"))

    def test_extension_filter_with_dot(self):
        f = RelevanceFilter(extensions=[".CEL"])
        assert f.matches(self.make_file("x.cel"))

    def test_modified_after(self):
        f = RelevanceFilter(modified_after=dt.datetime(2010, 1, 4))
        assert f.matches(self.make_file("x", modified=dt.datetime(2010, 1, 5)))
        assert not f.matches(self.make_file("x", modified=dt.datetime(2010, 1, 3)))

    def test_max_files_keeps_newest(self):
        files = [
            self.make_file("old", modified=dt.datetime(2010, 1, 1)),
            self.make_file("new", modified=dt.datetime(2010, 1, 9)),
            self.make_file("mid", modified=dt.datetime(2010, 1, 5)),
        ]
        selected = RelevanceFilter(max_files=2).apply(files)
        assert [f.name for f in selected] == ["new", "mid"]

    def test_empty_filter_matches_all(self):
        f = RelevanceFilter()
        assert f.matches(self.make_file("anything.xyz"))


class TestSimulatedInstruments:
    def test_genechip_listing_structure(self):
        provider = AffymetrixGeneChipProvider("gc", runs=2)
        names = [f.name for f in provider.list_files()]
        assert "scan01_a.cel" in names
        assert "scan01_a.chp" in names
        assert len(names) == 2 * 2 * 2  # runs x samples x templates

    def test_massspec_kind(self):
        provider = MassSpectrometerProvider("ms", runs=1)
        files = provider.list_files()
        assert all(f.kind == "raw" for f in files)

    def test_deterministic_content(self, tmp_path):
        provider = AffymetrixGeneChipProvider("gc", runs=1)
        file = provider.find("scan01_a.cel")
        p1 = provider.fetch(file, tmp_path / "one")
        p2 = provider.fetch(file, tmp_path / "two")
        assert sha256_of(p1) == sha256_of(p2)
        assert p1.stat().st_size == file.size_bytes

    def test_find_missing_file(self):
        provider = AffymetrixGeneChipProvider("gc", runs=1)
        with pytest.raises(ProviderError):
            provider.find("nope.cel")

    def test_relevance_applied_to_listing(self):
        provider = AffymetrixGeneChipProvider(
            "gc", runs=2, relevance=RelevanceFilter(extensions=["cel"])
        )
        assert all(f.kind == "cel" for f in provider.list_files())

    def test_uri_for(self):
        provider = AffymetrixGeneChipProvider("gc", runs=1)
        file = provider.find("scan01_a.cel")
        assert provider.uri_for(file) == "genechip://gc/scan01/scan01_a.cel"


class TestLocalFileSystemProvider:
    def test_lists_and_fetches(self, tmp_path):
        root = tmp_path / "data"
        (root / "sub").mkdir(parents=True)
        (root / "a.txt").write_text("alpha")
        (root / "sub" / "b.txt").write_text("beta")
        provider = LocalFileSystemProvider("local", root)
        names = sorted(f.name for f in provider.list_files())
        assert names == ["a.txt", "b.txt"]
        fetched = provider.fetch(provider.find("b.txt"), tmp_path / "out")
        assert fetched.read_text() == "beta"

    def test_missing_root(self, tmp_path):
        with pytest.raises(ProviderError):
            LocalFileSystemProvider("local", tmp_path / "missing")


class TestManagedStore:
    def test_ingest_and_verify(self, tmp_path):
        store = ManagedStore(tmp_path / "store")
        source = tmp_path / "f.bin"
        source.write_bytes(b"payload")
        uri, checksum, size = store.ingest(42, source)
        assert uri == "store://workunit_00000042/f.bin"
        assert size == 7
        assert store.verify(uri, checksum)

    def test_verify_detects_tampering(self, tmp_path):
        store = ManagedStore(tmp_path / "store")
        source = tmp_path / "f.bin"
        source.write_bytes(b"payload")
        uri, checksum, _ = store.ingest(1, source)
        store.path_for(uri).write_bytes(b"tampered")
        assert not store.verify(uri, checksum)

    def test_verify_missing_file(self, tmp_path):
        store = ManagedStore(tmp_path / "store")
        assert not store.verify("store://workunit_00000001/ghost", "00")

    def test_path_for_rejects_foreign_uri(self, tmp_path):
        store = ManagedStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.path_for("http://elsewhere/f")

    def test_total_bytes(self, tmp_path):
        store = ManagedStore(tmp_path / "store")
        source = tmp_path / "f.bin"
        source.write_bytes(b"12345")
        store.ingest(1, source)
        assert store.total_bytes() == 5


class TestMatching:
    def test_exact_stem_matches(self):
        proposals = propose_assignments(
            {1: "wt_light_1.cel", 2: "wt_dark_1.cel"},
            {10: "wt light 1", 20: "wt dark 1"},
        )
        assert {(p.resource_id, p.extract_id) for p in proposals} == {
            (1, 10), (2, 20),
        }
        assert all(p.score == 1.0 for p in proposals)

    def test_one_to_one(self):
        # Two resources competing for one extract: only the better pair wins.
        proposals = propose_assignments(
            {1: "sample_a.cel", 2: "sample_a_rep.cel"},
            {10: "sample a"},
        )
        assert len(proposals) == 1
        assert proposals[0].resource_id == 1

    def test_below_minimum_unmatched(self):
        proposals = propose_assignments({1: "zzz.cel"}, {10: "totally different"})
        assert proposals == []

    def test_empty_inputs(self):
        assert propose_assignments({}, {}) == []
        assert propose_assignments({1: "x.cel"}, {}) == []

    def test_deterministic_tie_break(self):
        first = propose_assignments(
            {1: "a.cel", 2: "a.cel"}, {10: "a", 20: "a"}
        )
        second = propose_assignments(
            {1: "a.cel", 2: "a.cel"}, {10: "a", 20: "a"}
        )
        assert first == second


class TestDataImportService:
    def setup_provider(self, system):
        provider = AffymetrixGeneChipProvider("GeneChip", runs=1)
        system.imports.register_provider(provider)
        return provider

    def test_register_provider_twice_rejected(self, system, scientist):
        self.setup_provider(system)
        with pytest.raises(ValidationError):
            system.imports.register_provider(
                AffymetrixGeneChipProvider("GeneChip", runs=1)
            )

    def test_copy_import_stores_bytes_and_checksums(
        self, system, scientist, project
    ):
        self.setup_provider(system)
        workunit, resources, instance = system.imports.import_files(
            scientist, project.id, "GeneChip", ["scan01_a.cel"],
            workunit_name="import", mode="copy",
        )
        assert workunit.status == "pending"
        resource = resources[0]
        assert resource.storage == "internal"
        assert resource.uri.startswith("store://")
        assert system.store.verify(resource.uri, resource.checksum)
        assert instance.current_step == "assign_extracts"

    def test_link_import_records_uri_only(self, system, scientist, project):
        self.setup_provider(system)
        _, resources, _ = system.imports.import_files(
            scientist, project.id, "GeneChip", ["scan01_a.cel"],
            workunit_name="import", mode="link",
        )
        resource = resources[0]
        assert resource.storage == "linked"
        assert resource.uri == "genechip://GeneChip/scan01/scan01_a.cel"
        assert resource.checksum == ""

    def test_bad_mode(self, system, scientist, project):
        self.setup_provider(system)
        with pytest.raises(ValidationError):
            system.imports.import_files(
                scientist, project.id, "GeneChip", ["scan01_a.cel"],
                workunit_name="x", mode="teleport",
            )

    def test_empty_selection(self, system, scientist, project):
        self.setup_provider(system)
        with pytest.raises(ValidationError):
            system.imports.import_files(
                scientist, project.id, "GeneChip", [], workunit_name="x"
            )

    def test_unknown_provider(self, system, scientist, project):
        with pytest.raises(ProviderError):
            system.imports.import_files(
                scientist, project.id, "Ghost", ["f"], workunit_name="x"
            )

    def test_proposals_and_apply_default(self, system, scientist, project):
        self.setup_provider(system)
        sample = system.samples.register_sample(scientist, project.id, "s")
        system.samples.batch_register_extracts(
            scientist, sample.id, ["scan01 a", "scan01 b"]
        )
        workunit, resources, _ = system.imports.import_files(
            scientist, project.id, "GeneChip",
            ["scan01_a.cel", "scan01_b.cel"], workunit_name="import",
        )
        proposals = system.imports.proposals_for(scientist, workunit.id)
        assert len(proposals) == 2
        workunit = system.imports.apply_assignments(scientist, workunit.id)
        assert workunit.status == "available"
        for resource in system.workunits.resources_of(scientist, workunit.id):
            assert resource.extract_id is not None

    def test_apply_rejects_foreign_extract(self, system, scientist, project):
        self.setup_provider(system)
        other_project = system.projects.create(scientist, "Other")
        other_sample = system.samples.register_sample(
            scientist, other_project.id, "os"
        )
        foreign = system.samples.register_extract(
            scientist, other_sample.id, "foreign extract"
        )
        workunit, resources, _ = system.imports.import_files(
            scientist, project.id, "GeneChip", ["scan01_a.cel"],
            workunit_name="import",
        )
        with pytest.raises(ValidationError):
            system.imports.apply_assignments(
                scientist, workunit.id, {resources[0].id: foreign.id}
            )

    def test_import_completes_workflow(self, system, scientist, project):
        self.setup_provider(system)
        sample = system.samples.register_sample(scientist, project.id, "s")
        system.samples.batch_register_extracts(scientist, sample.id, ["scan01 a"])
        workunit, _, instance = system.imports.import_files(
            scientist, project.id, "GeneChip", ["scan01_a.cel"],
            workunit_name="import",
        )
        system.imports.apply_assignments(scientist, workunit.id)
        finished = system.workflow.get(instance.id)
        assert finished.status == "completed"

    def test_provider_config_persisted(self, system, scientist):
        self.setup_provider(system)
        rows = list(system.db.rows("data_provider"))
        assert [r["name"] for r in rows] == ["GeneChip"]
        assert rows[0]["kind"] == "genechip"


class TestImportFailureInjection:
    """A provider failing mid-fetch must leave no partial workunit."""

    class FlakyProvider(AffymetrixGeneChipProvider):
        kind = "genechip"

        def __init__(self, *args, fail_on: str, **kwargs):
            super().__init__(*args, **kwargs)
            self.fail_on = fail_on

        def fetch(self, file, destination):
            if file.name == self.fail_on:
                raise ProviderError(f"instrument unreachable for {file.name}")
            return super().fetch(file, destination)

    def test_copy_failure_leaves_no_state(self, system, scientist, project):
        provider = self.FlakyProvider("Flaky", runs=1, fail_on="scan01_b.cel")
        system.imports.register_provider(provider)
        before_workunits = system.db.count("workunit")
        before_resources = system.db.count("data_resource")
        with pytest.raises(ProviderError):
            system.imports.import_files(
                scientist, project.id, "Flaky",
                ["scan01_a.cel", "scan01_b.cel"],
                workunit_name="doomed", mode="copy",
            )
        assert system.db.count("workunit") == before_workunits
        assert system.db.count("data_resource") == before_resources
        # No orphaned workflow instances or tasks either.
        assert system.workflow.active_instances() == []
        assert system.tasks.inbox(scientist) == []

    def test_failure_does_not_poison_later_imports(
        self, system, scientist, project
    ):
        provider = self.FlakyProvider("Flaky", runs=1, fail_on="scan01_b.cel")
        system.imports.register_provider(provider)
        with pytest.raises(ProviderError):
            system.imports.import_files(
                scientist, project.id, "Flaky", ["scan01_b.cel"],
                workunit_name="doomed",
            )
        workunit, resources, _ = system.imports.import_files(
            scientist, project.id, "Flaky", ["scan01_a.cel"],
            workunit_name="fine",
        )
        assert len(resources) == 1
        assert system.store.verify(resources[0].uri, resources[0].checksum)
