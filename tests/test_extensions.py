"""Extension features: content search, workflow retry, portal batch form."""

import datetime as dt

import pytest

from repro.dataimport import AffymetrixGeneChipProvider
from repro.errors import StateError, WorkflowDefinitionError
from repro.facade import BFabric
from repro.portal import PortalApplication
from repro.portal.testing import PortalClient
from repro.util.clock import ManualClock


@pytest.fixture
def system(tmp_path):
    return BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def actors(system):
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Sci")
    return admin, scientist


class TestResourceContentSearch:
    """Paper: search covers 'the content of readable ... data resources'."""

    def run_experiment(self, system, scientist):
        project = system.projects.create(scientist, "P")
        system.imports.register_provider(
            AffymetrixGeneChipProvider("gc", runs=1)
        )
        workunit, resources, _ = system.imports.import_files(
            scientist, project.id, "gc", ["scan01_a.cel"],
            workunit_name="chips",
        )
        app = system.applications.register_application(
            scientist, name="two group analysis", connector="rserve",
            executable="two_group_analysis",
            interface={"inputs": ["resource"], "parameters": [
                {"name": "reference_group", "type": "text", "required": True},
            ]},
        )
        # Need two groups: import the b file too.
        workunit2, resources2, _ = system.imports.import_files(
            scientist, project.id, "gc", ["scan01_b.cel"],
            workunit_name="chips b",
        )
        experiment = system.experiments.define(
            scientist, project.id, "e", application_id=app.id,
            resource_ids=[resources[0].id, resources2[0].id],
        )
        return system.experiments.run(
            scientist, experiment.id, workunit_name="results",
            parameters={"reference_group": "_a"},
        )

    def test_report_content_is_searchable(self, system, actors):
        admin, scientist = actors
        self.run_experiment(system, scientist)
        # "report.txt" contains the phrase "genes tested"; a content
        # search must find the resource even though neither word is in
        # its name or uri.
        results = system.search.search(
            scientist, "type:data_resource genes tested"
        )
        assert any(r.label == "report.txt" for r in results)

    def test_binary_resources_not_content_indexed(self, system, actors):
        admin, scientist = actors
        self.run_experiment(system, scientist)
        document = system.search.index.document("data_resource", 1)
        assert document is not None
        assert "content" not in document.fields  # .cel is binary

    def test_reindex_preserves_content_field(self, system, actors):
        admin, scientist = actors
        self.run_experiment(system, scientist)
        system.reindex_all()
        results = system.search.search(
            scientist, "type:data_resource genes tested"
        )
        assert any(r.label == "report.txt" for r in results)

    def test_content_field_scoping_in_queries(self, system, actors):
        admin, scientist = actors
        self.run_experiment(system, scientist)
        scoped = system.search.search(scientist, "content:significant")
        assert scoped
        assert all(r.entity_type == "data_resource" for r in scoped)


class TestWorkflowRetry:
    def fail_one(self, system, admin):
        instance = system.workflow.start(admin, "run_experiment")
        return system.workflow.fail(admin, instance.id, "connector down")

    def test_retry_reactivates(self, system, actors):
        admin, _ = actors
        failed = self.fail_one(system, admin)
        retried = system.workflow.retry(admin, failed.id)
        assert retried.status == "active"
        assert retried.current_step == "pending"
        assert "failure_reason" not in retried.context

    def test_retry_records_history(self, system, actors):
        admin, _ = actors
        failed = self.fail_one(system, admin)
        system.workflow.retry(admin, failed.id)
        actions = [e.action for e in system.workflow.history(failed.id)]
        assert "__retry__" in actions

    def test_retry_from_specific_step(self, system, actors):
        admin, _ = actors
        failed = self.fail_one(system, admin)
        retried = system.workflow.retry(admin, failed.id, from_step="pending")
        assert retried.current_step == "pending"

    def test_retry_unknown_step_rejected(self, system, actors):
        admin, _ = actors
        failed = self.fail_one(system, admin)
        with pytest.raises(WorkflowDefinitionError):
            system.workflow.retry(admin, failed.id, from_step="nowhere")

    def test_only_failed_instances_retry(self, system, actors):
        admin, _ = actors
        active = system.workflow.start(admin, "run_experiment")
        with pytest.raises(StateError):
            system.workflow.retry(admin, active.id)
        cancelled = system.workflow.cancel(admin, active.id)
        with pytest.raises(StateError):
            system.workflow.retry(admin, cancelled.id)

    def test_retried_instance_completes_normally(self, system, actors):
        admin, _ = actors
        failed = self.fail_one(system, admin)
        retried = system.workflow.retry(admin, failed.id)
        done = system.workflow.fire(admin, retried.id, "execute")
        assert done.status == "completed"


class TestPortalBatchRegistration:
    @pytest.fixture
    def client(self, system):
        admin = system.bootstrap(password="adminpw")
        system.directory.set_password(admin, admin.user_id, "adminpw")
        system.add_user(admin, login="sci", full_name="Sci", password="sci123")
        client = PortalClient(PortalApplication(system))
        client.login("sci", "sci123")
        return client

    def test_batch_form_renders(self, client):
        client.post("/projects", {"name": "P", "description": ""})
        response = client.get("/projects/1/samples/batch")
        assert "one per line" in response.text

    def test_batch_registration_via_portal(self, system, client):
        client.post("/projects", {"name": "P", "description": ""})
        response = client.post(
            "/projects/1/samples/batch",
            {"names": "alpha\nbeta\n\n gamma ", "species": "E. coli"},
        )
        assert response.status == 200
        names = sorted(system.db.query("sample").values("name"))
        assert names == ["alpha", "beta", "gamma"]

    def test_batch_duplicate_rejected_with_400(self, client):
        client.post("/projects", {"name": "P", "description": ""})
        response = client.post(
            "/projects/1/samples/batch", {"names": "x\nx", "species": ""}
        )
        assert response.status == 400
