"""The facade wiring and the synthetic deployment generator."""

import datetime as dt

import pytest

from repro import BFabric
from repro.util.clock import ManualClock
from repro.workload import (
    DeploymentGenerator,
    DeploymentSpec,
    FGCZ_JANUARY_2010,
)


@pytest.fixture
def system():
    return BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


class TestFacade:
    def test_bootstrap_idempotent(self, system):
        first = system.bootstrap()
        second = system.bootstrap()
        assert first.user_id == second.user_id
        assert system.db.count("user") == 1

    def test_bootstrap_login_works(self, system):
        system.bootstrap(password="s3cret")
        session = system.auth.login("admin", "s3cret")
        assert session.principal.is_admin

    def test_default_connectors_installed(self, system):
        assert set(system.applications.connector_kinds()) == {"rserve", "python"}

    def test_workflow_definitions_registered(self, system):
        assert set(system.workflow.definition_names()) == {
            "data_import", "run_experiment",
        }

    def test_deployment_statistics_keys_match_paper(self, system):
        stats = system.deployment_statistics()
        assert list(stats) == [
            "Users", "Projects", "Institutes", "Organizations",
            "Samples", "Extracts", "Data Resources", "Workunits",
        ]

    def test_statistics_shape(self, system):
        system.bootstrap()
        stats = system.statistics()
        assert {"deployment", "storage", "search", "audit_entries"} <= set(stats)

    def test_context_manager_closes(self, tmp_path):
        with BFabric(tmp_path) as system:
            system.bootstrap()
        # WAL file handle is closed; reopening works.
        revived = BFabric(tmp_path)
        assert revived.recover()["wal_txns"] >= 1

    def test_durable_round_trip_through_facade(self, tmp_path):
        clock = ManualClock(dt.datetime(2010, 1, 15, 9, 0))
        system = BFabric(tmp_path, clock=clock)
        admin = system.bootstrap()
        scientist = system.add_user(admin, login="sci", full_name="Sci")
        project = system.projects.create(scientist, "Durable")
        system.samples.register_sample(scientist, project.id, "s1")
        system.close()

        revived = BFabric(tmp_path, clock=clock)
        revived.recover()
        assert revived.db.count("sample") == 1
        revived.reindex_all()
        principal = revived.directory.principal_for(
            revived.directory.user_by_login("sci")
        )
        assert revived.search.quick_search(principal, "s1")


class TestDeploymentSpec:
    def test_paper_numbers(self):
        table = FGCZ_JANUARY_2010.as_paper_table()
        assert table == {
            "Users": 1555,
            "Projects": 750,
            "Institutes": 224,
            "Organizations": 59,
            "Samples": 3151,
            "Extracts": 3642,
            "Data Resources": 40005,
            "Workunits": 23979,
        }

    def test_scaled_proportions(self):
        small = FGCZ_JANUARY_2010.scaled(0.01)
        assert small.users == round(1555 * 0.01)
        assert small.organizations >= 1

    def test_scaled_bounds(self):
        with pytest.raises(ValueError):
            FGCZ_JANUARY_2010.scaled(0.0)
        with pytest.raises(ValueError):
            FGCZ_JANUARY_2010.scaled(1.5)


class TestDeploymentGenerator:
    SCALE = 0.02  # ~1430 rows total: fast but structurally interesting

    @pytest.fixture
    def populated(self, system):
        spec = FGCZ_JANUARY_2010.scaled(self.SCALE)
        counts = DeploymentGenerator(system, seed=7).generate(spec)
        return system, spec, counts

    def test_exact_counts(self, populated):
        system, spec, counts = populated
        assert counts == spec.as_paper_table()

    def test_referential_integrity(self, populated):
        system, _, _ = populated
        assert system.db.verify_integrity() == []

    def test_deterministic(self):
        spec = FGCZ_JANUARY_2010.scaled(self.SCALE)
        a = BFabric(clock=ManualClock(dt.datetime(2010, 1, 15)))
        b = BFabric(clock=ManualClock(dt.datetime(2010, 1, 15)))
        DeploymentGenerator(a, seed=7).generate(spec)
        DeploymentGenerator(b, seed=7).generate(spec)
        rows_a = sorted(map(repr, a.db.rows("sample")))
        rows_b = sorted(map(repr, b.db.rows("sample")))
        assert rows_a == rows_b

    def test_roles_distributed(self, populated):
        system, _, _ = populated
        roles = set(system.db.query("user").values("role"))
        assert "admin" in roles and "scientist" in roles

    def test_resources_link_to_project_extracts(self, populated):
        system, _, _ = populated
        # Every resource with an extract: the extract's sample lives in
        # the same project as the resource's workunit.
        sample_project = {
            row["id"]: row["project_id"] for row in system.db.rows("sample")
        }
        extract_project = {
            row["id"]: sample_project[row["sample_id"]]
            for row in system.db.rows("extract")
        }
        workunit_project = {
            row["id"]: row["project_id"] for row in system.db.rows("workunit")
        }
        for row in system.db.rows("data_resource"):
            if row["extract_id"] is not None:
                assert (
                    extract_project[row["extract_id"]]
                    == workunit_project[row["workunit_id"]]
                )

    def test_skewed_project_sizes(self, populated):
        system, _, _ = populated
        from collections import Counter

        by_project = Counter(
            row["project_id"] for row in system.db.rows("workunit")
        )
        counts = sorted(by_project.values(), reverse=True)
        # Zipf-ish: the largest project clearly exceeds the median.
        assert counts[0] >= 3 * counts[len(counts) // 2]

    def test_search_over_generated_corpus(self, populated):
        system, _, _ = populated
        system.reindex_all()
        admin = system.bootstrap()
        results = system.search.quick_search(admin, "arabidopsis")
        assert results
