"""Linked-object browsing (networked view) and administrative functions."""

import datetime as dt

import pytest

from repro.errors import AccessDenied
from repro.facade import BFabric
from repro.graphview.links import ObjectRef
from repro.util.clock import ManualClock


@pytest.fixture
def system(tmp_path):
    return BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def world(system):
    """A small linked world: project > sample > extract > resource/workunit."""
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Sci")
    expert = system.add_user(admin, login="exp", full_name="Exp", role="employee")
    project = system.projects.create(scientist, "P")
    sample = system.samples.register_sample(scientist, project.id, "s1")
    extract = system.samples.register_extract(scientist, sample.id, "e1")
    workunit = system.workunits.create(scientist, project.id, "wu")
    resource = system.workunits.add_resource(
        scientist, workunit.id, "f.raw", "u://f", extract_id=extract.id
    )
    return admin, scientist, expert, project, sample, extract, workunit, resource


class TestLinkGraph:
    def test_neighbors_bidirectional(self, system, world):
        _, _, _, project, sample, extract, workunit, resource = world
        graph = system.links.rebuild()
        sample_ref = ObjectRef("sample", sample.id)
        neighbor_types = {
            ref.entity_type for ref, _ in graph.neighbors(sample_ref)
        }
        assert neighbor_types == {"project", "extract"}
        # And backwards from the project.
        project_ref = ObjectRef("project", project.id)
        assert sample_ref in [ref for ref, _ in graph.neighbors(project_ref)]

    def test_edge_labels(self, system, world):
        _, _, _, project, sample, extract, workunit, resource = world
        graph = system.links.rebuild()
        labels = dict(
            (ref.entity_type, label)
            for ref, label in graph.neighbors(ObjectRef("data_resource", resource.id))
        )
        assert labels["workunit"] == "contained in"
        assert labels["extract"] == "measured from"

    def test_path_resource_to_project(self, system, world):
        _, _, _, project, sample, extract, workunit, resource = world
        graph = system.links.rebuild()
        path = graph.path(
            ObjectRef("data_resource", resource.id), ObjectRef("project", project.id)
        )
        assert path[0].entity_type == "data_resource"
        assert path[-1].entity_type == "project"
        assert len(path) >= 2

    def test_neighborhood_radius(self, system, world):
        _, _, _, project, sample, extract, workunit, resource = world
        graph = system.links.rebuild()
        one_hop = graph.neighborhood(ObjectRef("project", project.id), radius=1)
        two_hop = graph.neighborhood(ObjectRef("project", project.id), radius=2)
        assert set(one_hop) <= set(two_hop)
        assert ObjectRef("extract", extract.id) not in one_hop
        assert ObjectRef("extract", extract.id) in two_hop

    def test_annotation_links_included(self, system, world):
        _, scientist, expert, project, sample, *_ = world
        attribute = system.annotations.define_attribute(expert, "Tissue")
        annotation, _ = system.annotations.create_annotation(
            scientist, attribute.id, "leaf"
        )
        system.annotations.annotate(scientist, annotation.id, "sample", sample.id)
        graph = system.links.rebuild()
        neighbors = [
            ref for ref, _ in graph.neighbors(ObjectRef("sample", sample.id))
        ]
        assert ObjectRef("annotation", annotation.id) in neighbors

    def test_unknown_node(self, system, world):
        graph = system.links.rebuild()
        assert graph.neighbors(ObjectRef("sample", 999)) == []
        assert graph.path(
            ObjectRef("sample", 999), ObjectRef("project", 1)
        ) == []

    def test_connected_and_component(self, system, world):
        _, scientist, _, project, sample, extract, workunit, resource = world
        other_project = system.projects.create(scientist, "Island")
        graph = system.links.rebuild()
        assert graph.connected(
            ObjectRef("sample", sample.id), ObjectRef("workunit", workunit.id)
        )
        assert not graph.connected(
            ObjectRef("sample", sample.id), ObjectRef("project", other_project.id)
        )
        component = graph.component_of(ObjectRef("project", project.id))
        assert ObjectRef("data_resource", resource.id) in component

    def test_statistics(self, system, world):
        graph = system.links.rebuild()
        stats = graph.statistics()
        assert stats["nodes"] >= 5
        assert stats["edges"] >= 4
        assert stats["components"] >= 1


class TestErrorRegistry:
    def test_report_and_resolve(self, system, world):
        admin, *_ = world
        record = system.errors.report("importer", "provider timeout", {"n": 1})
        assert [e.id for e in system.errors.open_errors()] == [record.id]
        system.errors.resolve(admin, record.id)
        assert system.errors.open_errors() == []

    def test_counts_by_source(self, system, world):
        system.errors.report("importer", "a")
        system.errors.report("importer", "b")
        system.errors.report("portal", "c")
        assert system.errors.counts_by_source() == {"importer": 2, "portal": 1}


class TestMaintenance:
    def test_integrity_check_clean(self, system, world):
        admin, *_ = world
        assert system.maintenance.integrity_check(admin) == []

    def test_requires_admin(self, system, world):
        _, scientist, *_ = world
        with pytest.raises(AccessDenied):
            system.maintenance.integrity_check(scientist)
        with pytest.raises(AccessDenied):
            system.maintenance.dashboard(scientist)

    def test_expert_is_not_enough(self, system, world):
        _, _, expert, *_ = world
        with pytest.raises(AccessDenied):
            system.maintenance.rebuild_indexes(expert)

    def test_rebuild_indexes(self, system, world):
        admin, scientist, *_ = world
        system.maintenance.rebuild_indexes(admin)
        assert system.maintenance.integrity_check(admin) == []

    def test_checkpoint_and_recover(self, tmp_path):
        clock = ManualClock(dt.datetime(2010, 1, 15, 9, 0))
        system = BFabric(tmp_path / "deploy", clock=clock)
        admin = system.bootstrap()
        scientist = system.add_user(admin, login="sci", full_name="Sci")
        system.projects.create(scientist, "Durable project")
        system.maintenance.checkpoint(admin)
        system.projects.create(scientist, "After checkpoint")
        system.close()

        revived = BFabric(tmp_path / "deploy", clock=clock)
        stats = revived.recover()
        assert stats["snapshot_rows"] > 0
        names = revived.db.query("project").values("name")
        assert sorted(names) == ["After checkpoint", "Durable project"]

    def test_dashboard_contents(self, system, world):
        admin, *_ = world
        report = system.maintenance.dashboard(admin)
        assert "storage" in report
        assert "search" in report
        assert "workflows" in report
        assert set(report["workflows"]["definitions"]) >= {
            "data_import", "run_experiment",
        }


class TestMonitor:
    def test_commit_counters(self, system, world):
        snapshot = system.monitor.snapshot()
        assert snapshot["commits"] > 0
        assert "sample" in snapshot["operations"]
        assert snapshot["operations"]["sample"]["insert"] >= 1

    def test_busiest_tables(self, system, world):
        busiest = system.monitor.busiest_tables(3)
        assert len(busiest) == 3
        assert busiest[0][1] >= busiest[-1][1]
