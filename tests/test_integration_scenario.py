"""The paper's §2 demonstration scenario, end to end.

"As example scenario, we use a scientist who is working on a plant named
Arabidopsis Thaliana with the goal to figure out the effect of certain
gene and the effect on light on it.  For this purpose, he registers his
samples and extracts with B-Fabric, loads his data into B-Fabric and
defines his experiment.  Afterwards, he runs his experiment and stores
the results in B-Fabric."

One test per demo station (Figures 2–16), sharing one system so state
flows through exactly as in the live demo.
"""

import datetime as dt
import io
import zipfile

import pytest

from repro.dataimport import AffymetrixGeneChipProvider
from repro.facade import BFabric
from repro.util.clock import ManualClock


@pytest.fixture(scope="class")
def demo(tmp_path_factory):
    """The shared demo state: system, actors, project."""
    tmp = tmp_path_factory.mktemp("demo")
    system = BFabric(tmp, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))
    admin = system.bootstrap()
    scientist = system.add_user(
        admin, login="plant_scientist", full_name="Plant Scientist"
    )
    expert = system.add_user(
        admin, login="fgcz_employee", full_name="FGCZ Employee", role="employee"
    )
    other_scientist = system.add_user(
        admin, login="other_scientist", full_name="Other Scientist"
    )
    project = system.projects.create(
        scientist, "Arabidopsis light response",
        description="Effect of a certain gene and of light",
    )
    system.projects.add_member(scientist, project.id, other_scientist.user_id)
    system.imports.register_provider(
        AffymetrixGeneChipProvider("Affymetrix GeneChip", runs=2)
    )
    return {
        "system": system,
        "admin": admin,
        "scientist": scientist,
        "expert": expert,
        "other_scientist": other_scientist,
        "project": project,
        "state": {},
    }


@pytest.mark.usefixtures("demo")
class TestDemonstrationScenario:
    def test_01_register_samples_figure2(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        project = demo["project"]
        sample = system.samples.register_sample(
            scientist, project.id, "col0 wildtype",
            species="Arabidopsis Thaliana",
            attributes={"ecotype": "Columbia-0"},
        )
        # Cloning and batch registration ease repetitive entry.
        system.samples.clone_sample(scientist, sample.id, "col0 mutant")
        demo["state"]["sample"] = sample
        assert system.db.count("sample") == 2

    def test_02_new_annotation_from_form_figure2(self, demo):
        system = demo["system"]
        scientist, expert = demo["scientist"], demo["expert"]
        attribute = system.annotations.define_attribute(expert, "Disease State")
        annotation, similar = system.annotations.create_annotation(
            scientist, attribute.id, "Hopeless"
        )
        system.annotations.annotate(
            scientist, annotation.id, "sample", demo["state"]["sample"].id
        )
        demo["state"]["attribute"] = attribute
        demo["state"]["hopeless"] = annotation
        assert annotation.status == "pending"
        assert similar == []

    def test_03_register_extracts_figure3(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        sample = demo["state"]["sample"]
        extracts = system.samples.batch_register_extracts(
            scientist, sample.id,
            ["scan01 a", "scan01 b", "scan02 a", "scan02 b"],
            procedure="TRIzol RNA extraction",
        )
        demo["state"]["extracts"] = extracts
        assert len(extracts) == 4

    def test_04_expert_task_appears_figure8(self, demo):
        system, expert = demo["system"], demo["expert"]
        titles = [t.title for t in system.tasks.inbox(expert)]
        assert any("Hopeless" in t for t in titles)

    def test_05_release_annotation_figure4(self, demo):
        system, expert = demo["system"], demo["expert"]
        released = system.annotations.release(
            expert, demo["state"]["hopeless"].id
        )
        assert released.status == "released"
        assert system.tasks.inbox(expert) == []

    def test_06_misspelled_duplicate_detected_figure5(self, demo):
        system = demo["system"]
        other = demo["other_scientist"]
        attribute = demo["state"]["attribute"]
        misspelled, similar = system.annotations.create_annotation(
            other, attribute.id, "Hopeles"
        )
        demo["state"]["misspelled"] = misspelled
        assert [a.value for a, _ in similar] == ["Hopeless"]
        recommendations = system.annotations.merge_recommendations(attribute.id)
        assert len(recommendations) == 1
        assert recommendations[0].merge_value == "Hopeles"

    def test_07_merge_reassociates_figure6_7(self, demo):
        system = demo["system"]
        expert, other = demo["expert"], demo["other_scientist"]
        # The other scientist annotated his sample with the misspelling.
        project = demo["project"]
        sample = system.samples.register_sample(
            other, project.id, "other sample", species="Arabidopsis Thaliana"
        )
        system.annotations.annotate(
            other, demo["state"]["misspelled"].id, "sample", sample.id
        )
        system.annotations.merge(
            expert, demo["state"]["hopeless"].id, demo["state"]["misspelled"].id
        )
        values = [
            a.value for a in system.annotations.annotations_for("sample", sample.id)
        ]
        assert values == ["Hopeless"]

    def test_08_create_workunit_from_genechip_figure9(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        project = demo["project"]
        files = system.imports.browse("Affymetrix GeneChip")
        cel_files = [f.name for f in files if f.kind == "cel"]
        workunit, resources, instance = system.imports.import_files(
            scientist, project.id, "Affymetrix GeneChip", cel_files,
            workunit_name="light experiment chips", mode="copy",
        )
        demo["state"]["import_workunit"] = workunit
        demo["state"]["resources"] = resources
        assert len(resources) == 4
        assert all(r.checksum for r in resources)

    def test_09_import_workflow_highlights_assign_step_figure10(self, demo):
        system = demo["system"]
        workunit = demo["state"]["import_workunit"]
        instances = system.workflow.for_entity("workunit", workunit.id)
        assert instances[0].current_step == "assign_extracts"
        from repro.workflow.render import render_ascii

        drawing = render_ascii(
            system.workflow.definition("data_import"),
            instances[0].current_step,
        )
        assert "▶[Assign extracts]" in drawing

    def test_10_best_match_assignment_figure11(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        workunit = demo["state"]["import_workunit"]
        proposals = system.imports.proposals_for(scientist, workunit.id)
        assert len(proposals) == 4
        assert all(p.score == 1.0 for p in proposals)
        # "Typically he just needs to press the save button".
        workunit = system.imports.apply_assignments(scientist, workunit.id)
        assert workunit.status == "available"

    def test_11_register_application_figure12(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        application = system.applications.register_application(
            scientist,
            name="two group analysis",
            connector="rserve",
            executable="two_group_analysis",
            interface={
                "inputs": ["resource"],
                "parameters": [
                    {"name": "reference_group", "type": "text", "required": True},
                    {"name": "alpha", "type": "float", "default": 0.05},
                ],
                "output": "R report",
            },
            description="Differential expression between two groups",
        )
        demo["state"]["application"] = application
        assert application.active

    def test_12_create_experiment_definition_figure13(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        experiment = system.experiments.define(
            scientist, demo["project"].id, "gene and light effect",
            application_id=demo["state"]["application"].id,
            resource_ids=[r.id for r in demo["state"]["resources"]],
            sample_ids=[demo["state"]["sample"].id],
            extract_ids=[e.id for e in demo["state"]["extracts"]],
            attributes={"species": "Arabidopsis Thaliana", "treatment": "light"},
        )
        demo["state"]["experiment"] = experiment
        assert experiment.attributes["treatment"] == "light"

    def test_13_run_experiment_pending_figure15(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        workunit = system.experiments.run(
            scientist, demo["state"]["experiment"].id,
            workunit_name="two group results",
            parameters={"reference_group": "_a"},
            defer=True,
        )
        demo["state"]["run_workunit"] = workunit
        assert workunit.status == "pending"
        instances = system.workflow.for_entity("workunit", workunit.id)
        assert instances[0].current_step == "pending"

    def test_14_results_ready_figure16(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        workunit = system.experiments.execute_pending(
            scientist, demo["state"]["run_workunit"].id
        )
        assert workunit.status == "available"
        payload = system.results.as_zip_bytes(scientist, workunit.id)
        with zipfile.ZipFile(io.BytesIO(payload)) as archive:
            assert "two_group_result.csv" in archive.namelist()

    def test_15_fulltext_search_over_everything(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        results = system.search.quick_search(scientist, "arabidopsis")
        types = {r.entity_type for r in results}
        assert "project" in types and "sample" in types
        system.saved_queries.save(scientist, "my chips", "type:data_resource cel")
        saved = system.saved_queries.get(scientist, "my chips")
        assert system.search.search(scientist, saved.query)

    def test_16_networked_browse_and_audit(self, demo):
        system, scientist = demo["system"], demo["scientist"]
        from repro.graphview.links import ObjectRef

        graph = system.links.rebuild()
        run_ref = ObjectRef("workunit", demo["state"]["run_workunit"].id)
        project_ref = ObjectRef("project", demo["project"].id)
        assert graph.connected(run_ref, project_ref)
        history = system.audit.for_user(scientist.user_id)
        assert history  # the scientist can remember what he did

    def test_17_deployment_statistics_consistent(self, demo):
        system = demo["system"]
        stats = system.deployment_statistics()
        assert stats["Samples"] == system.db.count("sample")
        assert stats["Workunits"] == 2  # import + experiment result
        assert stats["Data Resources"] == 4 + 2 + 4  # imports + outputs + inputs

    def test_18_durability_of_the_whole_demo(self, demo, tmp_path):
        system = demo["system"]
        counts_before = system.deployment_statistics()
        system.db.checkpoint()
        # A new facade over the same directory recovers everything.
        revived = BFabric(system.path, clock=system.clock)
        revived.recover()
        assert revived.deployment_statistics() == counts_before
