"""Schema evolution: add_column, add_index, the migration runner."""

import pytest

from repro.errors import SchemaError
from repro.orm.migrations import Migration, MigrationRunner
from repro.storage import Column, ColumnType, Database, TableSchema


@pytest.fixture
def db_with_rows() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "sample",
            [
                Column("id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT, nullable=False),
            ],
            indexes=["name"],
        )
    )
    for name in ("a", "b", "c"):
        db.insert("sample", {"name": name})
    return db


class TestAddColumn:
    def test_backfills_default(self, db_with_rows):
        db_with_rows.add_column(
            "sample", Column("status", ColumnType.TEXT, default="active")
        )
        assert all(
            row["status"] == "active" for row in db_with_rows.rows("sample")
        )
        # New inserts get the column too.
        row = db_with_rows.insert("sample", {"name": "d"})
        assert row["status"] == "active"

    def test_nullable_without_default(self, db_with_rows):
        db_with_rows.add_column("sample", Column("notes", ColumnType.TEXT))
        assert all(row["notes"] is None for row in db_with_rows.rows("sample"))

    def test_not_null_without_default_rejected(self, db_with_rows):
        with pytest.raises(SchemaError):
            db_with_rows.add_column(
                "sample", Column("required", ColumnType.TEXT, nullable=False)
            )

    def test_not_null_with_default_ok(self, db_with_rows):
        db_with_rows.add_column(
            "sample",
            Column("kind", ColumnType.TEXT, nullable=False, default="generic"),
        )
        db_with_rows.insert("sample", {"name": "d"})
        assert db_with_rows.verify_integrity() == []

    def test_duplicate_column_rejected(self, db_with_rows):
        with pytest.raises(SchemaError):
            db_with_rows.add_column("sample", Column("name", ColumnType.TEXT))

    def test_primary_key_rejected(self, db_with_rows):
        with pytest.raises(SchemaError):
            db_with_rows.add_column(
                "sample", Column("id2", ColumnType.INT, primary_key=True)
            )

    def test_unique_column_with_colliding_default_rejected(self, db_with_rows):
        with pytest.raises(SchemaError):
            db_with_rows.add_column(
                "sample",
                Column("code", ColumnType.TEXT, unique=True, default="same"),
            )

    def test_unique_column_on_empty_table(self):
        db = Database()
        db.create_table(
            TableSchema("t", [Column("id", ColumnType.INT, primary_key=True)])
        )
        db.add_column("t", Column("code", ColumnType.TEXT, unique=True))
        db.insert("t", {"code": "x"})
        from repro.errors import UniqueViolation

        with pytest.raises(UniqueViolation):
            db.insert("t", {"code": "x"})

    def test_added_fk_column_enforced(self, db_with_rows):
        db_with_rows.create_table(
            TableSchema("lab", [Column("id", ColumnType.INT, primary_key=True)])
        )
        db_with_rows.add_column(
            "sample", Column("lab_id", ColumnType.INT, foreign_key="lab.id")
        )
        from repro.errors import ForeignKeyViolation

        with pytest.raises(ForeignKeyViolation):
            db_with_rows.insert("sample", {"name": "z", "lab_id": 99})
        lab = db_with_rows.insert("lab", {})
        db_with_rows.insert("sample", {"name": "z", "lab_id": lab["id"]})
        # The referential map knows about the new FK: restrict applies.
        with pytest.raises(ForeignKeyViolation):
            db_with_rows.delete("lab", lab["id"])


class TestAddIndex:
    def test_index_over_existing_data(self, db_with_rows):
        db_with_rows.add_column(
            "sample", Column("status", ColumnType.TEXT, default="active")
        )
        db_with_rows.add_index("sample", "status")
        plan = db_with_rows.query("sample").where("status", "=", "active").explain()
        assert plan["strategy"].startswith("index:")
        assert (
            db_with_rows.query("sample").where("status", "=", "active").count()
            == 3
        )

    def test_duplicate_index_rejected(self, db_with_rows):
        with pytest.raises(SchemaError):
            db_with_rows.add_index("sample", "name")

    def test_index_on_unknown_column(self, db_with_rows):
        with pytest.raises(SchemaError):
            db_with_rows.add_index("sample", "bogus")

    def test_composite_index(self, db_with_rows):
        db_with_rows.add_column("sample", Column("group_no", ColumnType.INT, default=1))
        db_with_rows.add_index("sample", ("name", "group_no"))
        plan = (
            db_with_rows.query("sample")
            .where("name", "=", "a")
            .where("group_no", "=", 1)
            .explain()
        )
        assert plan["strategy"] == "index:ix_sample_name_group_no"


class TestMigrationRunner:
    def test_runs_pending_once(self, db_with_rows):
        runner = MigrationRunner(db_with_rows)
        runner.add(
            Migration(
                "001_add_status",
                "status column",
                lambda db: db.add_column(
                    "sample", Column("status", ColumnType.TEXT, default="ok")
                ),
            )
        )
        assert runner.run_pending() == ["001_add_status"]
        assert runner.run_pending() == []  # bookkept
        assert runner.applied_ids() == ["001_add_status"]

    def test_order_preserved(self, db_with_rows):
        calls = []
        runner = MigrationRunner(db_with_rows)
        runner.add(Migration("001", "", lambda db: calls.append(1)))
        runner.add(Migration("002", "", lambda db: calls.append(2)))
        runner.run_pending()
        assert calls == [1, 2]

    def test_duplicate_registration_rejected(self, db_with_rows):
        runner = MigrationRunner(db_with_rows)
        runner.add(Migration("001", "", lambda db: None))
        with pytest.raises(SchemaError):
            runner.add(Migration("001", "", lambda db: None))

    def test_failed_migration_not_recorded(self, db_with_rows):
        runner = MigrationRunner(db_with_rows)

        def explode(db):
            raise RuntimeError("bad DDL")

        runner.add(Migration("001", "", explode))
        with pytest.raises(RuntimeError):
            runner.run_pending()
        assert runner.applied_ids() == []
        assert runner.pending()  # still pending after the failure

    def test_runner_survives_restart(self, tmp_path):
        db = Database(tmp_path)
        db.create_table(
            TableSchema("t", [Column("id", ColumnType.INT, primary_key=True)])
        )
        runner = MigrationRunner(db)
        runner.add(Migration("001", "", lambda d: None))
        runner.run_pending()
        db.close()

        db2 = Database(tmp_path)
        db2.create_table(
            TableSchema("t", [Column("id", ColumnType.INT, primary_key=True)])
        )
        runner2 = MigrationRunner(db2)
        db2.recover()
        runner2.add(Migration("001", "", lambda d: None))
        assert runner2.run_pending() == []
