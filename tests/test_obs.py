"""The observability layer: metrics, tracing, structured logs."""

import datetime as dt
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    MetricsError,
    MetricsRegistry,
    Observability,
    StructuredLog,
    Tracer,
    file_sink,
)
from repro.obs.metrics import RESERVOIR_SIZE
from repro.util.clock import ManualClock


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        family = MetricsRegistry().counter("ops", labels=("table", "op"))
        family.labels(table="user", op="insert").inc()
        family.labels(table="user", op="insert").inc()
        family.labels(table="sample", op="delete").inc()
        assert family.labels(table="user", op="insert").value == 2
        assert family.labels(table="sample", op="delete").value == 1

    def test_wrong_labels_rejected(self):
        family = MetricsRegistry().counter("ops", labels=("table",))
        with pytest.raises(MetricsError):
            family.labels(route="/")
        with pytest.raises(MetricsError):
            family.inc()  # labelled family has no solo child

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=("a",))
        with pytest.raises(MetricsError):
            registry.counter("x", labels=("b",))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("active")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4


class TestHistogramPercentiles:
    def test_uniform_distribution(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        # Linear interpolation over 1..100.
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(95) == pytest.approx(95.05)
        assert histogram.percentile(99) == pytest.approx(99.01)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_constant_distribution(self):
        histogram = MetricsRegistry().histogram("h")
        for _ in range(10):
            histogram.observe(7.0)
        for q in (50, 95, 99):
            assert histogram.percentile(q) == 7.0

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.percentile(50) is None
        assert histogram.summary()["count"] == 0

    def test_two_point_distribution(self):
        histogram = MetricsRegistry().histogram("h")
        for _ in range(90):
            histogram.observe(1.0)
        for _ in range(10):
            histogram.observe(100.0)
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(99) > 50.0

    def test_summary_fields(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        histogram.observe(3.0)
        summary = histogram.summary()
        assert summary["count"] == 2
        assert summary["sum"] == 4.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_reservoir_overflow_keeps_estimates_sane(self):
        histogram = MetricsRegistry().histogram("h")
        n = RESERVOIR_SIZE * 4
        for value in range(n):
            histogram.observe(float(value))
        assert histogram.count == n
        # A uniform sample of a uniform stream: the median estimate must
        # land well inside the middle of the range.
        median = histogram.percentile(50)
        assert n * 0.3 < median < n * 0.7
        assert histogram.summary()["max"] == float(n - 1)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_bounded_by_min_max(self, values):
        histogram = MetricsRegistry().histogram("h")
        for value in values:
            histogram.observe(value)
        for q in (0, 50, 95, 99, 100):
            estimate = histogram.percentile(q)
            assert min(values) <= estimate <= max(values)

    def test_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 5),
        ]

    def test_boundary_value_counts_as_le(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.cumulative_buckets()[0] == (1.0, 1)


class TestExposition:
    def test_counter_and_histogram_rendering(self):
        registry = MetricsRegistry(namespace="bfabric")
        registry.counter("requests_total", "Requests", labels=("route",)).labels(
            route="/login"
        ).inc(3)
        registry.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_text()
        assert "# HELP bfabric_requests_total Requests" in text
        assert "# TYPE bfabric_requests_total counter" in text
        assert 'bfabric_requests_total{route="/login"} 3' in text
        assert 'bfabric_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'bfabric_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "bfabric_latency_seconds_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("q",)).labels(q='say "hi"\n').inc()
        rendered = registry.render_text()
        assert r'q="say \"hi\"\n"' in rendered

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["g"]["samples"][0]["value"] == 2
        assert snapshot["h"]["samples"][0]["count"] == 1


class TestPersistence:
    def test_state_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("ops", labels=("table",)).labels(table="user").inc(7)
        histogram = registry.histogram("lat")
        for value in range(1, 101):
            histogram.observe(value / 1000)

        # Through JSON, like the on-disk file.
        state = json.loads(json.dumps(registry.state()))
        restored = MetricsRegistry()
        restored.restore(state)
        assert restored.get("ops").labels(table="user").value == 7
        assert restored.get("lat").percentile(95) == pytest.approx(
            histogram.percentile(95)
        )
        assert restored.get("lat").summary()["count"] == 100

    def test_restored_metrics_keep_accumulating(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        restored = MetricsRegistry()
        restored.restore(registry.state())
        restored.counter("c").inc()
        assert restored.get("c").value == 6


class TestTracer:
    def test_nested_spans_parent_child(self):
        clock = ManualClock(dt.datetime(2010, 1, 15, 9, 0))
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(seconds=1)
            with tracer.span("inner") as inner:
                clock.advance(seconds=0.5)
            with tracer.span("sibling"):
                clock.advance(seconds=0.25)
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert outer.parent_id is None
        assert inner.duration == 0.5
        assert outer.duration == 1.75
        # Children finish before parents; trace() sees all three.
        names = [span.name for span in tracer.trace(outer.trace_id)]
        assert names == ["inner", "sibling", "outer"]
        assert [s.name for s in tracer.children(outer)] == ["inner", "sibling"]

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("boom")
        span = tracer.finished("risky")[0]
        assert span.status == "error"
        assert span.attributes["error.type"] == "ValueError"
        assert span.attributes["error.message"] == "boom"

    def test_explicit_status_survives_exception(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(KeyError):
            with tracer.span("lookup") as span:
                span.status = "not-found"
                raise KeyError("user 7")
        span = tracer.finished("lookup")[0]
        # The instrumented code classified its own failure; the context
        # manager must not clobber it (but still records the exception).
        assert span.status == "not-found"
        assert span.attributes["error.type"] == "KeyError"

    def test_attributes_and_set(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("q", terms=3) as span:
            span.set(results=7)
        finished = tracer.finished("q")[0]
        assert finished.attributes == {"terms": 3, "results": 7}

    def test_sink_receives_finished_spans(self):
        seen = []
        tracer = Tracer(clock=ManualClock(), sink=seen.append)
        with tracer.span("a"):
            pass
        assert [span.name for span in seen] == ["a"]

    def test_ring_buffer_bounded(self):
        tracer = Tracer(clock=ManualClock(), capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished()) == 3


class TestStructuredLog:
    def test_records_and_filtering(self):
        log = StructuredLog(clock=ManualClock())
        log.log("commit", txn=1)
        log.log("request", path="/")
        assert [r["event"] for r in log.records()] == ["commit", "request"]
        assert log.records("commit")[0]["txn"] == 1
        assert log.emitted == 2

    def test_ring_capacity(self):
        log = StructuredLog(clock=ManualClock(), capacity=2)
        for index in range(5):
            log.log("e", i=index)
        assert [r["i"] for r in log.records()] == [3, 4]
        assert log.emitted == 5

    def test_jsonl_lines_parse(self):
        log = StructuredLog(clock=ManualClock())
        log.log("e", value=1)
        parsed = [json.loads(line) for line in log.jsonl().splitlines()]
        assert parsed[0]["event"] == "e"
        assert parsed[0]["ts"] == "2010-01-01T00:00:00"

    def test_file_sink_appends_json_lines(self, tmp_path):
        log = StructuredLog(clock=ManualClock())
        log.add_sink(file_sink(tmp_path / "obs.jsonl"))
        log.log("commit", txn=9)
        line = (tmp_path / "obs.jsonl").read_text().strip()
        assert json.loads(line)["txn"] == 9


class TestObservabilityHub:
    def test_spans_become_log_records(self):
        clock = ManualClock()
        obs = Observability(clock=clock)
        with obs.tracer.span("search.query"):
            clock.advance(seconds=0.1)
        record = obs.log.records("span")[0]
        assert record["name"] == "search.query"
        assert record["duration"] == pytest.approx(0.1)

    def test_save_load_roundtrip(self, tmp_path):
        obs = Observability(clock=ManualClock())
        obs.metrics.counter("c").inc(4)
        obs.save(tmp_path)
        fresh = Observability(clock=ManualClock())
        assert fresh.load(tmp_path) is True
        assert fresh.metrics.get("c").value == 4

    def test_load_missing_or_corrupt_is_graceful(self, tmp_path):
        obs = Observability(clock=ManualClock())
        assert obs.load(tmp_path) is False
        (tmp_path / "metrics.json").write_text("{torn", encoding="utf-8")
        assert obs.load(tmp_path) is False

    def test_statistics(self):
        obs = Observability(clock=ManualClock())
        obs.metrics.counter("c").inc()
        with obs.tracer.span("s"):
            pass
        stats = obs.statistics()
        assert stats["metric_families"] == 1
        assert stats["finished_spans"] == 1
        assert stats["log_records"] == 1
