"""Observability wired through storage, portal, and CLI."""

import datetime as dt

import pytest

from repro.cli import main
from repro.dataimport import AffymetrixGeneChipProvider
from repro.facade import BFabric
from repro.portal import PortalApplication
from repro.portal.testing import PortalClient
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util.clock import ManualClock


def _user_table(db: Database) -> None:
    db.create_table(
        TableSchema(
            "user",
            [
                Column("id", ColumnType.INT, primary_key=True),
                Column("login", ColumnType.TEXT),
            ],
        )
    )


@pytest.fixture
def system(tmp_path):
    system = BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))
    admin = system.bootstrap(password="adminpw")
    system.directory.set_password(admin, admin.user_id, "adminpw")
    system.add_user(
        admin, login="sci", full_name="Scientist", password="sciencepw"
    )
    system.imports.register_provider(
        AffymetrixGeneChipProvider("GeneChip", runs=1)
    )
    return system


@pytest.fixture
def client(system):
    return PortalClient(PortalApplication(system))


@pytest.fixture
def sci(client):
    client.login("sci", "sciencepw")
    return client


class TestStorageInstrumentation:
    def test_commit_metrics_accumulate(self, tmp_path):
        db = Database(tmp_path / "db")
        _user_table(db)
        with db.transaction() as txn:
            txn.insert("user", {"login": "a"})
            txn.insert("user", {"login": "b"})
        registry = db.obs.metrics
        assert registry.get("storage_commits_total").value == 1
        ops = registry.get("storage_ops_total")
        assert ops.labels(table="user", op="insert").value == 2
        assert registry.get("storage_commit_seconds").count == 1
        assert registry.get("storage_wal_append_seconds").count == 1
        db.close()

    def test_metrics_survive_database_recover(self, tmp_path):
        db = Database(tmp_path / "db")
        _user_table(db)
        with db.transaction() as txn:
            txn.insert("user", {"login": "a"})
        before = db.obs.metrics.get("storage_commits_total").value
        db.close()

        # Restart: a fresh Database sharing the hub replays the WAL.
        restarted = Database(tmp_path / "db", obs=db.obs)
        _user_table(restarted)
        restarted.recover()
        registry = restarted.obs.metrics
        # recover() must not reset the registry — only add to it.
        assert registry.get("storage_commits_total").value == before
        assert registry.get("storage_recover_seconds").count == 1
        assert restarted.obs.log.records("storage.recover")
        assert restarted.query("user").one()["login"] == "a"
        restarted.close()

    def test_facade_metrics_survive_reopen(self, tmp_path):
        system = BFabric(tmp_path)
        system.bootstrap(password="pw")
        commits = system.obs.metrics.get("storage_commits_total").value
        assert commits > 0
        system.close()

        reopened = BFabric(tmp_path)
        reopened.recover()
        # The persisted registry state carries prior history forward.
        restored = reopened.obs.metrics.get("storage_commits_total").value
        assert restored >= commits
        reopened.close()

    def test_checkpoint_timed_and_logged(self, tmp_path):
        system = BFabric(tmp_path)
        system.bootstrap(password="pw")
        system.db.checkpoint()
        assert system.obs.metrics.get("storage_checkpoint_seconds").count == 1
        assert system.obs.log.records("storage.checkpoint")
        system.close()


class TestMiddlewareLabels:
    def requests(self, system):
        return system.obs.metrics.get("http_requests_total")

    def test_ok_request_labelled_200(self, sci, system):
        sci.get("/ping")
        child = self.requests(system).labels(
            route="/ping", method="GET", status=200
        )
        assert child.value == 1
        latency = system.obs.metrics.get("http_request_seconds")
        assert latency.labels(route="/ping").count == 1

    def test_unmatched_path_labelled_404(self, sci, system):
        sci.get("/definitely/not/a/route")
        child = self.requests(system).labels(
            route="<unmatched>", method="GET", status=404
        )
        assert child.value == 1

    def test_anonymous_redirect_labelled_303(self, client, system):
        client.get("/", follow_redirects=False)
        child = self.requests(system).labels(
            route="/", method="GET", status=303
        )
        assert child.value == 1

    def test_route_pattern_not_raw_path(self, sci, system):
        sci.post("/projects", {"name": "P", "description": ""})
        sci.get("/projects/1")
        labelled = {
            labels["route"] for labels, _ in self.requests(system).samples()
        }
        assert "/projects/<int:project_id>" in labelled
        assert "/projects/1" not in labelled

    def test_request_log_records(self, sci, system):
        sci.get("/ping")
        record = system.obs.log.records("http.request")[-1]
        assert record["path"] == "/ping"
        assert record["status"] == 200
        assert record["duration"] >= 0
        spans = system.obs.tracer.finished("http.request")
        assert spans[-1].attributes["route"] == "/ping"


class TestAcceptanceScenario:
    """ISSUE acceptance: register sample → run experiment → search, then
    the exposition shows commit latency, fsync timings, a workflow
    transition histogram, and per-route request counters."""

    def drive(self, tmp_path):
        system = BFabric(tmp_path)  # real clock: nonzero durations
        admin = system.bootstrap(password="adminpw")
        system.directory.set_password(admin, admin.user_id, "adminpw")
        system.add_user(
            admin, login="sci", full_name="Scientist", password="sciencepw"
        )
        system.imports.register_provider(
            AffymetrixGeneChipProvider("GeneChip", runs=1)
        )
        client = PortalClient(PortalApplication(system))
        client.login("sci", "sciencepw")
        client.post("/projects", {"name": "P", "description": ""})
        client.post("/projects/1/samples", {"name": "s", "species": "",
                                            "description": ""})
        client.post("/samples/1/extracts", {"name": "scan01 a", "procedure": ""})
        client.post("/samples/1/extracts", {"name": "scan01 b", "procedure": ""})
        client.post(
            "/projects/1/import",
            {"provider": "GeneChip", "workunit_name": "chips", "mode": "copy",
             "file": ["scan01_a.cel", "scan01_b.cel"]},
        )
        workunit = system.db.query("workunit").one()
        client.post(f"/workunits/{workunit['id']}/assign",
                    {"extract_1": "1", "extract_2": "2"})
        client.post("/applications", {
            "name": "two group analysis",
            "connector": "rserve",
            "executable": "two_group_analysis",
            "description": "t-tests",
            "interface": (
                '{"inputs": ["resource"], "parameters": '
                '[{"name": "reference_group", "type": "text", "required": true}]}'
            ),
        })
        client.post("/projects/1/experiments", {
            "name": "light effect",
            "application_id": "1",
            "attributes": "{}",
            "resource": ["1", "2"],
        })
        client.post("/experiments/1/run", {
            "workunit_name": "results",
            "param_reference_group": "_a",
        })
        system.reindex_all()
        assert client.get("/search?q=analysis").status == 200
        return system, client

    def _value(self, text, prefix):
        lines = [line for line in text.splitlines()
                 if line.startswith(prefix) and "{" not in line[len(prefix):]]
        assert lines, f"no sample {prefix!r} in exposition"
        return float(lines[0].split()[-1])

    def test_exposition_after_scripted_session(self, tmp_path):
        system, client = self.drive(tmp_path)
        text = client.get("/admin/metrics.txt").text

        assert self._value(text, "bfabric_storage_commit_seconds_count") > 0
        assert self._value(text, "bfabric_storage_commit_seconds_sum") > 0
        assert self._value(text, "bfabric_storage_wal_fsync_seconds_count") > 0
        assert "# TYPE bfabric_workflow_transition_seconds histogram" in text
        transitions = [
            line for line in text.splitlines()
            if line.startswith("bfabric_workflow_transition_seconds_count{")
        ]
        assert transitions and any(
            float(line.split()[-1]) > 0 for line in transitions
        )
        assert 'bfabric_http_requests_total{route="/login"' in text
        assert (
            'bfabric_http_requests_total{route="/search"'
            ',method="GET",status="200"}' in text
        )
        assert self._value(text, "bfabric_search_queries_total") > 0
        system.close()

    def test_cli_metrics_shows_portal_session(self, tmp_path, capsys):
        system, _client = self.drive(tmp_path)
        system.close()  # persists the registry under <data>/obs/
        capsys.readouterr()

        assert main(["--data", str(tmp_path), "metrics"]) == 0
        out = capsys.readouterr().out
        assert self._value(out, "bfabric_storage_commit_seconds_count") > 0
        assert "bfabric_workflow_transition_seconds" in out
        assert 'bfabric_http_requests_total{route="/login"' in out

    def test_admin_metrics_page_renders(self, tmp_path):
        system, client = self.drive(tmp_path)
        client.get("/logout")
        client.login("admin", "adminpw")
        text = client.get("/admin/metrics").text
        assert "Latency (seconds)" in text
        assert "storage_commit_seconds" in text
        assert "Requests by route" in text
        system.close()
