"""End-to-end tracing: propagation across threads and processes, the
slow-op log, metrics history, and the flight-recorder bundle."""

import datetime as dt
import json
import threading

import pytest

from repro.cli import main
from repro.facade import BFabric
from repro.obs import (
    BUNDLE_SCHEMA,
    MetricsHistory,
    Observability,
    SlowOpLog,
    TraceContext,
    collect_debug_bundle,
    validate_debug_bundle,
    write_debug_bundle,
)
from repro.portal import PortalApplication
from repro.portal.testing import PortalClient
from repro.replication import Replica, ReplicationPublisher
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.util.clock import ManualClock


def make_schema():
    return TableSchema(
        "doc",
        [
            Column("id", ColumnType.INT, primary_key=True),
            Column("body", ColumnType.TEXT, nullable=False),
        ],
    )


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext(trace_id="s7", span_id="s9")
        assert ctx.to_header() == "s7:s9"
        parsed = TraceContext.from_header("s7:s9")
        assert parsed == ctx

    def test_bare_trace_id_header(self):
        parsed = TraceContext.from_header("req-1234")
        assert parsed is not None
        assert parsed.trace_id == "req-1234"
        assert parsed.span_id == ""

    @pytest.mark.parametrize(
        "header", ["", "has space", "a" * 65, "x:y:z", "<script>"]
    )
    def test_malformed_headers_rejected(self, header):
        assert TraceContext.from_header(header) is None

    def test_dict_round_trip_and_malformed(self):
        ctx = TraceContext(trace_id="s3", span_id="s4")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({"span_id": "s4"}) is None
        assert TraceContext.from_dict({"trace_id": "no spaces"}) is None

    def test_explicit_parent_joins_trace_across_threads(self):
        obs = Observability()
        with obs.tracer.span("leader") as leader:
            ctx = leader.context()

            def worker():
                with obs.tracer.span("follower", parent=ctx):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = obs.tracer.trace(ctx.trace_id)
        names = {span.name for span in spans}
        assert names == {"leader", "follower"}
        follower = next(s for s in spans if s.name == "follower")
        assert follower.parent_id == leader.span_id


class TestSlowOpLog:
    def test_promotes_only_over_budget(self):
        clock = ManualClock(dt.datetime(2010, 1, 15))
        obs = Observability(clock=clock)
        with obs.tracer.span("storage.query"):
            clock.advance(seconds=0.05)  # under the 0.1s budget
        assert obs.slowlog.entries() == []
        with obs.tracer.span("storage.query"):
            clock.advance(seconds=0.2)
        entries = obs.slowlog.entries()
        assert len(entries) == 1
        assert entries[0]["name"] == "storage.query"
        assert entries[0]["duration"] == pytest.approx(0.2)
        assert entries[0]["threshold"] == pytest.approx(0.1)

    def test_explain_evaluated_lazily_on_promotion_only(self):
        clock = ManualClock(dt.datetime(2010, 1, 15))
        obs = Observability(clock=clock)
        calls = []

        def explain():
            calls.append(1)
            return {"strategy": "scan"}

        with obs.tracer.span("storage.query") as span:
            span.explain = explain
            clock.advance(seconds=0.01)  # fast: never promoted
        assert calls == []
        with obs.tracer.span("storage.query") as span:
            span.explain = explain
            clock.advance(seconds=0.5)
        assert calls == [1]
        assert obs.slowlog.entries()[-1]["explain"] == {"strategy": "scan"}

    def test_explain_failure_is_captured_not_raised(self):
        log = SlowOpLog()

        def boom():
            raise RuntimeError("planner died")

        entry = log.record("storage.query", 9.0, explain=boom)
        assert "planner died" in entry["explain"]["error"]

    def test_ring_is_bounded_but_promoted_keeps_counting(self):
        log = SlowOpLog(capacity=4)
        for i in range(10):
            log.record("op", float(i))
        assert len(log.entries()) == 4
        assert log.promoted == 10

    def test_state_restore_round_trip(self):
        log = SlowOpLog()
        log.record("storage.commit", 1.5, {"txn": "t1"})
        restored = SlowOpLog()
        restored.restore(json.loads(json.dumps(log.state())))
        assert restored.entries()[0]["name"] == "storage.commit"
        assert restored.promoted == 1

    def test_threshold_knob(self):
        log = SlowOpLog()
        log.set_threshold("custom.op", 0.0)
        assert log.threshold_for("custom.op") == 0.0
        with pytest.raises(ValueError):
            log.set_threshold("custom.op", -1.0)


class TestMetricsHistory:
    def test_windowed_rate_from_two_samples(self):
        clock = ManualClock(dt.datetime(2010, 1, 15))
        obs = Observability(clock=clock)
        counter = obs.metrics.counter("jobs_total", "jobs")
        counter.inc(5)
        obs.history.capture()
        clock.advance(seconds=10.0)
        counter.inc(20)
        obs.history.capture()
        assert obs.history.rate("jobs_total") == pytest.approx(2.0)
        summary = obs.history.window_summary(window=60.0)
        assert summary["keys"]["jobs_total"]["rate"] == pytest.approx(2.0)
        assert summary["keys"]["jobs_total"]["last"] == 25.0

    def test_window_excludes_old_samples(self):
        clock = ManualClock(dt.datetime(2010, 1, 15))
        registry = Observability(clock=clock)
        gauge = registry.metrics.gauge("depth", "queue depth")
        history = MetricsHistory(registry.metrics, clock=clock)
        gauge.set(1)
        history.capture()
        clock.advance(seconds=100.0)
        gauge.set(3)
        history.capture()
        clock.advance(seconds=5.0)
        gauge.set(7)
        history.capture()
        recent = history.samples(window=20.0)
        assert [s["values"]["depth"] for s in recent] == [3.0, 7.0]
        summary = history.window_summary(window=20.0)
        assert summary["keys"]["depth"]["min"] == 3.0
        assert summary["keys"]["depth"]["max"] == 7.0

    def test_histogram_flattens_to_count_and_sum(self):
        clock = ManualClock(dt.datetime(2010, 1, 15))
        obs = Observability(clock=clock)
        histo = obs.metrics.histogram("op_seconds", "latency")
        histo.observe(0.5)
        histo.observe(1.5)
        sample = obs.history.capture()
        assert sample["values"]["op_seconds.count"] == 2.0
        assert sample["values"]["op_seconds.sum"] == pytest.approx(2.0)

    def test_state_restore_round_trip(self):
        clock = ManualClock(dt.datetime(2010, 1, 15))
        obs = Observability(clock=clock)
        obs.metrics.counter("c_total", "c").inc()
        obs.history.capture()
        fresh = Observability(clock=clock)
        fresh.history.restore(json.loads(json.dumps(obs.history.state())))
        assert len(fresh.history) == 1
        assert fresh.history.samples()[0]["values"]["c_total"] == 1.0


class TestSpanSampling:
    def test_ok_spans_sampled_errors_always_logged(self):
        obs = Observability(span_sample_rate=0.25)
        for _ in range(8):
            with obs.tracer.span("fast.op"):
                pass
        ok_records = [
            r for r in obs.log.records("span") if r["name"] == "fast.op"
        ]
        assert len(ok_records) == 2  # deterministic: every 4th
        with pytest.raises(ValueError):
            with obs.tracer.span("fast.op"):
                raise ValueError("boom")
        error_records = [
            r for r in obs.log.records("span") if r["status"] == "error"
        ]
        assert len(error_records) == 1
        # The tracer ring still holds every span regardless of sampling.
        assert len(obs.tracer.finished("fast.op")) == 9
        assert obs.statistics()["spans_sampled_out"] == 6

    def test_slow_spans_bypass_sampling(self):
        clock = ManualClock(dt.datetime(2010, 1, 15))
        obs = Observability(clock=clock, span_sample_rate=0.0)
        with obs.tracer.span("storage.query"):
            clock.advance(seconds=5.0)
        assert [r["name"] for r in obs.log.records("span")] == ["storage.query"]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Observability(span_sample_rate=1.5)
        obs = Observability()
        with pytest.raises(ValueError):
            obs.set_span_sampling(-0.1)


class TestGroupCommitTraceLinkage:
    def test_commit_spans_link_to_leader_fsync_across_threads(self, tmp_path):
        db = Database(tmp_path / "db", durability="group:5:8")
        db.create_table(make_schema())
        obs = db.obs
        barrier = threading.Barrier(4)

        def commit(i):
            # Request-scoped tracing: each committer runs inside its own
            # client span, like a portal request would.
            with obs.tracer.span("client", worker=i):
                barrier.wait(timeout=5.0)
                with db.transaction() as txn:
                    txn.insert("doc", {"id": i + 1, "body": f"row {i}"})

        threads = [
            threading.Thread(target=commit, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        db.close()

        commits = obs.tracer.finished("storage.commit")
        fsyncs = obs.tracer.finished("wal.group_fsync")
        assert len(commits) == 4
        assert fsyncs, "group commit produced no fsync span"
        fsync_ids = {(s.trace_id, s.span_id) for s in fsyncs}
        for span in commits:
            link = (
                span.attributes["fsync_trace_id"],
                span.attributes["fsync_span_id"],
            )
            assert link in fsync_ids
        # Each commit span lives in its own client's trace, and at least
        # one follower's commit was fsynced under another thread's trace
        # — the cross-thread hop the link attributes exist to record.
        for span in commits:
            client = next(
                s for s in obs.tracer.trace(span.trace_id)
                if s.name == "client"
            )
            assert client.trace_id == span.trace_id
        batched = [s for s in fsyncs if s.attributes["batch"] > 1]
        if batched:  # scheduling-dependent, but the common case
            linked = set()
            for s in batched:
                linked.update(s.attributes.get("linked_traces", ()))
            assert linked - {s.trace_id for s in batched}


class TestQuerySlowPath:
    def _db(self, tmp_path):
        db = Database(tmp_path / "db")
        db.create_table(make_schema())
        with db.transaction() as txn:
            for i in range(5):
                txn.insert("doc", {"id": i + 1, "body": f"row {i}"})
        return db

    def test_traced_query_span_carries_explain_to_slowlog(self, tmp_path):
        db = self._db(tmp_path)
        db.obs.slowlog.set_threshold("storage.query", 0.0)
        with db.obs.tracer.span("client"):
            rows = db.query("doc").where("id", ">", 2).all()
        assert len(rows) == 3
        span = db.obs.tracer.finished("storage.query")[-1]
        assert span.attributes["table"] == "doc"
        assert span.attributes["rows"] == 3
        entry = next(
            e for e in db.obs.slowlog.entries("storage.query")
        )
        assert entry["explain"]["table"] == "doc"
        assert entry["explain"]["strategy"]
        assert entry["trace_id"] == span.trace_id
        db.close()

    def test_untraced_slow_query_feeds_slowlog_directly(self, tmp_path):
        db = self._db(tmp_path)
        db.obs.slowlog.set_threshold("storage.query", 0.0)
        count = db.query("doc").where("body", "contains", "row").count()
        assert count == 5
        # No trace was active: no span, but the slow log saw the scan.
        assert db.obs.tracer.finished("storage.query") == []
        entry = db.obs.slowlog.entries("storage.query")[-1]
        assert entry["attributes"]["kind"] == "count"
        assert entry["explain"]["strategy"]
        assert entry["trace_id"] == ""
        db.close()

    def test_cache_hits_skip_instrumentation(self, tmp_path):
        db = self._db(tmp_path)
        db.obs.slowlog.set_threshold("storage.query", 0.0)
        query = db.query("doc").where("id", "=", 1)
        query.all()
        promoted = db.obs.slowlog.promoted
        query.all()  # served from the result cache: not an execution
        assert db.obs.slowlog.promoted == promoted
        db.close()


class TestDebugBundle:
    def test_collect_validate_write_round_trip(self, tmp_path):
        system = BFabric(tmp_path / "data")
        system.bootstrap(password="pw")
        client = PortalClient(PortalApplication(system))
        client.login("admin", "pw")
        client.get("/ping")
        system.obs.history.capture()
        system.obs.slowlog.record("storage.query", 2.0, {"table": "user"})

        bundle = collect_debug_bundle(system, note="unit test")
        assert validate_debug_bundle(bundle) == []
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["note"] == "unit test"
        assert bundle["traces"], "portal request left no trace"
        assert bundle["slow_ops"][-1]["name"] == "storage.query"
        assert bundle["metrics_history"]
        assert bundle["storage"]["history_id"]

        path = write_debug_bundle(bundle, tmp_path / "out")
        reloaded = json.loads(path.read_text(encoding="utf-8"))
        assert validate_debug_bundle(reloaded) == []
        # Same-second bundles get distinct names, not clobbered.
        second = write_debug_bundle(bundle, tmp_path / "out")
        assert second != path
        system.close()

    def test_validator_flags_broken_bundles(self):
        assert validate_debug_bundle("not a dict")
        assert validate_debug_bundle({}) != []
        bundle = collect_debug_bundle()
        assert validate_debug_bundle(bundle) == []
        bundle["traces"] = {"t1": [{"span": "x"}]}
        assert any("malformed" in p for p in validate_debug_bundle(bundle))


class TestPortalHeaderPropagation:
    @pytest.fixture
    def system(self, tmp_path):
        system = BFabric(tmp_path / "data")
        system.bootstrap(password="pw")
        yield system
        system.close()

    @pytest.fixture
    def client(self, system):
        client = PortalClient(PortalApplication(system))
        client.login("admin", "pw")
        return client

    def test_minted_request_id_matches_trace(self, system, client):
        response = client.get("/ping")
        header = dict(response.headers)["X-Request-Id"]
        ctx = TraceContext.from_header(header)
        assert ctx is not None
        spans = system.obs.tracer.trace(ctx.trace_id)
        assert any(span.name == "http.request" for span in spans)

    def test_upstream_request_id_joins_trace(self, system, client):
        response = client.get(
            "/ping", headers={"X-Request-Id": "upstream-77"}
        )
        header = dict(response.headers)["X-Request-Id"]
        assert header.startswith("upstream-77:")
        span = system.obs.tracer.finished("http.request")[-1]
        assert span.trace_id == "upstream-77"

    def test_malformed_request_id_mints_fresh_trace(self, system, client):
        client.get("/ping", headers={"X-Request-Id": "bad header!"})
        span = system.obs.tracer.finished("http.request")[-1]
        assert span.trace_id != "bad header!"
        assert span.trace_id  # a fresh internal id

    def test_admin_slowlog_page_renders(self, system, client):
        system.obs.slowlog.record(
            "storage.query", 3.0, {"table": "user"},
            explain={"strategy": "full_scan"},
        )
        text = client.get("/admin/slowlog").text
        assert "storage.query" in text
        assert "full_scan" in text
        assert "Budgets" in text

    def test_admin_metrics_history_page_renders(self, system, client):
        system.obs.history.capture()
        text = client.get("/admin/metrics/history?window=600").text
        assert "Windowed series" in text
        assert "samples in window" in text


class TestCrossProcessTrace:
    def test_portal_commit_traces_through_group_wal_to_replica(
        self, tmp_path
    ):
        """The PR's acceptance scenario: one portal POST produces one
        trace whose spans cover the HTTP request, the storage commit
        (linked across the group-commit leader), and the replica's
        apply — on two separate databases."""
        primary = BFabric(tmp_path / "primary", durability="group:2:32")
        primary.bootstrap(password="pw")
        publisher = ReplicationPublisher(
            primary.db, obs=primary.obs
        ).start()
        replica_system = BFabric(tmp_path / "replica")
        replica = Replica(
            replica_system,
            ("127.0.0.1", publisher.port),
            name="r1",
        ).start()
        try:
            # Let the replica finish bootstrapping before the traced
            # request: a commit inside the bootstrap snapshot would ship
            # no frame (and therefore no trace).
            replica.wait_for(
                primary.db.replication_start_point()[0], timeout=10.0
            )
            client = PortalClient(PortalApplication(primary))
            client.login("admin", "pw")
            response = client.post(
                "/projects",
                {"name": "traced", "description": ""},
                follow_redirects=False,
            )
            header = dict(response.headers)["X-Request-Id"]
            ctx = TraceContext.from_header(header)
            assert ctx is not None

            seq = primary.db.replication_start_point()[0]
            replica.wait_for(seq, timeout=10.0)

            spans = primary.obs.tracer.trace(ctx.trace_id)
            names = {span.name for span in spans}
            assert "http.request" in names
            assert "storage.commit" in names
            # One POST may commit more than once (entity + audit); every
            # commit's fsync ran under the group-commit leader, and the
            # link attributes point at a real finished fsync span.
            commits = [s for s in spans if s.name == "storage.commit"]
            fsyncs = {
                (s.trace_id, s.span_id)
                for s in primary.obs.tracer.finished("wal.group_fsync")
            }
            for commit in commits:
                assert (
                    commit.attributes["fsync_trace_id"],
                    commit.attributes["fsync_span_id"],
                ) in fsyncs

            applies = [
                span
                for span in replica_system.obs.tracer.finished(
                    "replication.apply"
                )
                if span.trace_id == ctx.trace_id
            ]
            assert applies, (
                "replica apply span did not join the primary's trace"
            )
            commit_ids = {commit.span_id for commit in commits}
            for apply_span in applies:
                assert apply_span.parent_id in commit_ids
        finally:
            replica.stop()
            replica_system.close()
            publisher.stop()
            primary.close()


class TestCliSurface:
    def _init(self, tmp_path):
        assert main(
            ["--data", str(tmp_path), "init", "--admin-password", "pw"]
        ) == 0

    def test_slowlog_command_reads_persisted_entries(self, tmp_path, capsys):
        self._init(tmp_path)
        system = BFabric(tmp_path)
        system.recover()
        system.obs.slowlog.record(
            "storage.query", 1.25, {"table": "doc"},
            explain={"strategy": "full_scan", "candidates": 9},
        )
        system.close()
        capsys.readouterr()
        assert main(["--data", str(tmp_path), "slowlog"]) == 0
        out = capsys.readouterr().out
        assert "storage.query" in out
        assert "1.250000s" in out
        assert "full_scan" in out
        assert main(
            ["--data", str(tmp_path), "slowlog", "--name", "no.such"]
        ) == 0
        assert "empty" in capsys.readouterr().out

    def test_debug_bundle_command_validates_and_writes(self, tmp_path, capsys):
        self._init(tmp_path)
        capsys.readouterr()
        assert main(
            ["--data", str(tmp_path), "debug-bundle", "--note", "smoke"]
        ) == 0
        out = capsys.readouterr().out
        assert "debug bundle written:" in out
        assert f"bundle validated against {BUNDLE_SCHEMA}" in out
        bundles = list((tmp_path / "debug").glob("debug-bundle-*.json"))
        assert len(bundles) == 1
        bundle = json.loads(bundles[0].read_text(encoding="utf-8"))
        assert validate_debug_bundle(bundle) == []
        assert bundle["note"] == "smoke"

    def test_stats_window_reports_rates(self, tmp_path, capsys):
        self._init(tmp_path)
        capsys.readouterr()
        assert main(["--data", str(tmp_path), "stats", "--window", "60"]) == 0
        out = capsys.readouterr().out
        assert "windowed rates" in out
