"""ORM: declarative models, registry, repositories, sessions."""

import datetime as dt

import pytest

from repro.errors import EntityNotFound, SchemaError, TransactionError, UniqueViolation
from repro.orm import (
    BoolField,
    DateTimeField,
    IntField,
    JsonField,
    Model,
    Registry,
    Session,
    TextField,
)
from repro.storage import Database


class Org(Model):
    __table__ = "org"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, unique=True)


class Person(Model):
    __table__ = "person"
    id = IntField(primary_key=True)
    name = TextField(nullable=False, index=True)
    org_id = IntField(foreign_key="org.id")
    active = BoolField(default=True)
    joined = DateTimeField()
    tags = JsonField(default=list)


@pytest.fixture
def registry(db: Database) -> Registry:
    reg = Registry(db)
    reg.register_all([Person, Org])  # wrong order on purpose: FK sorting
    return reg


class TestModelDeclaration:
    def test_fields_collected(self):
        assert set(Person.field_names()) == {
            "id",
            "name",
            "org_id",
            "active",
            "joined",
            "tags",
        }

    def test_default_table_name_snake_cases(self):
        class SampleExtract(Model):
            id = IntField(primary_key=True)

        assert SampleExtract.__table__ == "sample_extract"

    def test_schema_includes_fk_index(self):
        schema = Person.schema()
        assert ("org_id",) in schema.index_specs()

    def test_schema_includes_declared_index(self):
        schema = Person.schema()
        assert ("name",) in schema.index_specs()

    def test_primary_key_name(self):
        assert Person.primary_key_name() == "id"

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(SchemaError):
            Person(bogus=1)

    def test_defaults_applied_on_construction(self):
        person = Person(name="ada")
        assert person.active is True
        assert person.tags == []

    def test_repr_mentions_fields(self):
        person = Person(name="ada")
        assert "name='ada'" in repr(person)

    def test_equality_by_value(self):
        assert Person(name="a") == Person(name="a")
        assert Person(name="a") != Person(name="b")

    def test_fields_inherited(self):
        class Base(Model):
            id = IntField(primary_key=True)
            created = DateTimeField()

        class Child(Base):
            __table__ = "child_thing"
            name = TextField()

        assert set(Child.field_names()) == {"id", "created", "name"}


class TestRegistry:
    def test_register_all_orders_by_fk(self, registry):
        # Person references Org; registration must not have raised.
        assert registry.database.has_table("org")
        assert registry.database.has_table("person")

    def test_double_register_is_idempotent(self, registry):
        repo1 = registry.register(Org)
        repo2 = registry.register(Org)
        assert repo1 is repo2

    def test_conflicting_binding_rejected(self, registry):
        class Impostor(Model):
            __table__ = "org"
            id = IntField(primary_key=True)

        with pytest.raises(SchemaError):
            registry.register(Impostor)

    def test_unregistered_model_rejected(self, db):
        reg = Registry(db)
        with pytest.raises(SchemaError):
            reg.repository(Org)

    def test_model_for_table(self, registry):
        assert registry.model_for_table("person") is Person


class TestRepository:
    def test_create_returns_instance_with_pk(self, registry):
        orgs = registry.repository(Org)
        org = orgs.create(name="FGCZ")
        assert org.id == 1
        assert org.name == "FGCZ"

    def test_get(self, registry):
        orgs = registry.repository(Org)
        created = orgs.create(name="FGCZ")
        fetched = orgs.get(created.id)
        assert fetched.name == "FGCZ"

    def test_get_missing_raises_entity_not_found(self, registry):
        with pytest.raises(EntityNotFound):
            registry.repository(Org).get(404)

    def test_get_or_none(self, registry):
        assert registry.repository(Org).get_or_none(404) is None

    def test_find_by_equality(self, registry):
        orgs = registry.repository(Org)
        people = registry.repository(Person)
        org = orgs.create(name="FGCZ")
        people.create(name="ada", org_id=org.id)
        people.create(name="grace", org_id=org.id)
        assert len(people.find(org_id=org.id)) == 2

    def test_find_one(self, registry):
        people = registry.repository(Person)
        people.create(name="ada")
        assert people.find_one(name="ada").name == "ada"
        assert people.find_one(name="x") is None

    def test_typed_query(self, registry):
        people = registry.repository(Person)
        for name in ("c", "a", "b"):
            people.create(name=name)
        result = people.query().order_by("name").limit(2).all()
        assert [p.name for p in result] == ["a", "b"]
        assert all(isinstance(p, Person) for p in result)

    def test_update(self, registry):
        people = registry.repository(Person)
        person = people.create(name="ada")
        updated = people.update(person.id, name="ada lovelace")
        assert updated.name == "ada lovelace"

    def test_save_inserts_then_updates(self, registry):
        people = registry.repository(Person)
        person = Person(name="ada", joined=dt.datetime(2010, 1, 1))
        people.save(person)
        assert person.id is not None
        person.name = "ada l."
        people.save(person)
        assert people.get(person.id).name == "ada l."
        assert people.count() == 1

    def test_delete(self, registry):
        people = registry.repository(Person)
        person = people.create(name="ada")
        people.delete(person.id)
        assert people.count() == 0

    def test_delete_missing(self, registry):
        with pytest.raises(EntityNotFound):
            registry.repository(Person).delete(404)

    def test_iter(self, registry):
        people = registry.repository(Person)
        people.create(name="a")
        people.create(name="b")
        assert sorted(p.name for p in people.iter()) == ["a", "b"]

    def test_datetime_field_round_trips(self, registry):
        people = registry.repository(Person)
        moment = dt.datetime(2010, 1, 15, 9, 0)
        person = people.create(name="ada", joined=moment)
        assert people.get(person.id).joined == moment


class TestSession:
    def test_commit_persists_all(self, registry):
        with Session(registry) as session:
            org = session.add(Org(name="FGCZ"))
            session.add(Person(name="ada", org_id=org.id))
        assert registry.repository(Person).count() == 1

    def test_exception_rolls_back_all(self, registry):
        with pytest.raises(UniqueViolation):
            with Session(registry) as session:
                session.add(Org(name="FGCZ"))
                session.add(Person(name="ada"))
                session.add(Org(name="FGCZ"))  # duplicate -> rollback
        assert registry.repository(Org).count() == 0
        assert registry.repository(Person).count() == 0

    def test_identity_map(self, registry):
        org = registry.repository(Org).create(name="FGCZ")
        with Session(registry) as session:
            first = session.get(Org, org.id)
            second = session.get(Org, org.id)
            assert first is second

    def test_update_through_session(self, registry):
        org = registry.repository(Org).create(name="old")
        with Session(registry) as session:
            loaded = session.get(Org, org.id)
            session.update(loaded, name="new")
            assert loaded.name == "new"
        assert registry.repository(Org).get(org.id).name == "new"

    def test_flush_update_persists_dirty_fields(self, registry):
        org = registry.repository(Org).create(name="old")
        with Session(registry) as session:
            loaded = session.get(Org, org.id)
            loaded.name = "new"
            session.flush_update(loaded)
        assert registry.repository(Org).get(org.id).name == "new"

    def test_delete_through_session(self, registry):
        org = registry.repository(Org).create(name="FGCZ")
        with Session(registry) as session:
            session.delete(session.get(Org, org.id))
        assert registry.repository(Org).count() == 0

    def test_savepoint_in_session(self, registry):
        with Session(registry) as session:
            session.add(Org(name="keep"))
            session.savepoint("sp")
            session.add(Org(name="drop"))
            session.rollback_to("sp")
        assert registry.repository(Org).query().values("name") == ["keep"]

    def test_operations_outside_transaction_fail(self, registry):
        session = Session(registry)
        with pytest.raises(TransactionError):
            session.add(Org(name="x"))

    def test_double_begin_fails(self, registry):
        session = Session(registry).begin()
        with pytest.raises(TransactionError):
            session.begin()
        session.rollback()


class TestSessionSnapshots:
    """The MVCC read view every session pins at begin() (PR4)."""

    def test_session_pins_a_snapshot(self, registry):
        session = Session(registry)
        assert session.snapshot is None
        with session:
            assert session.snapshot is not None
            assert not session.snapshot.closed
        assert session.snapshot is None

    def test_readonly_session_repeatable_reads(self, registry):
        orgs = registry.repository(Org)
        org = orgs.create(name="old")
        with Session(registry, readonly=True) as view:
            first = view.get(Org, org.id).name
            # Another writer commits mid-session; the view must not move.
            orgs.update(org.id, name="new")
            fresh = Session(registry, readonly=True)
            with fresh:
                assert fresh.get(Org, org.id).name == "new"
            view._identity.clear()  # bypass the identity map on purpose
            assert view.get(Org, org.id).name == first == "old"

    def test_readonly_session_query_is_pinned(self, registry):
        orgs = registry.repository(Org)
        orgs.create(name="FGCZ")
        with Session(registry, readonly=True) as view:
            orgs.create(name="ETH")
            assert view.query(Org).count() == 1
            assert [o.name for o in view.query(Org).all()] == ["FGCZ"]
        assert registry.repository(Org).count() == 2

    def test_readonly_session_rejects_writes(self, registry):
        with Session(registry, readonly=True) as view:
            with pytest.raises(TransactionError):
                view.add(Org(name="x"))

    def test_readonly_session_ignores_other_writers_dirty_tables(self, registry):
        """A dirty table that belongs to ANOTHER open transaction must
        not pull a readonly session off its snapshot: the
        read-your-writes fallback only applies to the session's own
        transaction, never to someone else's in-flight writes."""
        orgs = registry.repository(Org)
        org = orgs.create(name="committed")
        db = registry.database
        with Session(registry, readonly=True) as view:
            txn = db.transaction()
            try:
                txn.insert("org", {"name": "uncommitted"})
                txn.update("org", org.id, {"name": "dirty"})
                assert db.table("org").dirty
                view._identity.clear()  # bypass the identity map on purpose
                assert view.get(Org, org.id).name == "committed"
                assert view.query(Org).count() == 1
                assert [o.name for o in view.query(Org).all()] == ["committed"]
            finally:
                txn.rollback()

    def test_write_session_reads_its_own_writes(self, registry):
        with Session(registry) as session:
            org = session.add(Org(name="FGCZ"))
            session._identity.clear()  # force a storage read
            assert session.get(Org, org.id).name == "FGCZ"
            assert session.query(Org).count() == 1

    def test_readonly_commit_and_rollback_just_release(self, registry):
        session = Session(registry, readonly=True).begin()
        session.commit()
        assert session.snapshot is None
        with pytest.raises(TransactionError):
            session.commit()
