"""The web portal, driven end-to-end through the in-process client."""

import datetime as dt

import pytest

from repro.dataimport import AffymetrixGeneChipProvider
from repro.facade import BFabric
from repro.portal import PortalApplication
from repro.portal.http import Request, Response
from repro.portal.routing import Router
from repro.portal.testing import PortalClient
from repro.util.clock import ManualClock


@pytest.fixture
def system(tmp_path):
    system = BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))
    admin = system.bootstrap(password="adminpw")
    system.directory.set_password(admin, admin.user_id, "adminpw")
    system.add_user(
        admin, login="sci", full_name="Scientist", password="sciencepw"
    )
    system.add_user(
        admin, login="exp", full_name="Expert", role="employee",
        password="expertpw",
    )
    system.imports.register_provider(AffymetrixGeneChipProvider("GeneChip", runs=1))
    return system


@pytest.fixture
def client(system):
    return PortalClient(PortalApplication(system))


@pytest.fixture
def sci(client):
    client.login("sci", "sciencepw")
    return client


class TestRouting:
    def test_placeholder_matching(self):
        router = Router()

        @router.get("/thing/<int:thing_id>/part/<str:name>")
        def handler(request: Request) -> Response:
            return Response(f"{request.params['thing_id']}:{request.params['name']}")

        request = Request(method="GET", path="/thing/42/part/widget")
        assert router.dispatch(request).text == "42:widget"

    def test_unmatched_path_404(self):
        router = Router()
        request = Request(method="GET", path="/nope")
        assert router.dispatch(request).status == 404

    def test_wrong_method_400(self):
        router = Router()

        @router.post("/only-post")
        def handler(request):
            return Response("ok")

        request = Request(method="GET", path="/only-post")
        assert router.dispatch(request).status == 400


class TestAuthFlow:
    def test_anonymous_redirected_to_login(self, client):
        response = client.get("/", follow_redirects=False)
        assert response.status == 303
        assert dict(response.headers)["Location"] == "/login"

    def test_ping_is_public(self, client):
        assert client.get("/ping").text == "pong"

    def test_bad_credentials(self, client):
        response = client.post(
            "/login", {"login": "sci", "password": "wrong"}
        )
        assert response.status == 403

    def test_login_logout_cycle(self, client):
        client.login("sci", "sciencepw")
        assert "Open tasks" in client.get("/").text
        client.get("/logout")
        response = client.get("/", follow_redirects=False)
        assert response.status == 303


class TestScreens:
    def test_home_shows_quick_search_and_tasks(self, sci):
        text = sci.get("/").text
        assert "quick search" in text
        assert "Open tasks" in text

    def test_project_lifecycle(self, sci):
        response = sci.post(
            "/projects", {"name": "Arabidopsis", "description": "light study"}
        )
        assert "Arabidopsis" in response.text
        assert "register sample" in response.text

    def test_sample_and_extract_registration(self, sci):
        sci.post("/projects", {"name": "P", "description": ""})
        response = sci.post(
            "/projects/1/samples",
            {"name": "wt light 1", "species": "A. thaliana", "description": ""},
        )
        assert "wt light 1" in response.text
        response = sci.post(
            "/samples/1/extracts", {"name": "wt light 1 rna", "procedure": "TRIzol"}
        )
        assert "wt light 1 rna" in response.text

    def test_sample_form_offers_vocabulary_dropdown(self, system, client):
        client.login("exp", "expertpw")
        expert = system.directory.principal_for(
            system.directory.user_by_login("exp")
        )
        attribute = system.annotations.define_attribute(expert, "Disease State")
        annotation, _ = system.annotations.create_annotation(
            expert, attribute.id, "Healthy"
        )
        system.annotations.release(expert, annotation.id)
        client.post("/projects", {"name": "P", "description": ""})
        form_html = client.get("/projects/1/samples/new").text
        assert "Disease State" in form_html
        assert "Healthy" in form_html
        assert f"new_attr_{attribute.id}" in form_html  # inline creation box

    def test_inline_annotation_creation_creates_pending(self, system, client):
        client.login("exp", "expertpw")
        expert = system.directory.principal_for(
            system.directory.user_by_login("exp")
        )
        attribute = system.annotations.define_attribute(expert, "Disease State")
        client.post("/projects", {"name": "P", "description": ""})
        client.post(
            "/projects/1/samples",
            {"name": "s1", "species": "", "description": "",
             f"new_attr_{attribute.id}": "Hopeless"},
        )
        pending = system.annotations.pending_review()
        assert [a.value for a in pending] == ["Hopeless"]

    def test_clone_sample_via_portal(self, sci):
        sci.post("/projects", {"name": "P", "description": ""})
        sci.post("/projects/1/samples", {"name": "orig", "species": "x",
                                         "description": ""})
        response = sci.post("/samples/1/clone", {"name": "copy"})
        assert "copy" in response.text

    def test_annotation_review_and_release(self, system, client):
        client.login("exp", "expertpw")
        expert = system.directory.principal_for(
            system.directory.user_by_login("exp")
        )
        attribute = system.annotations.define_attribute(expert, "Disease State")
        annotation, _ = system.annotations.create_annotation(
            expert, attribute.id, "Hopeless"
        )
        review = client.get("/annotations/review")
        assert "Hopeless" in review.text
        client.post(f"/annotations/{annotation.id}/release")
        assert "Hopeless" not in client.get("/annotations/review").text

    def test_merge_via_portal(self, system, client):
        client.login("exp", "expertpw")
        expert = system.directory.principal_for(
            system.directory.user_by_login("exp")
        )
        attribute = system.annotations.define_attribute(expert, "Disease State")
        keep, _ = system.annotations.create_annotation(
            expert, attribute.id, "Hopeless"
        )
        merge, _ = system.annotations.create_annotation(
            expert, attribute.id, "Hopeles"
        )
        review = client.get("/annotations/review")
        assert "Hopeles" in review.text  # recommendation visible
        client.post(f"/annotations/merge?keep={keep.id}&merge={merge.id}")
        resolved = system.annotations.resolve(merge.id)
        assert resolved.id == keep.id

    def test_import_wizard_and_assignment(self, sci, system):
        sci.post("/projects", {"name": "P", "description": ""})
        sci.post("/projects/1/samples", {"name": "s", "species": "",
                                         "description": ""})
        sci.post("/samples/1/extracts", {"name": "scan01 a", "procedure": ""})
        sci.post("/samples/1/extracts", {"name": "scan01 b", "procedure": ""})
        picker = sci.get("/projects/1/import?provider=GeneChip")
        assert "scan01_a.cel" in picker.text
        assign_screen = sci.post(
            "/projects/1/import",
            {"provider": "GeneChip", "workunit_name": "chips", "mode": "copy",
             "file": ["scan01_a.cel", "scan01_b.cel"]},
        )
        assert "Assign Extracts" in assign_screen.text
        assert "▶" in assign_screen.text  # workflow highlighting
        workunit = system.db.query("workunit").one()
        result = sci.post(f"/workunits/{workunit['id']}/assign", {
            "extract_1": "1", "extract_2": "2",
        })
        assert "available" in result.text

    def test_search_with_history_and_export(self, sci):
        sci.post("/projects", {"name": "Arabidopsis light", "description": ""})
        first = sci.get("/search?q=arabidopsis")
        assert "result(s)" in first.text
        second = sci.get("/search?q=light")
        assert "Search history" in second.text
        assert "arabidopsis" in second.text  # history entry
        export = sci.get("/search/export?q=arabidopsis")
        assert export.headers[0][1].startswith("text/csv")
        assert "entity_type" in export.text

    def test_saved_query_via_portal(self, sci):
        sci.post("/projects", {"name": "Arabidopsis", "description": ""})
        sci.get("/search?q=arabidopsis")
        response = sci.post("/search/save?q=arabidopsis", {"name": "plants"})
        assert "Saved queries" in response.text
        assert "plants" in response.text

    def test_browse_neighbors(self, sci):
        sci.post("/projects", {"name": "P", "description": ""})
        sci.post("/projects/1/samples", {"name": "s", "species": "",
                                         "description": ""})
        response = sci.get("/browse/sample/1")
        assert "project" in response.text

    def test_admin_requires_admin_role(self, sci):
        assert sci.get("/admin").status == 403

    def test_admin_dashboard_shows_deployment_table(self, client):
        client.login("admin", "adminpw")
        text = client.get("/admin").text
        assert "Final-Remark" in text
        assert "Workunits" in text

    def test_admin_audit_trail(self, client):
        client.login("admin", "adminpw")
        text = client.get("/admin/audit").text
        assert "bootstrap admin" in text or "audit" in text.lower()

    def test_validation_error_rendered(self, sci):
        response = sci.post("/projects", {"name": "  ", "description": ""})
        assert response.status == 400
        assert "Validation failed" in response.text

    def test_not_found_entity(self, sci):
        assert sci.get("/samples/999").status == 404


class TestExperimentScreens:
    def prepare(self, sci, system):
        sci.post("/projects", {"name": "P", "description": ""})
        sci.post("/projects/1/samples", {"name": "s", "species": "",
                                         "description": ""})
        sci.post("/samples/1/extracts", {"name": "scan01 a", "procedure": ""})
        sci.post("/samples/1/extracts", {"name": "scan01 b", "procedure": ""})
        sci.post(
            "/projects/1/import",
            {"provider": "GeneChip", "workunit_name": "chips", "mode": "copy",
             "file": ["scan01_a.cel", "scan01_b.cel"]},
        )
        workunit = system.db.query("workunit").one()
        sci.post(f"/workunits/{workunit['id']}/assign",
                 {"extract_1": "1", "extract_2": "2"})

    def test_register_application_and_run(self, sci, system):
        self.prepare(sci, system)
        response = sci.post("/applications", {
            "name": "two group analysis",
            "connector": "rserve",
            "executable": "two_group_analysis",
            "description": "t-tests",
            "interface": (
                '{"inputs": ["resource"], "parameters": '
                '[{"name": "reference_group", "type": "text", "required": true}]}'
            ),
        })
        assert "two group analysis" in response.text
        experiments = sci.get("/projects/1/experiments")
        assert "Create experiment definition" in experiments.text
        response = sci.post("/projects/1/experiments", {
            "name": "light effect",
            "application_id": "1",
            "attributes": '{"species": "Arabidopsis Thaliana"}',
            "resource": ["1", "2"],
        })
        assert "Run experiment" in response.text
        run = sci.post("/experiments/1/run", {
            "workunit_name": "results",
            "param_reference_group": "_a",
        })
        assert "available" in run.text
        assert "Two Group Analysis Report" in run.text
        # Figure 16: the zip download.
        workunits = system.db.query("workunit").order_by("id", descending=True).all()
        zip_response = sci.get(f"/workunits/{workunits[0]['id']}/results.zip")
        assert zip_response.body[:2] == b"PK"

    def test_bad_interface_json(self, sci):
        response = sci.post("/applications", {
            "name": "x", "connector": "rserve", "executable": "x",
            "description": "", "interface": "{not json",
        })
        assert response.status == 400


class TestAdminReports:
    def test_usage_reports_screen(self, system, client):
        client.login("admin", "adminpw")
        text = client.get("/admin/reports").text
        assert "Busiest projects" in text
        assert "Vocabulary health" in text

    def test_usage_reports_csv(self, system, client):
        client.login("admin", "adminpw")
        response = client.get("/admin/reports.csv")
        assert response.text.startswith("project_id,project")

    def test_run_page_shows_provenance(self, sci, system):
        sci.post("/projects", {"name": "P", "description": ""})
        sci.post("/projects/1/samples", {"name": "s", "species": "", "description": ""})
        sci.post("/samples/1/extracts", {"name": "scan01 a", "procedure": ""})
        sci.post("/samples/1/extracts", {"name": "scan01 b", "procedure": ""})
        sci.post("/projects/1/import",
                 {"provider": "GeneChip", "workunit_name": "chips", "mode": "copy",
                  "file": ["scan01_a.cel", "scan01_b.cel"]})
        workunit = system.db.query("workunit").one()
        sci.post(f"/workunits/{workunit['id']}/assign",
                 {"extract_1": "1", "extract_2": "2"})
        sci.post("/applications", {
            "name": "two group analysis", "connector": "rserve",
            "executable": "two_group_analysis", "description": "",
            "interface": ('{"inputs": ["resource"], "parameters": '
                          '[{"name": "reference_group", "type": "text", '
                          '"required": true}]}')})
        sci.post("/projects/1/experiments", {
            "name": "light effect", "application_id": "1",
            "attributes": "{}", "resource": ["1", "2"]})
        run = sci.post("/experiments/1/run", {
            "workunit_name": "results", "param_reference_group": "_a"})
        assert "Provenance" in run.text
        assert "biological sources" in run.text


class TestPortalEdgeCases:
    def test_search_bad_query_renders_400(self, sci):
        response = sci.get("/search?q=-onlynegation")
        assert response.status == 400

    def test_search_empty_query_shows_form(self, sci):
        response = sci.get("/search")
        assert response.status == 200
        assert "quick search" not in response.text  # that's the home box

    def test_export_without_query(self, sci):
        assert sci.get("/search/export").status == 400

    def test_task_detail_route(self, system, sci):
        expert = system.directory.principal_for(
            system.directory.user_by_login("exp")
        )
        task = system.tasks.create(
            "todo", "Do it",
            assignee_id=system.directory.user_by_login("sci").id,
        )
        response = sci.get(f"/tasks/{task.id}")
        assert "Do it" in response.text

    def test_annotation_detail_lists_objects(self, system, client):
        client.login("exp", "expertpw")
        expert = system.directory.principal_for(
            system.directory.user_by_login("exp")
        )
        attribute = system.annotations.define_attribute(expert, "Tissue")
        annotation, _ = system.annotations.create_annotation(
            expert, attribute.id, "leaf"
        )
        client.post("/projects", {"name": "P", "description": ""})
        client.post("/projects/1/samples", {"name": "s", "species": "",
                                            "description": ""})
        system.annotations.annotate(expert, annotation.id, "sample", 1)
        response = client.get(f"/annotations/{annotation.id}")
        assert "leaf" in response.text
        assert "sample" in response.text

    def test_browse_root_page(self, sci):
        assert "Pick an object" in sci.get("/browse").text

    def test_results_zip_for_pending_workunit_500(self, sci, system):
        sci.post("/projects", {"name": "P", "description": ""})
        principal = system.directory.principal_for(
            system.directory.user_by_login("sci")
        )
        workunit = system.workunits.create(principal, 1, "pending wu")
        response = sci.get(f"/workunits/{workunit.id}/results.zip")
        assert response.status == 500
        # The failure was recorded in the error registry for the admin.
        assert system.errors.open_errors()

    def test_merge_without_ids_400(self, system, client):
        client.login("exp", "expertpw")
        assert client.post("/annotations/merge").status == 400

    def test_workflow_admin_lists_active(self, system, client):
        client.login("admin", "adminpw")
        admin = system.directory.principal_for(
            system.directory.user_by_login("admin")
        )
        system.workflow.start(admin, "run_experiment")
        response = client.get("/admin/workflows")
        assert "run_experiment" in response.text

    def test_resolve_error_via_portal(self, system, client):
        client.login("admin", "adminpw")
        record = system.errors.report("test", "boom")
        response = client.post(f"/admin/errors/{record.id}/resolve")
        assert "boom" not in response.text
