"""Conditional GETs derived from MVCC table versions: exactness, the
learned covering sets, read-your-writes routing, and the snapshot
lifecycle under failing views."""

import datetime as dt
from types import SimpleNamespace

import pytest

from repro.facade import BFabric
from repro.portal import PortalApplication
from repro.portal.caching import (
    CachePolicy,
    RouteCoverage,
    compute_etag,
    parse_if_none_match,
)
from repro.portal.http import Request, Response
from repro.portal.testing import PortalClient
from repro.util.clock import ManualClock


@pytest.fixture
def system(tmp_path):
    system = BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))
    admin = system.bootstrap(password="adminpw")
    system.directory.set_password(admin, admin.user_id, "adminpw")
    system.add_user(
        admin, login="sci", full_name="Scientist", password="sciencepw"
    )
    return system


@pytest.fixture
def admin(system):
    return system.auth.login("admin", "adminpw").principal


@pytest.fixture
def app(system):
    return PortalApplication(system)


@pytest.fixture
def client(app):
    client = PortalClient(app)
    client.login("admin", "adminpw")
    return client


def _etag(response) -> str:
    return dict(response.headers).get("ETag", "")


class TestConditionalGet:
    def test_etag_then_exact_304(self, client):
        first = client.get("/projects")
        etag = _etag(first)
        assert etag.startswith('"') and etag.endswith('"')
        again = client.get("/projects", headers={"If-None-Match": etag})
        assert again.status == 304
        assert again.body == b""
        assert _etag(again) == etag

    def test_covering_commit_invalidates(self, client, system, admin):
        etag = _etag(client.get("/projects"))
        system.projects.create(admin, "fresh", description="d")
        response = client.get("/projects", headers={"If-None-Match": etag})
        assert response.status == 200  # never a false 304
        assert _etag(response) != etag
        assert b"fresh" in response.body

    def test_no_false_304_across_many_commits(self, client, system, admin):
        """Every covering commit must invalidate — exactness, not heuristics."""
        etag = _etag(client.get("/projects"))
        for index in range(5):
            system.projects.create(admin, f"p{index}")
            response = client.get("/projects", headers={"If-None-Match": etag})
            assert response.status == 200
            fresh = _etag(response)
            assert fresh != etag
            etag = fresh
            assert client.get(
                "/projects", headers={"If-None-Match": etag}
            ).status == 304

    def test_unrelated_commit_preserves_304(self, client, system, admin):
        """The vector is per-table: foreign commits don't churn validators."""
        etag = _etag(client.get("/projects"))
        system.add_user(
            admin, login="bob", full_name="Bob", password="bobpw"
        )  # commits to user/directory tables, not to project
        response = client.get("/projects", headers={"If-None-Match": etag})
        assert response.status == 304

    def test_etag_is_per_principal(self, app, client):
        other = PortalClient(app)
        other.login("sci", "sciencepw")
        admin_etag = _etag(client.get("/projects"))
        assert _etag(other.get("/projects")) != admin_etag
        # A foreign validator can never 304 someone else's page.
        assert other.get(
            "/projects", headers={"If-None-Match": admin_etag}
        ).status == 200

    def test_etag_covers_query_string(self, client):
        plain = _etag(client.get("/projects"))
        filtered = _etag(client.get("/projects?page=2"))
        assert plain and filtered and plain != filtered

    def test_uncacheable_routes_carry_no_etag(self, client):
        assert _etag(client.get("/search?q=test")) == ""
        assert _etag(client.get("/admin/metrics")) == ""

    def test_coverage_is_learned_per_route(self, client, system, admin):
        project = system.projects.create(admin, "covered")
        assert _etag(client.get("/projects"))
        assert _etag(client.get(f"/projects/{project.id}"))
        coverage = client.app.cache.coverage.snapshot()
        assert coverage["/projects"] == frozenset({"project"})
        # the detail page also renders the project's samples + workunits
        assert coverage["/projects/<int:project_id>"] >= frozenset(
            {"project", "sample", "workunit"}
        )

    def test_coverage_union_is_monotone(self):
        coverage = RouteCoverage()
        coverage.widen("/r", frozenset({"a"}))
        coverage.widen("/r", frozenset({"b"}))
        assert coverage.get("/r") == frozenset({"a", "b"})

    def test_if_none_match_parsing(self):
        tags = parse_if_none_match('W/"abc", "def" , *')
        assert tags == frozenset({'"abc"', '"def"', "*"})

    def test_etag_hashes_table_set_not_just_versions(self):
        narrow = compute_etag(
            {"project": 4}, user_id=1, path="/p", query={}, history_id="h"
        )
        wide = compute_etag(
            {"project": 4, "sample": 4}, user_id=1, path="/p", query={},
            history_id="h",
        )
        assert narrow != wide


class TestMidRenderCommits:
    def _context(self, system, path="/projects"):
        policy = CachePolicy(system.db)
        request = Request(method="GET", path=path)
        request.session = SimpleNamespace(
            principal=SimpleNamespace(user_id=42)
        )
        context = policy.begin(path, request)
        assert context is not None
        return policy, context

    def test_quiescent_render_is_certified(self, system):
        _, context = self._context(system)
        context.capture()
        context.sink.add("project")
        response = Response("body")
        context.finish(response)
        assert dict(response.headers).get("ETag")

    def test_mid_render_commit_suppresses_etag(self, system, admin):
        """A commit between capture and finish torpedoes the validator:
        the body may mix states, so no ETag is emitted for it."""
        policy, context = self._context(system)
        context.capture()
        context.sink.add("project")
        system.projects.create(admin, "raced")
        response = Response("body")
        context.finish(response)
        assert "ETag" not in dict(response.headers)
        # ...and the coverage map was not widened by the torn render.
        assert policy.coverage.get("/projects") is None


class TestApiSurface:
    def test_api_requires_auth_with_json_401(self, app):
        anonymous = PortalClient(app)
        response = anonymous.get("/api/projects")
        assert response.status == 401
        assert b"authentication required" in response.body

    def test_health_is_public_and_live(self, app, system):
        anonymous = PortalClient(app)
        response = anonymous.get("/api/health")
        assert response.status == 200
        assert b'"status": "ok"' in response.body
        assert _etag(response) == ""  # live serving state, never cached

    def test_api_detail_and_304(self, client, system, admin):
        project = system.projects.create(admin, "api-project")
        system.samples.register_sample(
            admin, project.id, "s1", species="E. coli"
        )
        response = client.get(f"/api/projects/{project.id}")
        assert response.status == 200
        assert b"api-project" in response.body and b"s1" in response.body
        etag = _etag(response)
        assert etag
        assert client.get(
            f"/api/projects/{project.id}", headers={"If-None-Match": etag}
        ).status == 304

    def test_api_create_project_json(self, client, system):
        response = client.request(
            "POST", "/api/projects",
            data=None,
            headers={"Content-Type": "application/json"},
            body=b'{"name": "from-json", "description": "d"}',
        )
        assert response.status == 200
        assert b"from-json" in response.body

    def test_api_errors_are_json(self, client):
        response = client.get("/api/projects/99999")
        assert response.status == 404
        assert response.body.startswith(b"{")


class _StubReplicas:
    """Records the min_seq each routed read asked for."""

    def __init__(self, db):
        self.db = db
        self.min_seqs = []

    def read_snapshot(self, min_seq=None):
        self.min_seqs.append(min_seq)
        return self.db.snapshot()


class TestReadYourWrites:
    def test_post_sets_seen_seq_and_gets_wait_for_it(self, system):
        app = PortalApplication(system, replicas=_StubReplicas(system.db))
        client = PortalClient(app)
        client.login("admin", "adminpw")
        client.post("/projects", {"name": "mine", "description": ""})
        seen = client.cookies.get("bfabric_seen_seq")
        assert seen is not None
        assert int(seen) == system.db.committed_seq
        client.get("/projects")
        assert app.replicas.min_seqs[-1] == system.db.committed_seq

    def test_garbage_cookie_is_ignored(self, system):
        app = PortalApplication(system, replicas=_StubReplicas(system.db))
        client = PortalClient(app)
        client.login("admin", "adminpw")
        client.cookies["bfabric_seen_seq"] = "not-a-seq"
        response = client.get("/projects")
        assert response.status == 200
        assert app.replicas.min_seqs[-1] is None


class TestSnapshotLifecycle:
    def test_failing_view_closes_snapshot_and_returns_500(
        self, app, client, system
    ):
        @app.router.get("/boom")
        def boom(request):
            raise RuntimeError("kaboom")

        response = client.get("/boom")
        assert response.status == 500
        assert system.db.open_snapshots() == 0

    def test_api_failing_view_is_json_500(self, app, client, system):
        @app.router.get("/api/boom")
        def boom(request):
            raise RuntimeError("kaboom")

        response = client.get("/api/boom")
        assert response.status == 500
        assert response.body.startswith(b"{")
        assert system.db.open_snapshots() == 0
