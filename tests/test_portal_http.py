"""HTTP plumbing: environ parsing, responses, cookies, render helpers."""

import io

from repro.portal.http import Request, Response
from repro.portal.render import (
    definition_list,
    dropdown,
    esc,
    form,
    link,
    page,
    table,
    text_input,
)


def environ(method="GET", path="/", query="", body=b"", cookie=""):
    return {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(body)),
        "wsgi.input": io.BytesIO(body),
        "HTTP_COOKIE": cookie,
    }


class TestRequestParsing:
    def test_query_string(self):
        request = Request.from_environ(environ(query="a=1&b=two%20words"))
        assert request.query == {"a": "1", "b": "two words"}

    def test_post_form(self):
        request = Request.from_environ(
            environ(method="POST", body=b"name=ada&age=36")
        )
        assert request.form == {"name": "ada", "age": "36"}

    def test_multi_valued_form_fields(self):
        request = Request.from_environ(
            environ(method="POST", body=b"file=a.cel&file=b.cel")
        )
        assert request.get_list("file") == ["a.cel", "b.cel"]
        assert request.get_list("missing") == []

    def test_cookies(self):
        request = Request.from_environ(environ(cookie="session=abc; theme=dark"))
        assert request.cookies == {"session": "abc", "theme": "dark"}

    def test_get_prefers_form_over_query(self):
        request = Request.from_environ(
            environ(method="POST", query="x=query", body=b"x=form")
        )
        assert request.get("x") == "form"

    def test_get_int(self):
        request = Request.from_environ(environ(query="n=42&bad=xyz&empty="))
        assert request.get_int("n") == 42
        assert request.get_int("bad") is None
        assert request.get_int("bad", 7) == 7
        assert request.get_int("empty", 3) == 3
        assert request.get_int("missing") is None

    def test_blank_keeps_blank_values(self):
        request = Request.from_environ(environ(method="POST", body=b"a=&b=1"))
        assert request.form["a"] == ""

    def test_malformed_content_length(self):
        env = environ(method="POST", body=b"a=1")
        env["CONTENT_LENGTH"] = "garbage"
        request = Request.from_environ(env)
        assert request.form == {}


class TestResponse:
    def test_status_lines(self):
        assert Response("ok").status_line == "200 OK"
        assert Response.redirect("/x").status_line == "303 See Other"
        assert Response.not_found().status == 404
        assert Response.forbidden().status == 403

    def test_redirect_location(self):
        response = Response.redirect("/target")
        assert dict(response.headers)["Location"] == "/target"

    def test_set_cookie(self):
        response = Response("ok")
        response.set_cookie("session", "abc")
        cookies = [v for k, v in response.headers if k == "Set-Cookie"]
        assert cookies == ["session=abc; Path=/; HttpOnly"]

    def test_cookie_with_max_age(self):
        response = Response("ok")
        response.set_cookie("session", "", max_age=0)
        assert "Max-Age=0" in response.headers[-1][1]

    def test_download_headers(self):
        response = Response.download(b"PK", "results.zip", "application/zip")
        headers = dict(response.headers)
        assert headers["Content-Type"] == "application/zip"
        assert 'filename="results.zip"' in headers["Content-Disposition"]

    def test_wsgi_protocol(self):
        response = Response("body")
        captured = {}

        def start_response(status, headers):
            captured["status"] = status

        chunks = list(response.wsgi(start_response))
        assert captured["status"] == "200 OK"
        assert b"".join(chunks) == b"body"


class TestRenderHelpers:
    def test_esc(self):
        assert esc('<b a="1">') == "&lt;b a=&quot;1&quot;&gt;"

    def test_page_includes_nav_when_logged_in(self):
        html = page("Title", "<p>body</p>", user="sci")
        assert "logged in as <b>sci</b>" in html
        assert "<h1>Title</h1>" in html

    def test_page_without_user_has_no_nav(self):
        html = page("Login", "x")
        assert "logged in" not in html

    def test_table(self):
        html = table(["a", "b"], [[1, 2], [3, 4]])
        assert html.count("<tr>") == 3
        assert "<th>a</th>" in html

    def test_link_escapes(self):
        assert link("/x?a=1&b=2", "<label>") == (
            '<a href="/x?a=1&amp;b=2">&lt;label&gt;</a>'
        )

    def test_text_input_value_escaped(self):
        assert 'value="&quot;quoted&quot;"' in text_input("f", value='"quoted"')

    def test_dropdown_selected_and_new(self):
        html = dropdown(
            "attr_1", [(1, "Healthy"), (2, "Hopeless")],
            selected=2, allow_new=True,
        )
        assert '<option value="2" selected>Hopeless</option>' in html
        assert 'name="new_attr_1"' in html

    def test_dropdown_includes_empty_choice(self):
        html = dropdown("x", [(1, "a")])
        assert '<option value="">—</option>' in html

    def test_form_wraps_and_submits(self):
        html = form("/save", "inner", submit="Go")
        assert 'action="/save"' in html
        assert ">Go</button>" in html

    def test_definition_list(self):
        html = definition_list([("key", "value")])
        assert "<dt><b>key</b></dt><dd>value</dd>" in html
