"""The threaded HTTP/1.1 serving tier: keep-alive, bounded parsing,
admission control, and graceful drain — driven over real sockets."""

import datetime as dt
import http.client
import socket
import threading
import time

import pytest

from repro.facade import BFabric
from repro.portal import PortalApplication
from repro.portal.server import PortalServer
from repro.util.clock import ManualClock


def _tiny_app(block=None, started=None):
    """A minimal WSGI app: `/slow` parks on *block*, everything else
    answers immediately."""

    def app(environ, start_response):
        if environ["PATH_INFO"] == "/slow":
            if started is not None:
                started.release()
            if block is not None:
                block.wait(timeout=10)
        start_response(
            "200 OK", [("Content-Type", "text/plain; charset=utf-8")]
        )
        return [b"ok:" + environ["PATH_INFO"].encode()]

    return app


def _get(port, path, headers=None, timeout=10):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("GET", path, headers=headers or {})
    response = conn.getresponse()
    payload = response.read()
    result = (response.status, dict(response.getheaders()), payload)
    conn.close()
    return result


def _raw(port, payload: bytes) -> bytes:
    sock = socket.create_connection(("127.0.0.1", port), timeout=5)
    sock.sendall(payload)
    sock.settimeout(5)
    chunks = []
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    except socket.timeout:
        pass
    sock.close()
    return b"".join(chunks)


class TestServerBasics:
    def test_get_and_keepalive_reuse(self):
        with PortalServer(_tiny_app(), "127.0.0.1", 0, workers=2) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=5
            )
            for index in range(3):
                conn.request("GET", f"/page-{index}")
                response = conn.getresponse()
                assert response.status == 200
                assert response.read() == b"ok:/page-%d" % index
                assert response.getheader("Connection") == "keep-alive"
            conn.close()

    def test_connection_close_honoured(self):
        with PortalServer(_tiny_app(), "127.0.0.1", 0, workers=2) as server:
            status, headers, _payload = _get(
                server.port, "/", headers={"Connection": "close"}
            )
            assert status == 200
            assert headers["Connection"] == "close"

    def test_pipelined_requests_all_answered(self):
        with PortalServer(_tiny_app(), "127.0.0.1", 0, workers=2) as server:
            blob = _raw(
                server.port,
                b"GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
                b"GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
            )
            assert blob.count(b"HTTP/1.1 200 OK") == 2
            assert b"ok:/a" in blob and b"ok:/b" in blob

    def test_idle_keepalive_timeout_closes(self):
        with PortalServer(
            _tiny_app(), "127.0.0.1", 0, workers=2, keep_alive=0.2
        ) as server:
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            )
            sock.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.settimeout(5)
            assert b"200 OK" in sock.recv(65536)
            # idle past the keep-alive window: the parker reaps it
            deadline = time.monotonic() + 5
            closed = False
            while time.monotonic() < deadline:
                try:
                    if sock.recv(1024) == b"":
                        closed = True
                        break
                except socket.timeout:
                    break
            sock.close()
            assert closed


class TestBoundedParsing:
    def test_overlong_request_line_431(self):
        with PortalServer(_tiny_app(), "127.0.0.1", 0, workers=1) as server:
            blob = _raw(
                server.port, b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n"
            )
            assert b"431" in blob.split(b"\r\n", 1)[0]

    def test_chunked_body_501(self):
        with PortalServer(_tiny_app(), "127.0.0.1", 0, workers=1) as server:
            blob = _raw(
                server.port,
                b"POST / HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n",
            )
            assert b"501" in blob.split(b"\r\n", 1)[0]

    def test_oversized_body_413(self):
        with PortalServer(_tiny_app(), "127.0.0.1", 0, workers=1) as server:
            blob = _raw(
                server.port,
                b"POST / HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 99999999\r\n\r\n",
            )
            assert b"413" in blob.split(b"\r\n", 1)[0]

    def test_malformed_request_line_400(self):
        with PortalServer(_tiny_app(), "127.0.0.1", 0, workers=1) as server:
            blob = _raw(server.port, b"NONSENSE\r\n\r\n")
            assert b"400" in blob.split(b"\r\n", 1)[0]


class TestAdmissionControl:
    def test_inflight_gate_sheds_503_with_retry_after(self):
        block = threading.Event()
        started = threading.Semaphore(0)
        server = PortalServer(
            _tiny_app(block, started), "127.0.0.1", 0,
            workers=4, max_inflight=2,
        ).start()
        try:
            results = []

            def slow():
                results.append(_get(server.port, "/slow"))

            holders = [threading.Thread(target=slow) for _ in range(2)]
            for thread in holders:
                thread.start()
            for _ in range(2):  # both /slow requests hold the gate
                assert started.acquire(timeout=5)
            status, headers, _body = _get(server.port, "/fast")
            assert status == 503
            assert headers.get("Retry-After") == "1"
            block.set()
            for thread in holders:
                thread.join(timeout=10)
            assert [r[0] for r in results] == [200, 200]
            # gate released: the same request now passes
            assert _get(server.port, "/fast")[0] == 200
        finally:
            server.shutdown()

    def test_per_route_limit_sheds_only_that_route(self):
        block = threading.Event()
        started = threading.Semaphore(0)
        server = PortalServer(
            _tiny_app(block, started), "127.0.0.1", 0,
            workers=4, max_inflight=8, route_limits={"/slow": 1},
        ).start()
        try:
            result = []
            holder = threading.Thread(
                target=lambda: result.append(_get(server.port, "/slow"))
            )
            holder.start()
            assert started.acquire(timeout=5)
            assert _get(server.port, "/slow")[0] == 503  # route saturated
            assert _get(server.port, "/fast")[0] == 200  # others unaffected
            block.set()
            holder.join(timeout=10)
            assert result[0][0] == 200
        finally:
            server.shutdown()

    def test_full_queue_sheds_raw_503(self):
        block = threading.Event()
        started = threading.Semaphore(0)
        server = PortalServer(
            _tiny_app(block, started), "127.0.0.1", 0,
            workers=1, queue_depth=1,
        ).start()
        try:
            holder_result = []
            holder = threading.Thread(
                target=lambda: holder_result.append(
                    _get(server.port, "/slow")
                )
            )
            holder.start()
            assert started.acquire(timeout=5)  # the only worker is busy
            # Saturate: several more requests than queue + workers.
            statuses = []
            for _ in range(6):
                try:
                    statuses.append(_get(server.port, "/fast", timeout=3)[0])
                except (OSError, http.client.HTTPException):
                    statuses.append(None)
            assert 503 in statuses
            block.set()
            holder.join(timeout=10)
            assert holder_result[0][0] == 200
        finally:
            server.shutdown()


class TestGracefulDrain:
    def test_inflight_request_finishes_before_shutdown(self):
        block = threading.Event()
        started = threading.Semaphore(0)
        server = PortalServer(
            _tiny_app(block, started), "127.0.0.1", 0, workers=2
        ).start()
        result = []
        worker = threading.Thread(
            target=lambda: result.append(_get(server.port, "/slow"))
        )
        worker.start()
        assert started.acquire(timeout=5)
        releaser = threading.Timer(0.3, block.set)
        releaser.start()
        server.shutdown()  # must wait for the in-flight response
        worker.join(timeout=10)
        assert result and result[0][0] == 200
        with pytest.raises(OSError):
            socket.create_connection(
                ("127.0.0.1", server.port), timeout=1
            ).close()


class TestPortalIntegration:
    @pytest.fixture
    def system(self, tmp_path):
        system = BFabric(
            tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0))
        )
        admin = system.bootstrap(password="adminpw")
        system.directory.set_password(admin, admin.user_id, "adminpw")
        yield system
        system.close()

    def test_login_browse_and_wire_304(self, system):
        server = PortalServer(
            PortalApplication(system), "127.0.0.1", 0, workers=4
        ).start()
        try:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=5
            )
            conn.request(
                "POST", "/login", body="login=admin&password=adminpw",
                headers={
                    "Content-Type": "application/x-www-form-urlencoded"
                },
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 303
            cookie = response.getheader("Set-Cookie").split(";")[0]
            conn.request("GET", "/projects", headers={"Cookie": cookie})
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200 and b"Projects" in body
            etag = response.getheader("ETag")
            assert etag
            conn.request(
                "GET", "/projects",
                headers={"Cookie": cookie, "If-None-Match": etag},
            )
            response = conn.getresponse()
            assert response.status == 304
            assert response.read() == b""
            # keep-alive reuse was recorded by the server metrics
            reuse = system.obs.metrics.get(
                "http_server_keepalive_reuse_total"
            )
            assert reuse is not None
            conn.request("GET", "/api/health")
            response = conn.getresponse()
            assert response.status == 200
            assert b'"status": "ok"' in response.read()
            conn.close()
        finally:
            server.shutdown()
        assert system.db.open_snapshots() == 0
