"""Provenance tracing and facility usage reports."""

import datetime as dt

import pytest

from repro.dataimport import AffymetrixGeneChipProvider
from repro.errors import AccessDenied, EntityNotFound
from repro.facade import BFabric
from repro.util.clock import ManualClock


@pytest.fixture
def world(tmp_path):
    system = BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15)))
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Sci")
    expert = system.add_user(admin, login="exp", full_name="Exp", role="employee")
    project = system.projects.create(scientist, "Arabidopsis light response")
    sample = system.samples.register_sample(
        scientist, project.id, "col0", species="Arabidopsis Thaliana"
    )
    system.samples.batch_register_extracts(
        scientist, sample.id, ["scan01 a", "scan01 b"]
    )
    attribute = system.annotations.define_attribute(expert, "Disease State")
    annotation, _ = system.annotations.create_annotation(
        scientist, attribute.id, "Hopeless"
    )
    system.annotations.annotate(scientist, annotation.id, "sample", sample.id)
    system.imports.register_provider(AffymetrixGeneChipProvider("gc", runs=1))
    workunit, resources, _ = system.imports.import_files(
        scientist, project.id, "gc", ["scan01_a.cel", "scan01_b.cel"],
        workunit_name="chips",
    )
    system.imports.apply_assignments(scientist, workunit.id)
    app = system.applications.register_application(
        scientist, name="two group analysis", connector="rserve",
        executable="two_group_analysis",
        interface={"inputs": ["resource"], "parameters": [
            {"name": "reference_group", "type": "text", "required": True},
        ]},
    )
    experiment = system.experiments.define(
        scientist, project.id, "light effect", application_id=app.id,
        resource_ids=[r.id for r in resources],
    )
    result = system.experiments.run(
        scientist, experiment.id, workunit_name="results",
        parameters={"reference_group": "_a"},
    )
    return system, admin, scientist, project, sample, result


class TestProvenance:
    def test_full_record(self, world):
        system, admin, scientist, project, sample, result = world
        record = system.provenance.trace(result.id)
        assert record.workunit["id"] == result.id
        assert record.project["name"] == "Arabidopsis light response"
        assert record.application["name"] == "two group analysis"
        assert record.parameters == {"reference_group": "_a"}
        assert len(record.inputs) == 2
        assert {r["name"] for r in record.outputs} == {
            "two_group_result.csv", "report.txt",
        }
        assert [s["name"] for s in record.samples] == ["col0"]
        assert [e["name"] for e in record.extracts] == ["scan01 a", "scan01 b"]
        assert [a["value"] for a in record.annotations] == ["Hopeless"]

    def test_render_text(self, world):
        system, *_, result = world
        text = system.provenance.trace(result.id).render_text()
        assert "two group analysis" in text
        assert "reference_group" in text
        assert "col0" in text
        assert "Hopeless" in text

    def test_upstream_chain(self, world):
        """A re-analysis over a previous result's outputs links upstream."""
        system, admin, scientist, project, sample, result = world
        outputs = system.workunits.resources_of(scientist, result.id, inputs=False)
        experiment = system.experiments.define(
            scientist, project.id, "re-analysis",
            application_id=system.applications.by_name("two group analysis").id,
            resource_ids=[r.id for r in outputs],
        )
        second = system.experiments.run(
            scientist, experiment.id, workunit_name="round two",
            parameters={"reference_group": "report"},
        )
        record = system.provenance.trace(second.id)
        assert record.upstream_workunits == [result.id]
        chain = system.provenance.trace_chain(second.id)
        ids = [r.workunit["id"] for r in chain]
        # second -> first results -> (transitively) the original import
        # workunit, whose stored files were the first experiment's inputs.
        import_id = system.db.query("workunit").where("name", "=", "chips").one()["id"]
        assert ids == [second.id, result.id, import_id]

    def test_import_workunit_has_no_application(self, world):
        system, admin, scientist, project, sample, result = world
        import_workunit = system.db.query("workunit").where(
            "name", "=", "chips"
        ).one()
        record = system.provenance.trace(import_workunit["id"])
        assert record.application is None
        # Import resources are outputs (nothing was marked input).
        assert len(record.outputs) == 2

    def test_unknown_workunit(self, world):
        system, *_ = world
        with pytest.raises(EntityNotFound):
            system.provenance.trace(9999)

    def test_as_dict_round_trip(self, world):
        system, *_, result = world
        record = system.provenance.trace(result.id).as_dict()
        assert set(record) >= {
            "workunit", "application", "inputs", "outputs", "samples",
        }


class TestUsageReports:
    def test_objects_per_project(self, world):
        system, admin, *_ = world
        rows = system.reports.objects_per_project(admin)
        assert rows[0]["project"] == "Arabidopsis light response"
        assert rows[0]["workunits"] == 2
        assert rows[0]["samples"] == 1

    def test_storage_by_mode(self, world):
        system, admin, *_ = world
        report = system.reports.storage_by_mode(admin)
        assert "internal" in report
        assert report["internal"]["resources"] > 0
        assert report["internal"]["bytes"] > 0
        assert "linked" in report  # re-linked experiment inputs

    def test_activity_by_user(self, world):
        system, admin, *_ = world
        rows = system.reports.activity_by_user(admin)
        users = {row["user"] for row in rows}
        assert "sci" in users

    def test_application_popularity(self, world):
        system, admin, *_ = world
        rows = system.reports.application_popularity(admin)
        assert rows[0]["application"] == "two group analysis"
        assert rows[0]["runs"] == 1

    def test_vocabulary_health(self, world):
        system, admin, *_ = world
        health = system.reports.vocabulary_health(admin)
        assert health.get("pending") == 1

    def test_full_report_shape(self, world):
        system, admin, *_ = world
        report = system.reports.full_report(admin)
        assert set(report) == {
            "projects", "storage", "users", "applications", "vocabulary",
        }

    def test_csv_export(self, world):
        system, admin, *_ = world
        text = system.reports.export_csv(admin)
        lines = text.strip().splitlines()
        assert lines[0] == "project_id,project,workunits,samples"
        assert len(lines) == 2

    def test_scientists_denied(self, world):
        system, admin, scientist, *_ = world
        with pytest.raises(AccessDenied):
            system.reports.full_report(scientist)
