"""The durable job queue: leases, redelivery, idempotency, backpressure.

These tests drive :class:`~repro.tasks.queue.JobQueue` directly on a
:class:`ManualClock`, so every lease expiry and backoff wake-up is a
deterministic ``clock.advance`` instead of a sleep.
"""

import pytest

from repro.errors import LeaseLost, QueueSaturated, StateError
from repro.orm import Registry
from repro.resilience.policies import RetryPolicy
from repro.storage import Database
from repro.tasks.queue import JOB_STATES, JobQueue


@pytest.fixture
def queue(clock) -> JobQueue:
    return JobQueue(Registry(Database()), clock=clock)


class TestEnqueueClaimAck:
    def test_happy_path(self, queue):
        job = queue.enqueue("import", {"file": "a.raw"})
        assert job.state == "pending"

        (claimed,) = queue.claim("w1", lease_seconds=30.0)
        assert claimed.id == job.id
        assert claimed.state == "leased"
        assert claimed.attempts == 1

        done = queue.ack(job.id, "w1", {"resources": 1})
        assert done.state == "done"
        assert done.result == {"resources": 1}
        (attempt,) = queue.attempts_of(job.id)
        assert attempt.outcome == "done"
        assert attempt.worker == "w1"

    def test_priority_then_fifo_within_band(self, queue):
        low = queue.enqueue("t", priority=0)
        first_high = queue.enqueue("t", priority=5)
        second_high = queue.enqueue("t", priority=5)

        claimed = queue.claim("w1", limit=3)
        assert [j.id for j in claimed] == [first_high.id, second_high.id, low.id]

    def test_delayed_job_is_not_claimable_early(self, queue, clock):
        job = queue.enqueue("t", delay_seconds=60.0)
        assert queue.claim("w1") == []
        clock.advance(seconds=61)
        (claimed,) = queue.claim("w1")
        assert claimed.id == job.id

    def test_claim_filters_job_types(self, queue):
        queue.enqueue("import")
        run = queue.enqueue("run")
        (claimed,) = queue.claim("w1", limit=5, job_types={"run"})
        assert claimed.id == run.id

    def test_ack_by_non_owner_is_rejected(self, queue):
        job = queue.enqueue("t")
        queue.claim("w1")
        with pytest.raises(LeaseLost):
            queue.ack(job.id, "impostor")


class TestVisibilityTimeout:
    def test_expired_lease_redelivers_to_another_worker(self, queue, clock):
        job = queue.enqueue("t")
        queue.claim("w1", lease_seconds=30.0)

        clock.advance(seconds=31)
        (redelivered,) = queue.claim("w2", lease_seconds=30.0)
        assert redelivered.id == job.id
        assert redelivered.leased_by == "w2"
        assert redelivered.attempts == 2
        assert queue.status()["lease_expirations"] == 1

        outcomes = [a.outcome for a in queue.attempts_of(job.id)]
        assert outcomes == ["lease_expired", "running"]

    def test_loser_cannot_ack_after_redelivery(self, queue, clock):
        job = queue.enqueue("t")
        queue.claim("w1", lease_seconds=30.0)
        clock.advance(seconds=31)
        queue.claim("w2", lease_seconds=30.0)

        with pytest.raises(LeaseLost):
            queue.ack(job.id, "w1")
        # The winner's ack is unaffected.
        assert queue.ack(job.id, "w2").state == "done"

    def test_heartbeat_keeps_long_job_owned(self, queue, clock):
        job = queue.enqueue("t")
        queue.claim("w1", lease_seconds=30.0)

        clock.advance(seconds=20)
        queue.heartbeat(job.id, "w1", extend_seconds=30.0)
        clock.advance(seconds=20)  # 40s in: past the original lease

        assert queue.claim("w2") == []
        assert queue.ack(job.id, "w1").state == "done"
        assert queue.status()["lease_expirations"] == 0

    def test_explicit_expiry_sweep(self, queue, clock):
        queue.enqueue("t")
        queue.enqueue("t")
        queue.claim("w1", limit=2, lease_seconds=10.0)
        assert queue.expire_leases() == 0
        clock.advance(seconds=11)
        assert queue.expire_leases() == 2
        assert {j.state for j in queue.list()} == {"pending"}


class TestIdempotency:
    def test_duplicate_enqueue_returns_existing_job(self, queue):
        first = queue.enqueue("import", {"n": 1}, idempotency_key="import:k1")
        second = queue.enqueue("import", {"n": 2}, idempotency_key="import:k1")
        assert second.id == first.id
        assert second.payload == {"n": 1}
        assert queue.status()["duplicates_suppressed"] == 1
        assert len(queue.list()) == 1

    def test_suppression_holds_while_leased_or_done(self, queue):
        job = queue.enqueue("t", idempotency_key="k")
        queue.claim("w1")
        assert queue.enqueue("t", idempotency_key="k").id == job.id
        queue.ack(job.id, "w1")
        assert queue.enqueue("t", idempotency_key="k").id == job.id

    def test_dead_job_does_not_block_a_fresh_enqueue(self, queue):
        job = queue.enqueue("t", idempotency_key="k", max_attempts=1)
        queue.claim("w1")
        queue.nack(job.id, "w1", "boom", retryable=False)
        fresh = queue.enqueue("t", idempotency_key="k")
        assert fresh.id != job.id
        assert fresh.state == "pending"


class TestRetryAndDead:
    def test_nack_parks_in_retry_wait_until_backoff(self, queue, clock):
        job = queue.enqueue("t")
        queue.claim("w1")
        parked = queue.nack(job.id, "w1", "flaky")
        assert parked.state == "retry_wait"
        assert parked.error == "flaky"
        assert queue.claim("w2") == []  # backoff not elapsed

        clock.advance(seconds=60)  # > max_delay, always past the wake time
        (redelivered,) = queue.claim("w2")
        assert redelivered.id == job.id
        assert redelivered.attempts == 2

    def test_exhausted_attempts_go_dead(self, queue, clock):
        job = queue.enqueue("t", max_attempts=2)
        for attempt in range(2):
            clock.advance(seconds=60)
            (claimed,) = queue.claim("w1")
            assert claimed.attempts == attempt + 1
            queue.nack(job.id, "w1", "still broken")
        assert queue.get(job.id).state == "dead"
        assert queue.claim("w1") == []

    def test_non_retryable_goes_straight_to_dead(self, queue):
        job = queue.enqueue("t", max_attempts=5)
        queue.claim("w1")
        assert queue.nack(job.id, "w1", "bad request", retryable=False).state == "dead"

    def test_backoff_is_deterministic_per_attempt(self, clock):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, max_delay=60.0,
            multiplier=2.0, jitter=0.1, seed=7,
        )
        first = JobQueue(Registry(Database()), clock=clock, retry=policy)
        second = JobQueue(Registry(Database()), clock=clock, retry=policy)
        for queue in (first, second):
            job = queue.enqueue("t")
            queue.claim("w1")
            queue.nack(job.id, "w1", "boom")
        assert (
            first.get(1).available_at == second.get(1).available_at
        )

    def test_retry_dead_revives_from_durable_payload(self, queue):
        job = queue.enqueue("t", {"file": "a.raw"}, max_attempts=1)
        queue.claim("w1")
        queue.nack(job.id, "w1", "boom")

        revived = queue.retry_dead(job.id)
        assert revived.state == "pending"
        assert revived.attempts == 0
        assert revived.error == ""
        assert revived.payload == {"file": "a.raw"}

    def test_retry_dead_rejects_live_jobs(self, queue):
        job = queue.enqueue("t")
        with pytest.raises(StateError):
            queue.retry_dead(job.id)

    def test_retry_all_dead(self, queue):
        for _ in range(3):
            job = queue.enqueue("t", max_attempts=1)
            queue.claim("w1")
            queue.nack(job.id, "w1", "boom")
        assert queue.retry_all_dead() == 3
        assert queue.status()["states"]["dead"] == 0


class TestBackpressure:
    def test_enqueue_sheds_at_max_depth(self, clock):
        queue = JobQueue(Registry(Database()), clock=clock, max_depth=2)
        queue.enqueue("t")
        queue.enqueue("t")
        with pytest.raises(QueueSaturated):
            queue.enqueue("t")
        assert queue.status()["shed"] == 1

    def test_completed_jobs_free_capacity(self, clock):
        queue = JobQueue(Registry(Database()), clock=clock, max_depth=1)
        job = queue.enqueue("t")
        queue.claim("w1")
        queue.ack(job.id, "w1")
        assert queue.enqueue("t").state == "pending"


class TestStatusAndWait:
    def test_status_counts_every_state(self, queue):
        done = queue.enqueue("a")
        queue.claim("w1")
        queue.ack(done.id, "w1")
        queue.enqueue("a")  # claimed next (FIFO) → leased
        queue.enqueue("b")  # stays pending
        queue.claim("w1")

        status = queue.status()
        assert set(status["states"]) == set(JOB_STATES)
        assert status["depth"] == 2
        assert status["states"] == {
            "pending": 1, "leased": 1, "done": 1, "retry_wait": 0, "dead": 0,
        }
        assert status["per_type"]["a"]["done"] == 1
        assert status["per_type"]["a"]["leased"] == 1
        assert status["per_type"]["b"]["pending"] == 1
        assert status["handlers"] == []

    def test_wait_returns_terminal_job(self, queue):
        job = queue.enqueue("t")
        queue.claim("w1")
        queue.ack(job.id, "w1")
        assert queue.wait(job.id).state == "done"

    def test_wait_timeout_returns_job_as_is(self, queue):
        job = queue.enqueue("t")
        waited = queue.wait(job.id, timeout=0)
        assert waited.state == "pending"
