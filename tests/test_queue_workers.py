"""Worker pools draining the durable queue: crash kills, heartbeats, drain.

These run real threads on the real clock, so timings are kept short
(sub-second leases) and every wait is bounded by ``queue.wait``.
"""

import threading
import time

import pytest

from repro.errors import CrashPoint, ValidationError
from repro.orm import Registry
from repro.resilience.faults import Fault, FaultPlan, install
from repro.resilience.policies import RetryPolicy
from repro.storage import Database
from repro.tasks.queue import JobQueue
from repro.tasks.workers import WorkerPool

#: Fast backoff so retry tests finish in milliseconds, jitter-free.
FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.02, max_delay=0.1,
    multiplier=2.0, jitter=0.0, seed=1,
)


@pytest.fixture
def queue() -> JobQueue:
    return JobQueue(Registry(Database()), retry=FAST_RETRY)


@pytest.fixture
def stop_pools():
    """Ensure every pool a test starts is stopped, pass or fail."""
    pools: list[WorkerPool] = []
    yield pools.append
    for pool in pools:
        pool.stop(drain=False, timeout=5.0)


class TestPoolBasics:
    def test_jobs_run_to_done(self, queue, stop_pools):
        seen: list[int] = []
        lock = threading.Lock()

        def handler(job):
            with lock:
                seen.append(job.payload["n"])
            return {"n": job.payload["n"]}

        queue.register_handler("t", handler)
        jobs = [queue.enqueue("t", {"n": n}) for n in range(5)]
        pool = WorkerPool(queue, workers=2, lease_seconds=5.0).start()
        stop_pools(pool)

        for job in jobs:
            assert queue.wait(job.id, timeout=10.0).state == "done"
        assert sorted(seen) == [0, 1, 2, 3, 4]
        assert queue.wait(jobs[3].id).result == {"n": 3}
        assert pool.jobs_run == 5

    def test_unknown_job_type_goes_dead(self, queue, stop_pools):
        queue.register_handler("known", lambda job: None)
        job = queue.enqueue("mystery")
        stop_pools(WorkerPool(queue, workers=1, lease_seconds=5.0).start())

        finished = queue.wait(job.id, timeout=10.0)
        assert finished.state == "dead"
        assert "no handler registered" in finished.error

    def test_start_twice_is_rejected(self, queue, stop_pools):
        pool = WorkerPool(queue, workers=1).start()
        stop_pools(pool)
        with pytest.raises(RuntimeError):
            pool.start()


class TestFailureHandling:
    def test_retryable_failure_retries_then_succeeds(self, queue, stop_pools):
        attempts = []

        def flaky(job):
            attempts.append(job.attempts)
            if len(attempts) == 1:
                raise OSError("transient")
            return {}

        queue.register_handler("t", flaky)
        job = queue.enqueue("t")
        stop_pools(WorkerPool(queue, workers=1, lease_seconds=5.0).start())

        assert queue.wait(job.id, timeout=10.0).state == "done"
        assert attempts == [1, 2]
        outcomes = [a.outcome for a in queue.attempts_of(job.id)]
        assert outcomes == ["retry_wait", "done"]

    def test_non_retryable_failure_goes_straight_dead(self, queue, stop_pools):
        def reject(job):
            raise ValidationError("bad request")

        queue.register_handler("t", reject)
        job = queue.enqueue("t")
        stop_pools(WorkerPool(queue, workers=1, lease_seconds=5.0).start())

        finished = queue.wait(job.id, timeout=10.0)
        assert finished.state == "dead"
        assert finished.attempts == 1  # no retry churn for a bad request


class TestCrashSafety:
    def test_killed_worker_job_redelivers_after_lease_expiry(
        self, queue, stop_pools
    ):
        runs: list[str] = []
        lock = threading.Lock()

        def handler(job):
            with lock:
                runs.append(job.leased_by)
            return {}

        queue.register_handler("t", handler)
        job = queue.enqueue("t")

        # First delivery dies mid-run with no nack — a simulated kill -9.
        install(FaultPlan(
            [Fault("worker.run", kind="error", at_call=1, error=CrashPoint)],
            seed=1,
        ))
        try:
            pool = WorkerPool(queue, workers=2, lease_seconds=0.3).start()
            stop_pools(pool)
            finished = queue.wait(job.id, timeout=10.0)
        finally:
            install(None)

        assert finished.state == "done"
        assert finished.attempts == 2  # kill, then redelivery
        assert pool.killed_workers == 1
        assert queue.status()["lease_expirations"] == 1
        assert len(runs) == 1  # the first delivery never reached the handler

    def test_heartbeat_keeps_long_job_under_short_lease(
        self, queue, stop_pools
    ):
        def slow(job):
            time.sleep(0.7)
            return {}

        queue.register_handler("t", slow)
        job = queue.enqueue("t")
        # Lease far shorter than the job: only heartbeats keep it owned.
        stop_pools(WorkerPool(queue, workers=1, lease_seconds=0.2).start())

        finished = queue.wait(job.id, timeout=10.0)
        assert finished.state == "done"
        assert finished.attempts == 1  # never redelivered
        assert queue.status()["lease_expirations"] == 0


class TestConcurrencyLimits:
    def test_type_limit_caps_in_flight_jobs(self, queue, stop_pools):
        lock = threading.Lock()
        running = 0
        peak = 0

        def tracked(job):
            nonlocal running, peak
            with lock:
                running += 1
                peak = max(peak, running)
            time.sleep(0.05)
            with lock:
                running -= 1
            return {}

        queue.register_handler("capped", tracked)
        jobs = [queue.enqueue("capped") for _ in range(6)]
        pool = WorkerPool(
            queue, workers=4, lease_seconds=5.0, type_limits={"capped": 1}
        ).start()
        stop_pools(pool)

        for job in jobs:
            assert queue.wait(job.id, timeout=10.0).state == "done"
        assert peak == 1


class TestGracefulDrain:
    def test_drain_finishes_backlog_under_concurrent_enqueue(self, queue):
        done_payloads: list[int] = []
        lock = threading.Lock()

        def handler(job):
            with lock:
                done_payloads.append(job.payload["n"])
            time.sleep(0.002)
            return {}

        queue.register_handler("t", handler)
        for n in range(10):
            queue.enqueue("t", {"n": n})
        pool = WorkerPool(queue, workers=2, lease_seconds=5.0).start()

        produced = []

        def producer():
            # Keep enqueueing while the pool is draining; each of these
            # either lands before the last claim and runs, or stays
            # pending for the next pool — never lost, never leased.
            for n in range(10, 40):
                produced.append(queue.enqueue("t", {"n": n}).id)
                time.sleep(0.001)

        thread = threading.Thread(target=producer)
        thread.start()
        assert pool.stop(drain=True, timeout=30.0)
        thread.join(timeout=10.0)
        assert not thread.is_alive()

        states = {job.id: job.state for job in queue.list()}
        assert set(states.values()) <= {"done", "pending"}  # nothing leased
        # The pre-drain backlog is part of the graceful contract.
        first_ten = [jid for jid, s in states.items() if jid <= 10]
        assert all(states[jid] == "done" for jid in first_ten)
        assert sorted(done_payloads)[:10] == list(range(10))

        # A fresh pool picks up whatever the race left pending.
        pending = [jid for jid, s in states.items() if s == "pending"]
        follower = WorkerPool(queue, workers=2, lease_seconds=5.0).start()
        try:
            for jid in pending:
                assert queue.wait(jid, timeout=10.0).state == "done"
        finally:
            follower.stop(drain=True, timeout=10.0)
        assert queue.depth() == 0


class TestFacadeIntegration:
    def test_import_runs_through_the_queue_when_workers_run(self, tmp_path):
        from repro.dataimport.filesystem import LocalFileSystemProvider
        from repro.facade import BFabric

        source = tmp_path / "src"
        source.mkdir()
        for name in ("a.raw", "b.raw"):
            (source / name).write_bytes(name.encode() * 64)

        system = BFabric()
        try:
            system.imports.register_provider(
                LocalFileSystemProvider("bench-src", source)
            )
            admin = system.bootstrap()
            project = system.projects.create(admin, "queue import")
            system.start_workers(workers=2, lease_seconds=5.0, name="test")
            assert system.queue.workers_active()

            job = system.imports.enqueue_import(
                admin,
                project.id,
                "bench-src",
                ["a.raw", "b.raw"],
                workunit_name="queued import",
                job_key="facade-test",
            )
            assert system.queue.wait(job.id, timeout=30.0).state == "done"

            # Same job key → the same job, not a second import.
            again = system.imports.enqueue_import(
                admin,
                project.id,
                "bench-src",
                ["a.raw", "b.raw"],
                workunit_name="queued import",
                job_key="facade-test",
            )
            assert again.id == job.id
            assert system.db.count("data_resource") == 2
        finally:
            system.close()
