"""Repair paths and remaining small behaviours."""

import datetime as dt

import pytest

from repro.facade import BFabric
from repro.search.engine import SearchEngine
from repro.security.principals import SYSTEM
from repro.storage import Database
from repro.util.clock import ManualClock
from repro.workflow import Action, Step, WorkflowDefinition
from repro.workflow.render import render_ascii


class TestIntegrityRepair:
    def test_verify_detects_index_corruption_and_rebuild_fixes(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        people_db.insert("person", {"name": "ada", "org_id": org["id"]})
        table = people_db.table("person")
        # Sabotage: drop the row from its name index behind the engine's back.
        index = table.hash_index_for(("name",))
        index.remove({"name": "ada"}, 1)
        problems = people_db.verify_integrity()
        assert any("missing from index" in p for p in problems)
        people_db.rebuild_indexes()
        assert people_db.verify_integrity() == []
        assert people_db.query("person").where("name", "=", "ada").count() == 1

    def test_verify_detects_dangling_foreign_key(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        people_db.insert("person", {"name": "ada", "org_id": org["id"]})
        # Sabotage the raw row store directly.
        people_db.table("org")._rows.pop(org["id"])
        problems = people_db.verify_integrity()
        assert any("references missing" in p for p in problems)


class TestSnippetEdgeCases:
    def test_snippet_without_match_takes_prefix(self):
        engine = SearchEngine()
        engine.index_document(
            "sample", 1, {"name": "alpha", "description": "x" * 300}
        )
        results = engine.search(SYSTEM, "alpha")
        assert len(results[0].snippet) <= 95

    def test_snippet_ellipses_in_long_text(self):
        engine = SearchEngine()
        text = ("filler " * 40) + "needle" + (" filler" * 40)
        engine.index_document("sample", 1, {"name": "doc", "description": text})
        results = engine.search(SYSTEM, "needle")
        assert "needle" in results[0].snippet
        assert "…" in results[0].snippet


class TestRenderBranchingWorkflow:
    def test_breadth_first_order_and_all_steps_present(self):
        definition = WorkflowDefinition(
            "branchy",
            steps=[
                Step("start", actions=(
                    Action("left", target="a"),
                    Action("right", target="b"),
                )),
                Step("a", actions=(Action("finish", target="done"),)),
                Step("b", actions=(Action("finish", target="done"),)),
                Step("done", actions=()),
            ],
        )
        drawing = render_ascii(definition, "b")
        for name in ("start", "a", "b", "done"):
            assert f"[{name}]" in drawing
        assert "▶[b]" in drawing
        # start appears before its successors.
        assert drawing.index("[start]") < drawing.index("[a]")


class TestAuditCounts:
    def test_counts_by_action(self):
        system = BFabric(clock=ManualClock(dt.datetime(2010, 1, 15)))
        admin = system.bootstrap()
        scientist = system.add_user(admin, login="sci", full_name="Sci")
        project = system.projects.create(scientist, "P")
        sample = system.samples.register_sample(scientist, project.id, "s")
        counts = system.audit.counts_by_action()
        assert counts["create"] >= 3
        assert counts["delete"] == 0


class TestImportPickerWithoutProvider:
    def test_get_import_form_renders_provider_dropdown(self, tmp_path):
        from repro.dataimport import AffymetrixGeneChipProvider
        from repro.portal import PortalApplication
        from repro.portal.testing import PortalClient

        system = BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15)))
        admin = system.bootstrap(password="pw1234")
        system.directory.set_password(admin, admin.user_id, "pw1234")
        system.imports.register_provider(
            AffymetrixGeneChipProvider("GeneChip", runs=1)
        )
        client = PortalClient(PortalApplication(system))
        client.login("admin", "pw1234")
        client.post("/projects", {"name": "P", "description": ""})
        response = client.get("/projects/1/import")
        assert "GeneChip" in response.text
        assert "Create workunit" not in response.text  # no files listed yet


class TestInMemoryStoreCleanup:
    def test_close_removes_temporary_store(self):
        system = BFabric()
        store_root = system.store.root
        assert store_root.exists()
        system.close()
        assert not store_root.exists()

    def test_durable_store_untouched_by_close(self, tmp_path):
        system = BFabric(tmp_path)
        store_root = system.store.root
        system.close()
        assert store_root.exists()
