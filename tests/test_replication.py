"""WAL-shipping replication: protocol, convergence, routing, failover."""

import socket
import threading

import pytest

from repro.errors import ReplicaLagExceeded, ReplicationProtocolError
from repro.replication import Replica, ReplicaSet, ReplicationPublisher
from repro.replication import protocol
from repro.resilience import Fault, FaultPlan, inject
from repro.storage import Column, ColumnType, Database, TableSchema


def make_schema():
    return TableSchema(
        "doc",
        [
            Column("id", ColumnType.INT, primary_key=True),
            Column("body", ColumnType.TEXT, nullable=False),
        ],
    )


def open_db(path) -> Database:
    db = Database(path, durability="always")
    db.create_table(make_schema())
    return db


def current_seq(db: Database) -> int:
    return db.replication_start_point()[0]


@pytest.fixture
def cluster(tmp_path):
    """A primary publishing to two followers, torn down afterwards."""
    primary = open_db(tmp_path / "primary")
    publisher = ReplicationPublisher(primary).start()
    replicas = [
        Replica(
            open_db(tmp_path / f"r{i}"),
            ("127.0.0.1", publisher.port),
            name=f"r{i}",
        ).start()
        for i in range(2)
    ]
    yield primary, publisher, replicas
    for replica in replicas:
        replica.stop()
        replica.db.close()
    publisher.stop()
    primary.close()


class TestProtocol:
    def _pair(self):
        left, right = socket.socketpair()
        return protocol.Connection(left), protocol.Connection(right)

    def test_frame_round_trip(self):
        a, b = self._pair()
        a.send(protocol.hello(7, "r1", history="h1"))
        a.send(protocol.commit_message(9, 7, {"txn": 1, "ops": []}))
        assert b.recv() == {
            "type": "hello",
            "last_seq": 7,
            "replica": "r1",
            "history": "h1",
        }
        commit = b.recv()
        assert commit["seq"] == 9 and commit["prev"] == 7
        a.close()
        b.close()

    def test_timeout_mid_frame_resumes_without_desync(self):
        """A recv timeout with half a frame on the wire must not lose
        the buffered prefix — the next recv continues the same frame."""
        left, right = socket.socketpair()
        right.settimeout(0.05)
        a, b = protocol.Connection(left), protocol.Connection(right)
        frame = protocol.encode_frame(protocol.ack(42))
        a._sock.sendall(frame[:5])
        with pytest.raises(socket.timeout):
            b.recv()
        a._sock.sendall(frame[5:])
        a.send(protocol.heartbeat(43))  # and the stream stays aligned
        assert b.recv() == {"type": "ack", "seq": 42}
        assert b.recv() == {"type": "heartbeat", "seq": 43}
        a.close()
        b.close()

    def test_corrupted_body_raises(self):
        a, b = self._pair()
        frame = bytearray(protocol.encode_frame(protocol.ack(3)))
        frame[-1] ^= 0xFF
        a._sock.sendall(bytes(frame))
        with pytest.raises(ReplicationProtocolError, match="CRC"):
            b.recv()
        a.close()
        b.close()

    def test_mid_frame_eof_raises(self):
        a, b = self._pair()
        frame = protocol.encode_frame(protocol.heartbeat(5))
        a._sock.sendall(frame[: len(frame) - 4])
        a.close()
        with pytest.raises(ReplicationProtocolError):
            b.recv()
        b.close()

    def test_clean_eof_returns_none(self):
        a, b = self._pair()
        a.close()
        assert b.recv() is None
        b.close()

    def test_oversize_frame_rejected(self):
        a, b = self._pair()
        header = protocol._HEADER.pack(protocol.MAX_FRAME_BYTES + 1, 0)
        a._sock.sendall(header)
        with pytest.raises(ReplicationProtocolError, match="cap"):
            b.recv()
        a.close()
        b.close()


class TestConvergence:
    def test_two_replicas_converge_under_concurrent_writers(self, cluster):
        primary, publisher, replicas = cluster
        writers, per_writer = 4, 12
        barrier = threading.Barrier(writers)

        def worker(worker_id: int) -> None:
            barrier.wait()
            base = worker_id * per_writer + 1
            for i in range(per_writer):
                primary.insert("doc", {"id": base + i, "body": f"row {base + i}"})

        pool = [
            threading.Thread(target=worker, args=(w,)) for w in range(writers)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        seq = current_seq(primary)
        expected = sorted(row["id"] for row in primary.rows("doc"))
        assert len(expected) == writers * per_writer
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
            with replica.snapshot() as snap:
                assert sorted(snap.pks("doc")) == expected
            assert replica.status()["connected"]

    def test_wait_for_gives_read_your_writes(self, cluster):
        primary, publisher, replicas = cluster
        primary.insert("doc", {"id": 1, "body": "mine"})
        seq = current_seq(primary)
        replicas[0].wait_for(seq, timeout=10.0)
        with replicas[0].snapshot() as snap:
            assert snap.get("doc", 1)["body"] == "mine"

    def test_wait_for_times_out(self, cluster):
        primary, publisher, replicas = cluster
        with pytest.raises(ReplicaLagExceeded):
            replicas[0].wait_for(current_seq(primary) + 1000, timeout=0.1)

    def test_traced_commit_carries_trace_to_replica_apply(self, cluster):
        primary, publisher, replicas = cluster
        # Prime the stream: the first row may reach a late-connecting
        # replica inside its bootstrap snapshot (which carries no trace);
        # once every replica has applied it, the next commit must arrive
        # as a live frame.
        primary.insert("doc", {"id": 99, "body": "primer"})
        for replica in replicas:
            replica.wait_for(current_seq(primary), timeout=10.0)
        with primary.obs.tracer.span("client.request") as span:
            primary.insert("doc", {"id": 1, "body": "traced"})
        trace_id = span.trace_id
        commit = primary.obs.tracer.finished("storage.commit")[-1]
        assert commit.trace_id == trace_id
        seq = current_seq(primary)
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
            applies = [
                s for s in replica.obs.tracer.finished("replication.apply")
                if s.trace_id == trace_id
            ]
            # The frame-level trace field joins the replica's apply span
            # to the primary-side trace, parented on the commit span.
            assert len(applies) == 1
            assert applies[0].parent_id == commit.span_id
            assert applies[0].attributes["seq"] == seq

    def test_untraced_commit_ships_no_trace(self, cluster):
        primary, publisher, replicas = cluster
        primary.insert("doc", {"id": 2, "body": "untraced"})
        seq = current_seq(primary)
        replicas[0].wait_for(seq, timeout=10.0)
        # No client span was open, so no context was registered for the
        # seq and the replica applied without opening a span.
        assert primary.trace_for_seq(seq) is None
        assert replicas[0].obs.tracer.finished("replication.apply") == []

    def test_streaming_survives_checkpoint_wal_reset(self, cluster):
        """A checkpoint resets the WAL under the tailer; if the new file
        outgrows the tailer's stale offset before its next poll, a size
        comparison alone would start scanning mid-record and silently
        stop shipping.  The generation check must rescan from 0."""
        primary, publisher, replicas = cluster
        for i in range(5):
            primary.insert("doc", {"id": i + 1, "body": f"pre {i}"})
        seq = current_seq(primary)
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
        primary.checkpoint()
        # One big record makes the fresh WAL immediately larger than the
        # old one, exercising the outgrown-offset interleaving.
        primary.insert("doc", {"id": 50, "body": "x" * 20000})
        seq = current_seq(primary)
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
            with replica.snapshot() as snap:
                assert snap.count("doc") == 6

    def test_late_joiner_bootstraps(self, cluster, tmp_path):
        primary, publisher, replicas = cluster
        for i in range(5):
            primary.insert("doc", {"id": i + 1, "body": f"pre {i}"})
        late = Replica(
            open_db(tmp_path / "late"),
            ("127.0.0.1", publisher.port),
            name="late",
        ).start()
        try:
            late.wait_for(current_seq(primary), timeout=10.0)
            with late.snapshot() as snap:
                assert snap.count("doc") == 5
            assert late.status()["bootstraps"] >= 0
        finally:
            late.stop()
            late.db.close()


class TestRouting:
    def test_reads_route_to_replicas(self, cluster):
        primary, publisher, replicas = cluster
        primary.insert("doc", {"id": 1, "body": "routed"})
        rs = ReplicaSet(primary, replicas, publisher=publisher)
        rs.wait_all(current_seq(primary), timeout=10.0)
        with rs.read_snapshot() as snap:
            assert snap.get("doc", 1)["body"] == "routed"
        counter = primary.obs.metrics.get("replication_reads_total")
        routed = {
            labels["target"]: child.value for labels, child in counter.samples()
        }
        assert any(name.startswith("r") for name in routed)

    def test_fallback_to_primary_when_replicas_unhealthy(self, cluster):
        primary, publisher, replicas = cluster
        primary.insert("doc", {"id": 1, "body": "fallback"})
        rs = ReplicaSet(primary, replicas, publisher=publisher)
        for replica in replicas:
            replica.stop()
        with rs.read_snapshot() as snap:
            assert snap.get("doc", 1)["body"] == "fallback"
        counter = primary.obs.metrics.get("replication_reads_total")
        assert counter.labels(target="primary").value >= 1

    def test_disconnected_replica_snapshot_raises(self, cluster):
        primary, publisher, replicas = cluster
        replicas[0].max_lag = 8  # opt in to the staleness bound
        replicas[0].stop()
        with pytest.raises(ReplicaLagExceeded):
            replicas[0].snapshot()

    def test_lag_gauges_exported(self, cluster):
        primary, publisher, replicas = cluster
        primary.insert("doc", {"id": 1, "body": "gauge"})
        seq = current_seq(primary)
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
        status = publisher.status()
        assert set(status["replicas"]) == {"r0", "r1"}
        gauge = primary.obs.metrics.get("replication_lag_seqs")
        assert gauge is not None
        for name in ("r0", "r1"):
            assert gauge.labels(replica=name).value >= 0


class TestFaultTolerance:
    def test_converges_through_dropped_and_duplicated_frames(self, tmp_path):
        plan = FaultPlan(
            [
                Fault("replication.recv", kind="drop", probability=0.15, times=4),
                Fault(
                    "replication.recv", kind="duplicate", probability=0.15, times=4
                ),
            ],
            seed=11,
        )
        with inject(plan):
            primary = open_db(tmp_path / "primary")
            publisher = ReplicationPublisher(primary).start()
            replica = Replica(
                open_db(tmp_path / "r0"),
                ("127.0.0.1", publisher.port),
                name="r0",
            ).start()
            try:
                for i in range(40):
                    primary.insert("doc", {"id": i + 1, "body": f"row {i}"})
                replica.wait_for(current_seq(primary), timeout=20.0)
                with replica.snapshot() as snap:
                    assert snap.count("doc") == 40
            finally:
                replica.stop()
                replica.db.close()
                publisher.stop()
                primary.close()
        assert plan.fired() > 0

    def test_recovers_from_torn_frame_send(self, tmp_path):
        plan = FaultPlan(
            [Fault("replication.send", kind="torn_write", at_call=4, fraction=0.5)]
        )
        with inject(plan):
            primary = open_db(tmp_path / "primary")
            publisher = ReplicationPublisher(primary).start()
            replica = Replica(
                open_db(tmp_path / "r0"),
                ("127.0.0.1", publisher.port),
                name="r0",
            ).start()
            try:
                for i in range(20):
                    primary.insert("doc", {"id": i + 1, "body": f"row {i}"})
                replica.wait_for(current_seq(primary), timeout=20.0)
                with replica.snapshot() as snap:
                    assert snap.count("doc") == 20
            finally:
                replica.stop()
                replica.db.close()
                publisher.stop()
                primary.close()
        assert plan.fired() == 1


class TestFailover:
    def test_promote_preserves_confirmed_commits(self, cluster):
        primary, publisher, replicas = cluster
        for i in range(10):
            primary.insert("doc", {"id": i + 1, "body": f"row {i}"})
        seq = current_seq(primary)
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
        publisher.kill()
        rs = ReplicaSet(primary, list(replicas), publisher=None)
        promoted = rs.promote(drain_timeout=2.0)
        db = promoted.db
        assert sorted(row["id"] for row in db.rows("doc")) == list(range(1, 11))
        assert db.verify_integrity() == []
        db.insert("doc", {"id": 999, "body": "post-promote"})
        assert db.get("doc", 999)["body"] == "post-promote"
        assert promoted.promoted
        with promoted.snapshot() as snap:  # promoted replicas always serve
            assert snap.count("doc") == 11

    def test_promote_bounded_while_primary_still_streams(self, cluster):
        """Frame arrivals extend the drain only up to the hard cap — a
        primary that never goes quiet cannot stall promotion, and the
        stream thread is fully stopped before local writes begin."""
        import time

        primary, publisher, replicas = cluster
        halt = threading.Event()

        def writer() -> None:
            i = 1000
            while not halt.is_set():
                primary.insert("doc", {"id": i, "body": "hot"})
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            time.sleep(0.3)  # let the stream run hot
            started = time.monotonic()
            db = replicas[0].promote(drain_timeout=1.0)
            elapsed = time.monotonic() - started
            assert elapsed < 5.0
            assert replicas[0].promoted
            assert not replicas[0]._thread.is_alive()
            db.insert("doc", {"id": 999999, "body": "local"})
            assert db.get("doc", 999999)["body"] == "local"
        finally:
            halt.set()
            thread.join()

    def test_failover_rewires_the_survivor(self, cluster):
        primary, publisher, replicas = cluster
        for i in range(6):
            primary.insert("doc", {"id": i + 1, "body": f"row {i}"})
        seq = current_seq(primary)
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
        rs = ReplicaSet(primary, list(replicas), publisher=publisher)
        promoted = rs.failover(drain_timeout=2.0)
        try:
            assert rs.primary is promoted.system
            promoted.db.insert("doc", {"id": 100, "body": "new primary"})
            new_seq = current_seq(promoted.db)
            survivor = rs.replicas[0]
            survivor.wait_for(new_seq, timeout=10.0)
            with survivor.snapshot() as snap:
                assert snap.get("doc", 100)["body"] == "new primary"
        finally:
            rs.publisher.stop()


class TestBootstrapAndRestart:
    def test_bootstrap_reorders_alphabetical_wire_map(self, tmp_path):
        """The frame codec sorts keys; FK order must not depend on it."""

        def fk_db(path) -> Database:
            db = Database(path, durability="always")
            db.create_table(
                TableSchema(
                    "z_parent",
                    [
                        Column("id", ColumnType.INT, primary_key=True),
                        Column("name", ColumnType.TEXT, nullable=False),
                    ],
                )
            )
            db.create_table(
                TableSchema(
                    "a_child",
                    [
                        Column("id", ColumnType.INT, primary_key=True),
                        Column(
                            "parent_id",
                            ColumnType.INT,
                            foreign_key="z_parent.id",
                            nullable=False,
                        ),
                    ],
                )
            )
            return db

        primary = fk_db(tmp_path / "primary")
        primary.insert("z_parent", {"id": 1, "name": "p"})
        primary.insert("a_child", {"id": 1, "parent_id": 1})
        seq, tables = primary.export_snapshot()
        wire_order = dict(sorted(tables.items()))  # what sort_keys does
        assert list(wire_order) == ["a_child", "z_parent"]
        replica = fk_db(tmp_path / "replica")
        replica.load_replicated_snapshot(wire_order, seq=seq)
        assert replica.get("a_child", 1)["parent_id"] == 1
        assert replica.verify_integrity() == []
        primary.close()
        replica.close()

    def test_recover_restores_commit_sequence(self, tmp_path):
        db = open_db(tmp_path)
        for i in range(3):
            db.insert("doc", {"id": i + 1, "body": f"row {i}"})
        seq = current_seq(db)
        assert seq >= 3
        db.close()
        db2 = open_db(tmp_path)
        db2.recover()
        assert current_seq(db2) == seq
        db2.close()

    def test_commit_sequence_survives_checkpoint_restart(self, tmp_path):
        """A checkpoint resets the WAL; the counter must not reset with
        it, or a restarted primary would re-issue sequence numbers its
        replicas already applied."""
        db = open_db(tmp_path)
        for i in range(5):
            db.insert("doc", {"id": i + 1, "body": f"row {i}"})
        seq = current_seq(db)
        db.checkpoint()
        db.close()
        db2 = open_db(tmp_path)
        db2.recover()
        assert current_seq(db2) == seq
        # And commits after the restart continue the sequence space.
        db2.insert("doc", {"id": 100, "body": "post-restart"})
        assert current_seq(db2) > seq
        db2.close()

    def test_history_id_stable_across_restart_and_fresh_on_promote(
        self, tmp_path
    ):
        db = open_db(tmp_path / "p")
        first = db.history_id
        db.close()
        db2 = open_db(tmp_path / "p")
        assert db2.history_id == first
        assert db2.new_history() != first
        db2.close()

    def test_mismatched_history_forces_bootstrap_not_resume(self, cluster):
        """A replica whose applied seq looks resumable but whose history
        differs (e.g. the primary restarted after a checkpoint regressed
        and re-grew its counter) must get a snapshot, never a resume."""
        import time

        primary, publisher, replicas = cluster
        primary.insert("doc", {"id": 1, "body": "x"})
        seq = current_seq(primary)
        for replica in replicas:
            replica.wait_for(seq, timeout=10.0)
        before = replicas[0].status()["bootstraps"]
        # Reconnect r0 with the right position but the wrong lineage.
        replicas[0].stop()
        replicas[0].db.adopt_history("someone-elses-history")
        replicas[0].rejoin(("127.0.0.1", publisher.port))
        deadline = time.monotonic() + 10.0
        while (
            replicas[0].status()["bootstraps"] == before
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert replicas[0].status()["bootstraps"] > before
        # The bootstrap re-aligned the replica with the primary's lineage.
        assert replicas[0].db.history_id == primary.history_id
        replicas[0].wait_for(seq, timeout=10.0)


class TestMvccObservability:
    def test_snapshot_gauges_track_open_and_horizon(self):
        db = Database()
        db.create_table(make_schema())
        open_gauge = db.obs.metrics.get("storage_open_snapshots").labels()
        horizon_gauge = db.obs.metrics.get("storage_version_horizon").labels()
        db.insert("doc", {"id": 1, "body": "x"})
        snap = db.snapshot()
        assert open_gauge.value == 1
        assert horizon_gauge.value == snap.seq
        snap.close()
        assert open_gauge.value == 0
        mvcc = db.statistics()["mvcc"]
        assert set(mvcc) == {
            "committed_seq",
            "open_snapshots",
            "version_horizon",
            "retained_versions",
        }


class TestPortalRouting:
    def test_get_pages_render_from_replica_snapshots(self, tmp_path):
        import datetime as dt

        from repro.facade import BFabric
        from repro.portal import PortalApplication
        from repro.portal.testing import PortalClient
        from repro.util.clock import ManualClock

        primary = BFabric(
            tmp_path / "p", clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0))
        )
        admin = primary.bootstrap(password="adminpw")
        primary.directory.set_password(admin, admin.user_id, "adminpw")
        publisher = ReplicationPublisher(primary.db, obs=primary.obs).start()
        follower_system = BFabric(tmp_path / "r")
        follower = Replica(
            follower_system, ("127.0.0.1", publisher.port), name="r0"
        ).start()
        rs = ReplicaSet(primary, [follower], publisher=publisher)
        try:
            rs.wait_all(
                primary.db.replication_start_point()[0], timeout=15.0
            )
            client = PortalClient(PortalApplication(primary, replicas=rs))
            client.login("admin", "adminpw")
            page = client.get("/admin/metrics")
            assert page.status == 200
            assert "MVCC" in page.text
            assert "Replication" in page.text
            counter = primary.obs.metrics.get("replication_reads_total")
            routed = {
                labels["target"]: child.value
                for labels, child in counter.samples()
            }
            assert routed.get("r0", 0) >= 1
        finally:
            rs.close()
            follower_system.close()
            primary.close()
