"""Resilience primitives: retry, timeout, breaker, faults, dead letters."""

import datetime as dt

import pytest

from repro.errors import (
    CircuitOpenError,
    FaultInjected,
    StateError,
    TimeoutExceeded,
)
from repro.facade import BFabric
from repro.resilience import (
    BreakerRegistry,
    CircuitBreaker,
    Fault,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
    Timeout,
    WAL_SITES,
    active_plan,
    fault_point,
    inject,
    resilient,
)
from repro.resilience.dlq import handler_name
from repro.util.clock import ManualClock


class TestRetryPolicy:
    def test_delays_are_deterministic_for_a_seed(self):
        a = list(RetryPolicy(max_attempts=5, seed=7).delays())
        b = list(RetryPolicy(max_attempts=5, seed=7).delays())
        assert a == b
        assert len(a) == 4

    def test_different_seeds_differ(self):
        a = list(RetryPolicy(max_attempts=6, seed=1).delays())
        b = list(RetryPolicy(max_attempts=6, seed=2).delays())
        assert a != b

    def test_backoff_is_bounded_and_growing(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, max_delay=0.5,
            multiplier=2.0, jitter=0.0, seed=0,
        )
        delays = list(policy.delays())
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert max(delays) <= 0.5
        assert delays[-1] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_retryable_respects_retry_on(self):
        policy = RetryPolicy(retry_on=(OSError,))
        assert policy.retryable(OSError("disk"))
        assert not policy.retryable(ValueError("nope"))


class TestTimeout:
    def test_disabled_guard_passes_through(self):
        assert Timeout(None).call(lambda: 42) == 42
        assert Timeout(0).call(lambda: 42) == 42

    def test_fast_call_returns_value(self):
        assert Timeout(5.0).call(lambda x: x * 2, 21) == 42

    def test_error_propagates_from_worker_thread(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            Timeout(5.0).call(boom)

    def test_overrun_raises_timeout_exceeded(self):
        import time

        with pytest.raises(TimeoutExceeded) as excinfo:
            Timeout(0.01).call(time.sleep, 0.5)
        assert excinfo.value.seconds == 0.01


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = ManualClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("cooldown", 30.0)
        return CircuitBreaker("ep", clock=clock, **kwargs), clock

    def test_opens_after_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.endpoint == "ep"

    def test_half_open_after_cooldown_then_close_on_success(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(seconds=31)
        assert breaker.state == "half_open"
        breaker.allow()  # first probe admitted
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # probe slots taken
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(seconds=31)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(seconds=29)
        assert breaker.state == "open"
        clock.advance(seconds=2)
        assert breaker.state == "half_open"

    def test_success_resets_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.failures == 0
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_registry_shares_breakers_per_endpoint(self):
        registry = BreakerRegistry(clock=ManualClock(), failure_threshold=2)
        a = registry.breaker("rserve:host:6311")
        b = registry.breaker("rserve:host:6311")
        assert a is b
        registry.breaker("provider:lims")
        assert set(registry.states()) == {"rserve:host:6311", "provider:lims"}
        a.record_failure()
        a.record_failure()
        assert registry.states()["rserve:host:6311"] == "open"


class TestResilientWrapper:
    def test_retries_then_succeeds(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=4, base_delay=0.2, seed=0)
        )
        result = resilient(policy, sleep=slept.append)(flaky)()
        assert result == "done"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_exhaustion_reraises_original_error(self):
        def always_fails():
            raise OSError("persistent")

        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0, jitter=0, seed=0)
        )
        with pytest.raises(OSError, match="persistent"):
            resilient(policy, sleep=lambda _s: None)(always_fails)()

    def test_non_retryable_error_propagates_immediately(self):
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("bad input")

        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=5, retry_on=(OSError,), seed=0)
        )
        with pytest.raises(ValueError):
            resilient(policy, sleep=lambda _s: None)(fails)()
        assert len(calls) == 1

    def test_give_up_on_skips_retry_and_breaker(self):
        breaker = CircuitBreaker(
            "ep", failure_threshold=1, clock=ManualClock()
        )
        calls = []

        def fails():
            calls.append(1)
            raise ValueError("fatal")

        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=5, seed=0),
            breaker=breaker,
            give_up_on=(ValueError,),
        )
        with pytest.raises(ValueError):
            resilient(policy, sleep=lambda _s: None)(fails)()
        assert len(calls) == 1
        assert breaker.state == "closed"  # fatal errors don't trip it

    def test_open_breaker_fails_fast_without_calling(self):
        clock = ManualClock()
        breaker = CircuitBreaker("ep", failure_threshold=1, clock=clock)
        breaker.record_failure()
        calls = []
        policy = ResiliencePolicy(breaker=breaker)
        with pytest.raises(CircuitOpenError):
            resilient(policy)(lambda: calls.append(1))()
        assert calls == []

    def test_passthrough_policy(self):
        assert resilient(ResiliencePolicy())(lambda x: x + 1)(1) == 2


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            Fault("no.such.site")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("wal.write", kind="meteor")

    def test_at_call_fires_exactly_once(self):
        plan = FaultPlan([Fault("connector.run", at_call=2)])
        with inject(plan):
            assert fault_point("connector.run") is None
            with pytest.raises(FaultInjected):
                fault_point("connector.run")
            assert fault_point("connector.run") is None
        assert plan.hits("connector.run") == 3
        assert plan.fired() == 1

    def test_times_bounds_probabilistic_firing(self):
        plan = FaultPlan(
            [Fault("connector.run", probability=1.0, times=2)], seed=1
        )
        fired = 0
        with inject(plan):
            for _ in range(5):
                try:
                    fault_point("connector.run")
                except FaultInjected:
                    fired += 1
        assert fired == 2

    def test_probability_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(
                [Fault("connector.run", probability=0.5, times=-1)], seed=seed
            )
            outcomes = []
            with inject(plan):
                for _ in range(20):
                    try:
                        fault_point("connector.run")
                        outcomes.append(0)
                    except FaultInjected:
                        outcomes.append(1)
            return outcomes

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_custom_error_class(self):
        plan = FaultPlan([Fault("wal.append", at_call=1, error=OSError)])
        with inject(plan):
            with pytest.raises(OSError):
                fault_point("wal.append")

    def test_site_interpreted_kinds_return_action(self):
        plan = FaultPlan(
            [Fault("wal.write", kind="torn_write", at_call=1, fraction=0.25)]
        )
        with inject(plan):
            action = fault_point("wal.write")
        assert action is not None
        assert action.kind == "torn_write"
        assert action.fraction == 0.25

    def test_inject_uninstalls_on_exit(self):
        plan = FaultPlan([Fault("wal.append", at_call=1)])
        with inject(plan):
            assert active_plan() is plan
        assert active_plan() is None
        assert fault_point("wal.append") is None

    def test_wal_sites_are_registered(self):
        from repro.resilience import REGISTERED_SITES

        assert set(WAL_SITES) <= set(REGISTERED_SITES)


class TestDeadLetterQueue:
    @pytest.fixture
    def system(self):
        return BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))

    def test_failed_delivery_is_dead_lettered(self, system):
        def bad_handler(**_kw):
            raise RuntimeError("consumer down")

        system.events.subscribe("custom.event", bad_handler)
        system.events.publish("custom.event", value=7)
        letters = system.dlq.list()
        assert len(letters) == 1
        letter = letters[0]
        assert letter.event == "custom.event"
        assert letter.handler == handler_name(bad_handler)
        assert letter.payload == {"value": 7}
        assert "consumer down" in letter.error
        assert system.dlq.pending_count() == 1

    def test_retry_succeeds_after_fix(self, system):
        received = []
        broken = [True]

        def handler(**kw):
            if broken[0]:
                raise RuntimeError("still down")
            received.append(kw)

        system.events.subscribe("custom.event", handler)
        system.events.publish("custom.event", value=1)
        letter = system.dlq.list()[0]
        # First retry: handler still broken — attempts bumped, stays dead.
        with pytest.raises(RuntimeError):
            system.dlq.retry(letter.id, system.events)
        assert system.dlq.get(letter.id).attempts == 2
        broken[0] = False
        updated = system.dlq.retry(letter.id, system.events)
        assert updated.status == "retried"
        assert received == [{"value": 1}]
        assert system.dlq.pending_count() == 0
        with pytest.raises(StateError):
            system.dlq.retry(letter.id, system.events)

    def test_retry_all(self, system):
        seen = []

        def sometimes(**kw):
            if kw.get("n", 0) == 2 and not seen:
                pass
            raise RuntimeError("down")

        system.events.subscribe("custom.event", sometimes)
        system.events.publish("custom.event", n=1)
        system.events.publish("custom.event", n=2)
        system.events.unsubscribe("custom.event", sometimes)

        def fixed(**kw):
            seen.append(kw["n"])

        fixed.__qualname__ = sometimes.__qualname__
        system.events.subscribe("custom.event", fixed)
        succeeded, failed = system.dlq.retry_all(system.events)
        assert (succeeded, failed) == (2, 0)
        assert sorted(seen) == [1, 2]

    def test_discard(self, system):
        system.events.subscribe(
            "custom.event", lambda **_kw: (_ for _ in ()).throw(ValueError())
        )
        system.events.publish("custom.event")
        letter = system.dlq.list()[0]
        discarded = system.dlq.discard(letter.id)
        assert discarded.status == "discarded"
        assert system.dlq.pending_count() == 0
        assert system.dlq.list(status=None)[0].status == "discarded"

    def test_entity_payload_rehydrates_from_fresh_process(self, system):
        admin = system.bootstrap()
        project = system.projects.create(admin, "P1")

        def bad(**_kw):
            raise RuntimeError("down")

        system.events.subscribe("custom.event", bad)
        system.events.publish("custom.event", project=project, count=3)
        letter = system.dlq.list()[0]
        # Simulate a fresh process: drop the live-payload cache so the
        # persisted JSON encoding must be rehydrated.
        system.dlq._live.clear()
        decoded = system.dlq._decode_payload(letter.payload)
        assert decoded["count"] == 3
        assert decoded["project"].id == project.id
        assert decoded["project"].name == "P1"

    def test_missing_handler_is_reported(self, system):
        def gone(**_kw):
            raise RuntimeError("down")

        system.events.subscribe("custom.event", gone)
        system.events.publish("custom.event")
        system.events.unsubscribe("custom.event", gone)
        letter = system.dlq.list()[0]
        with pytest.raises(StateError, match="no subscriber"):
            system.dlq.retry(letter.id, system.events)
