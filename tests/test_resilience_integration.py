"""Resilience wiring end-to-end: breakers, atomic imports, DLQ, chaos CLI."""

import datetime as dt

import pytest

from repro.cli import main
from repro.core.entities import DataResource, Workunit
from repro.dataimport import AffymetrixGeneChipProvider
from repro.errors import ConnectorError, FaultInjected
from repro.facade import BFabric
from repro.portal import PortalApplication
from repro.portal.testing import PortalClient
from repro.resilience import Fault, FaultPlan, inject
from repro.util.clock import ManualClock
from repro.workflow import END, Action, Step, WorkflowDefinition

TWO_GROUP_INTERFACE = {
    "inputs": ["resource"],
    "parameters": [
        {"name": "reference_group", "type": "text", "required": True},
    ],
    "output": "per-gene statistics CSV + report",
}

RSERVE_ENDPOINT = "rserve:rserve.local:6311"


@pytest.fixture
def system(tmp_path):
    return BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def scientist(system):
    admin = system.bootstrap()
    return system.add_user(admin, login="sci", full_name="Sci")


@pytest.fixture
def project(system, scientist):
    return system.projects.create(scientist, "Arabidopsis light response")


@pytest.fixture
def imported(system, scientist, project):
    system.imports.register_provider(AffymetrixGeneChipProvider("gc", runs=2))
    sample = system.samples.register_sample(
        scientist, project.id, "col0", species="Arabidopsis Thaliana"
    )
    system.samples.batch_register_extracts(
        scientist, sample.id, ["scan01 a", "scan01 b", "scan02 a", "scan02 b"]
    )
    workunit, resources, _ = system.imports.import_files(
        scientist, project.id, "gc",
        ["scan01_a.cel", "scan01_b.cel", "scan02_a.cel", "scan02_b.cel"],
        workunit_name="chips",
    )
    system.imports.apply_assignments(scientist, workunit.id)
    return workunit, resources


@pytest.fixture
def experiment(system, scientist, project, imported):
    application = system.applications.register_application(
        scientist,
        name="two group analysis",
        connector="rserve",
        executable="two_group_analysis",
        interface=TWO_GROUP_INTERFACE,
    )
    _, resources = imported
    return system.experiments.define(
        scientist, project.id, "light effect",
        application_id=application.id,
        resource_ids=[r.id for r in resources],
    )


def run_experiment(system, scientist, experiment, name):
    return system.experiments.run(
        scientist, experiment.id, workunit_name=name,
        parameters={"reference_group": "_a"},
    )


class TestConnectorBreaker:
    """The acceptance scenario: outage trips the breaker, half-open heals."""

    def test_outage_trips_breaker_then_half_open_recovers(
        self, system, scientist, experiment
    ):
        outage = FaultPlan(
            [Fault("connector.run", error=ConnectorError,
                   probability=1.0, times=-1)]
        )
        with inject(outage) as plan:
            # Run 1: three attempts, all fail, run is marked failed.
            workunit = run_experiment(system, scientist, experiment, "r1")
            assert workunit.status == "failed"
            assert plan.hits("connector.run") == 3
            assert system.breakers.states()[RSERVE_ENDPOINT] == "closed"
            # Run 2: the 5th consecutive failure opens the breaker, so
            # the third attempt is rejected without touching Rserve.
            workunit = run_experiment(system, scientist, experiment, "r2")
            assert workunit.status == "failed"
            assert plan.hits("connector.run") == 5
            assert system.breakers.states()[RSERVE_ENDPOINT] == "open"
            # Run 3: fails fast — the connector is never invoked.
            workunit = run_experiment(system, scientist, experiment, "r3")
            assert workunit.status == "failed"
            assert plan.hits("connector.run") == 5
        # Cooldown elapses; the breaker lets a probe through and the
        # (now healthy) connector closes it again.
        system.clock.advance(seconds=31)
        assert system.breakers.states()[RSERVE_ENDPOINT] == "half_open"
        workunit = run_experiment(system, scientist, experiment, "r4")
        assert workunit.status == "available"
        assert system.breakers.states()[RSERVE_ENDPOINT] == "closed"

    def test_metrics_are_visible_on_admin_pages(
        self, system, scientist, experiment
    ):
        admin = system.bootstrap()
        system.directory.set_password(admin, admin.user_id, "adminpw")
        outage = FaultPlan(
            [Fault("connector.run", error=ConnectorError,
                   probability=1.0, times=-1)]
        )
        with inject(outage):
            for name in ("r1", "r2", "r3"):
                run_experiment(system, scientist, experiment, name)
        client = PortalClient(PortalApplication(system))
        client.login("admin", "adminpw")
        body = client.get("/admin/metrics").text
        assert "Resilience" in body
        assert RSERVE_ENDPOINT in body
        assert "resilience_retries_total" in body
        raw = client.get("/admin/metrics.txt").text
        assert 'resilience_breaker_state{endpoint="rserve:' in raw
        assert "resilience_retries_total" in raw
        assert "resilience_gave_up_total" in raw


class TestImporterResilience:
    def test_mid_import_fault_leaves_nothing_behind(
        self, system, scientist, project
    ):
        system.imports.register_provider(
            AffymetrixGeneChipProvider("gc", runs=1)
        )
        rolled_back = []
        system.events.subscribe(
            "import.rolled_back", lambda **kw: rolled_back.append(kw)
        )
        plan = FaultPlan([Fault("dataimport.ingest", at_call=2)])
        with inject(plan):
            with pytest.raises(FaultInjected):
                system.imports.import_files(
                    scientist, project.id, "gc",
                    ["scan01_a.cel", "scan01_b.cel"],
                    workunit_name="doomed import",
                )
        assert len(rolled_back) == 1
        workunit = rolled_back[0]["workunit"]
        # Compensation removed the workunit row, its resources, and any
        # bytes already ingested into the managed store.
        assert system.registry.repository(Workunit).get_or_none(
            workunit.id
        ) is None
        resource_rows = (
            system.registry.repository(DataResource)
            .query().where("workunit_id", "=", workunit.id).count()
        )
        assert resource_rows == 0
        assert not system.store.directory_for(workunit.id).exists()
        # The search index no longer advertises the phantom workunit.
        hits = system.search.search(scientist, "doomed")
        assert all(h.entity_type != "workunit" for h in hits)

    def test_partial_provider_read_is_detected_and_healed_by_retry(
        self, system, scientist, project
    ):
        system.imports.register_provider(
            AffymetrixGeneChipProvider("gc", runs=1)
        )
        plan = FaultPlan(
            [Fault("dataimport.fetch", kind="partial",
                   at_call=1, fraction=0.5)]
        )
        with inject(plan):
            workunit, resources, _ = system.imports.import_files(
                scientist, project.id, "gc", ["scan01_a.cel"],
                workunit_name="healed",
            )
        # The truncated first read failed size verification and the
        # retry fetched the full file.
        assert plan.hits("dataimport.fetch") == 2
        assert workunit.status == "pending"
        listing = system.imports.browse("gc")
        expected = next(f for f in listing if f.name == "scan01_a.cel")
        assert resources[0].size_bytes == expected.size_bytes


class TestWorkflowTransitionResilience:
    def test_transient_transition_fault_is_retried(self, system):
        admin = system.bootstrap()
        system.workflow.register_definition(
            WorkflowDefinition(
                "linear2",
                steps=[
                    Step("draft", actions=(Action("submit", target="review"),)),
                    Step("review", actions=(Action("approve", target=END),)),
                ],
            )
        )
        instance = system.workflow.start(admin, "linear2")
        with inject(FaultPlan([Fault("workflow.transition", at_call=1)])):
            instance = system.workflow.fire(admin, instance.id, "submit")
        assert instance.current_step == "review"
        assert instance.status == "active"


class TestDlqCli:
    def make_dead_letter(self, data):
        """Open the deployment, dead-letter one event, close."""
        system = BFabric(data)
        system.recover()
        admin = system.bootstrap()

        def broken_consumer(**_kw):
            raise RuntimeError("consumer down")

        system.events.subscribe("custom.event", broken_consumer)
        system.events.publish("custom.event", who=admin.login)
        assert system.dlq.pending_count() == 1
        system.close()

    def test_list_retry_discard_roundtrip(self, tmp_path, capsys):
        data = tmp_path / "deploy"
        assert main(["--data", str(data), "init"]) == 0
        capsys.readouterr()

        code = main(["--data", str(data), "dlq", "list"])
        assert code == 0
        assert "empty" in capsys.readouterr().out

        self.make_dead_letter(data)
        code = main(["--data", str(data), "dlq", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "custom.event" in out
        assert "broken_consumer" in out

        # A fresh CLI process has no such subscriber: retry reports the
        # failure and exits non-zero so scripts notice.
        code = main(["--data", str(data), "dlq", "retry", "1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "failed" in out

        code = main(["--data", str(data), "dlq", "discard", "1"])
        assert code == 0
        assert "discarded" in capsys.readouterr().out

        code = main(["--data", str(data), "dlq", "list"])
        assert code == 0
        assert "empty" in capsys.readouterr().out

        code = main(["--data", str(data), "dlq", "list", "--all"])
        assert code == 0
        assert "discarded" in capsys.readouterr().out


class TestTortureCli:
    def test_torture_run_passes(self, tmp_path, capsys):
        data = tmp_path / "deploy"
        assert main(["--data", str(data), "init"]) == 0
        capsys.readouterr()
        code = main(
            ["--data", str(data), "torture", "--commits", "4", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[ok]" in out
        assert "wal.append" in out and "buffered" in out
