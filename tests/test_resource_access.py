"""Transparent resource access across storage modes."""

import datetime as dt
from pathlib import Path

import pytest

from repro.dataimport import AffymetrixGeneChipProvider
from repro.dataimport.store import sha256_of
from repro.errors import ProviderError
from repro.facade import BFabric
from repro.util.clock import ManualClock


@pytest.fixture
def world(tmp_path):
    system = BFabric(tmp_path, clock=ManualClock(dt.datetime(2010, 1, 15)))
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Sci")
    project = system.projects.create(scientist, "P")
    system.imports.register_provider(AffymetrixGeneChipProvider("gc", runs=1))
    return system, scientist, project


class TestResourceAccessor:
    def test_stored_resource_round_trip(self, world, tmp_path):
        system, scientist, project = world
        _, resources, _ = system.imports.import_files(
            scientist, project.id, "gc", ["scan01_a.cel"],
            workunit_name="copied", mode="copy",
        )
        resource = resources[0]
        data = system.access.read_bytes(resource.uri)
        assert len(data) == resource.size_bytes
        target = system.access.materialize(resource.uri, tmp_path / "out")
        assert sha256_of(target) == resource.checksum

    def test_linked_resource_refetches_from_provider(self, world, tmp_path):
        system, scientist, project = world
        _, resources, _ = system.imports.import_files(
            scientist, project.id, "gc", ["scan01_a.cel"],
            workunit_name="linked", mode="link",
        )
        resource = resources[0]
        assert resource.uri.startswith("genechip://")
        data = system.access.read_bytes(resource.uri)
        assert len(data) == resource.size_bytes
        # Deterministic simulated instrument: bytes match a copy import.
        _, copied, _ = system.imports.import_files(
            scientist, project.id, "gc", ["scan01_a.cel"],
            workunit_name="copied", mode="copy",
        )
        assert data == system.access.read_bytes(copied[0].uri)

    def test_missing_stored_file(self, world):
        system, *_ = world
        with pytest.raises(ProviderError):
            system.access.read_bytes("store://workunit_00009999/ghost.txt")

    def test_unknown_provider(self, world):
        system, *_ = world
        with pytest.raises(ProviderError):
            system.access.read_bytes("massspec://nowhere/run/f.raw")

    def test_verify_checksum(self, world):
        system, scientist, project = world
        _, resources, _ = system.imports.import_files(
            scientist, project.id, "gc", ["scan01_a.cel"],
            workunit_name="copied", mode="copy",
        )
        resource = resources[0]
        assert system.access.verify_checksum(resource.uri, resource.checksum)
        assert not system.access.verify_checksum(resource.uri, "00" * 32)
        assert not system.access.verify_checksum(resource.uri, "")


class TestLinkedExperimentStaging:
    def test_link_mode_run_equals_copy_mode_run(self, world):
        """Linked inputs stage real provider bytes, so the analysis over
        link-mode imports produces byte-identical results to copy-mode."""
        system, scientist, project = world
        app = system.applications.register_application(
            scientist, name="two group analysis", connector="rserve",
            executable="two_group_analysis",
            interface={"inputs": ["resource"], "parameters": [
                {"name": "reference_group", "type": "text", "required": True},
            ]},
        )

        def run(mode, tag):
            _, resources, _ = system.imports.import_files(
                scientist, project.id, "gc",
                ["scan01_a.cel", "scan01_b.cel"],
                workunit_name=f"{tag} import", mode=mode,
            )
            experiment = system.experiments.define(
                scientist, project.id, f"{tag} experiment",
                application_id=app.id,
                resource_ids=[r.id for r in resources],
            )
            workunit = system.experiments.run(
                scientist, experiment.id, workunit_name=f"{tag} results",
                parameters={"reference_group": "_a"},
            )
            outputs = system.workunits.resources_of(
                scientist, workunit.id, inputs=False
            )
            return {
                r.name: r.checksum for r in outputs if r.name.endswith(".csv")
            }

        assert run("copy", "copy") == run("link", "link")
