"""The daily-business simulator: a soak test through the service layer."""

import datetime as dt

import pytest

from repro.facade import BFabric
from repro.util.clock import ManualClock
from repro.workload.scenario import BusinessSimulator


@pytest.fixture
def system(tmp_path):
    return BFabric(tmp_path, clock=ManualClock(dt.datetime(2007, 1, 8, 9, 0)))


class TestBusinessSimulator:
    def test_ten_days_of_activity(self, system):
        simulator = BusinessSimulator(system, seed=7)
        report = simulator.simulate_days(10)
        assert report.days == 10
        assert report.samples > 0
        assert report.extracts > 0
        assert report.imports > 0
        assert report.experiment_runs > 0
        # State stayed consistent throughout.
        assert system.db.verify_integrity() == []

    def test_expert_queue_gets_worked(self, system):
        simulator = BusinessSimulator(system, seed=7)
        report = simulator.simulate_days(15)
        assert report.annotations_created > 0
        assert report.annotations_released + report.merges > 0

    def test_deterministic_given_seed(self, tmp_path):
        def run(path):
            sys_ = BFabric(path, clock=ManualClock(dt.datetime(2007, 1, 8)))
            report = BusinessSimulator(sys_, seed=42).simulate_days(6)
            return (
                report.samples, report.imports, report.experiment_runs,
                sys_.deployment_statistics(),
            )

        assert run(tmp_path / "a") == run(tmp_path / "b")

    def test_failures_open_admin_tasks(self, system):
        simulator = BusinessSimulator(system, seed=3)
        report = simulator.simulate_days(25)
        if report.failures:
            admin = system.bootstrap()
            kinds = {t.kind for t in system.tasks.inbox(admin)}
            assert "investigate_failure" in kinds

    def test_audit_grows_with_activity(self, system):
        before = system.audit.count()
        BusinessSimulator(system, seed=7).simulate_days(5)
        assert system.audit.count() > before

    def test_clock_advances_per_day(self, system):
        start = system.clock.now()
        BusinessSimulator(system, seed=7).simulate_days(3)
        assert (system.clock.now() - start).days == 3

    def test_search_reflects_simulated_world(self, system):
        BusinessSimulator(system, seed=7).simulate_days(8)
        admin = system.bootstrap()
        results = system.search.quick_search(admin, "simulated project")
        assert results
