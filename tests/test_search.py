"""Full-text search: tokenizer, index, query language, engine, history."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuerySyntaxError, ValidationError
from repro.facade import BFabric
from repro.search import (
    Document,
    InvertedIndex,
    SearchHistory,
    export_csv,
    export_tsv,
    parse_query,
    tokenize,
)
from repro.util.clock import ManualClock


class TestTokenizer:
    def test_basic(self):
        assert tokenize("Arabidopsis Thaliana") == ["arabidopsis", "thaliana"]

    def test_filename_separators(self):
        assert tokenize("wt_light_1.cel") == ["wt", "light", "1", "cel"]

    def test_stopwords_removed(self):
        assert tokenize("the effect of light on a plant") == [
            "effect", "light", "plant",
        ]

    def test_keep_stopwords(self):
        assert "the" in tokenize("the plant", keep_stopwords=True)

    def test_accents_folded(self):
        assert tokenize("Zürich") == ["zurich"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []


def doc(entity_id, name, description="", entity_type="sample", **metadata):
    return Document(
        entity_type=entity_type,
        entity_id=entity_id,
        fields={"name": name, "description": description},
        metadata=metadata,
    )


class TestInvertedIndex:
    def test_add_and_candidates(self):
        index = InvertedIndex()
        index.add(doc(1, "arabidopsis light"))
        index.add(doc(2, "yeast culture"))
        assert index.candidates("arabidopsis") == {("sample", 1)}
        assert index.candidates("missing") == set()

    def test_reindex_replaces(self):
        index = InvertedIndex()
        index.add(doc(1, "old name"))
        index.add(doc(1, "new name"))
        assert index.candidates("old") == set()
        assert index.candidates("new") == {("sample", 1)}
        assert len(index) == 1

    def test_remove(self):
        index = InvertedIndex()
        index.add(doc(1, "something"))
        assert index.remove("sample", 1)
        assert not index.remove("sample", 1)
        assert index.candidates("something") == set()
        assert index.term_count() == 0

    def test_field_scoped_candidates(self):
        index = InvertedIndex()
        index.add(doc(1, "alpha", description="beta"))
        assert index.candidates("beta", "description") == {("sample", 1)}
        assert index.candidates("beta", "name") == set()

    def test_idf_ranks_rare_terms_higher(self):
        index = InvertedIndex()
        # "light" everywhere, "mutant" only in doc 3.
        index.add(doc(1, "light run one"))
        index.add(doc(2, "light run two"))
        index.add(doc(3, "light mutant"))
        terms = [("light", None), ("mutant", None)]
        scores = {key: index.score(key, terms) for key in index.candidates("light")}
        assert scores[("sample", 3)] > scores[("sample", 1)]

    def test_name_field_boost(self):
        index = InvertedIndex()
        index.add(doc(1, "keyword", description="filler words here"))
        index.add(doc(2, "other", description="keyword filler words"))
        score_name = index.score(("sample", 1), [("keyword", None)])
        score_description = index.score(("sample", 2), [("keyword", None)])
        assert score_name > score_description

    def test_document_frequency(self):
        index = InvertedIndex()
        index.add(doc(1, "x"))
        index.add(doc(2, "x y"))
        assert index.document_frequency("x") == 2
        assert index.document_frequency("y") == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),
                st.text(alphabet="abc ", max_size=12),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_add_remove_round_trip_property(self, entries):
        index = InvertedIndex()
        current: dict[int, str] = {}
        for entity_id, text in entries:
            index.add(doc(entity_id, text))
            current[entity_id] = text
        for entity_id in list(current):
            index.remove("sample", entity_id)
        assert len(index) == 0
        assert index.term_count() == 0


class TestQueryParser:
    def test_plain_terms(self):
        query = parse_query("arabidopsis light")
        assert [c.term for c in query.required] == ["arabidopsis", "light"]

    def test_field_scoped(self):
        query = parse_query("name:arabidopsis")
        assert query.required[0].field == "name"

    def test_negation(self):
        query = parse_query("light -heat")
        assert [c.term for c in query.negated] == ["heat"]

    def test_type_filter(self):
        query = parse_query("type:sample light")
        assert query.types == ["sample"]

    def test_or_group(self):
        query = parse_query("light OR dark")
        assert len(query.any_of) == 1
        assert {c.term for c in query.any_of[0]} == {"light", "dark"}

    def test_or_chain_of_three(self):
        query = parse_query("light OR dark OR heat")
        assert {c.term for c in query.any_of[0]} == {"light", "dark", "heat"}

    def test_mixed(self):
        query = parse_query("type:sample name:wt light OR dark -heat")
        assert query.types == ["sample"]
        assert [c.term for c in query.required] == ["wt"]
        assert len(query.any_of) == 1
        assert [c.term for c in query.negated] == ["heat"]

    def test_pure_negation_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("-light")

    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("   ")

    def test_case_insensitive_or(self):
        query = parse_query("light or dark")
        assert len(query.any_of) == 1


@pytest.fixture
def loaded_system():
    system = BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Sci")
    outsider = system.add_user(admin, login="out", full_name="Out")
    project = system.projects.create(scientist, "Arabidopsis light response")
    system.samples.register_sample(
        scientist, project.id, "wt light 1", species="Arabidopsis Thaliana"
    )
    system.samples.register_sample(
        scientist, project.id, "wt dark 1", species="Arabidopsis Thaliana"
    )
    return system, admin, scientist, outsider, project


class TestSearchEngine:
    def test_quick_search_finds_by_any_field(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.quick_search(scientist, "thaliana")
        assert {r.entity_type for r in results} == {"sample"}
        assert len(results) == 2

    def test_type_filter(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.search(scientist, "type:project arabidopsis")
        assert [r.entity_type for r in results] == ["project"]

    def test_negation(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.search(scientist, "wt -dark")
        assert [r.label for r in results] == ["wt light 1"]

    def test_or_query(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.search(scientist, "light OR dark type:sample")
        assert len(results) == 2

    def test_access_control_hides_foreign_projects(self, loaded_system):
        system, admin, scientist, outsider, _ = loaded_system
        assert system.search.quick_search(outsider, "thaliana") == []
        # Experts see everything.
        assert len(system.search.quick_search(admin, "thaliana")) == 2

    def test_snippet_contains_match(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.quick_search(scientist, "thaliana")
        assert "Thaliana" in results[0].snippet

    def test_limit(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.search(scientist, "wt", limit=1)
        assert len(results) == 1

    def test_empty_quick_search(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        assert system.search.quick_search(scientist, "   ") == []

    def test_removed_document_not_found(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        system.search.remove_document("sample", 1)
        labels = [r.label for r in system.search.quick_search(admin, "wt")]
        assert "wt light 1" not in labels

    def test_statistics(self, loaded_system):
        system, *_ = loaded_system
        stats = system.search.statistics()
        assert stats["documents"] >= 3
        assert stats["terms"] > 0

    def test_reindex_all_matches_event_indexing(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        before = system.search.statistics()
        system.reindex_all()
        after = system.search.statistics()
        assert after["documents"] == before["documents"]


class TestHistory:
    def test_most_recent_first(self):
        history = SearchHistory()
        history.record("a")
        history.record("b")
        assert history.entries() == ["b", "a"]

    def test_rerun_moves_to_front(self):
        history = SearchHistory()
        history.record("a")
        history.record("b")
        history.record("a")
        assert history.entries() == ["a", "b"]

    def test_bounded(self):
        history = SearchHistory(limit=3)
        for i in range(5):
            history.record(f"q{i}")
        assert len(history) == 3
        assert history.entries()[0] == "q4"

    def test_blank_ignored(self):
        history = SearchHistory()
        history.record("   ")
        assert len(history) == 0

    def test_clear(self):
        history = SearchHistory()
        history.record("a")
        history.clear()
        assert history.entries() == []


class TestSavedQueries:
    def test_save_and_rerun_live(self, loaded_system):
        system, admin, scientist, _, project = loaded_system
        system.saved_queries.save(scientist, "my samples", "type:sample wt")
        saved = system.saved_queries.get(scientist, "my samples")
        results = system.search.search(scientist, saved.query)
        assert len(results) == 2
        # New matching object appears on re-run ("at run-time").
        system.samples.register_sample(scientist, project.id, "wt heat 1")
        results = system.search.search(scientist, saved.query)
        assert len(results) == 3

    def test_save_overwrites_same_name(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        system.saved_queries.save(scientist, "q", "light")
        system.saved_queries.save(scientist, "q", "dark")
        assert system.saved_queries.get(scientist, "q").query == "dark"
        assert len(system.saved_queries.list_for(scientist)) == 1

    def test_per_user(self, loaded_system):
        system, admin, scientist, outsider, _ = loaded_system
        system.saved_queries.save(scientist, "q", "light")
        assert system.saved_queries.list_for(outsider) == []

    def test_delete(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        system.saved_queries.save(scientist, "q", "light")
        system.saved_queries.delete(scientist, "q")
        assert system.saved_queries.list_for(scientist) == []

    def test_validation(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        with pytest.raises(ValidationError):
            system.saved_queries.save(scientist, "", "x")
        with pytest.raises(ValidationError):
            system.saved_queries.save(scientist, "x", "  ")


class TestExport:
    def test_csv_round_trip(self, loaded_system, tmp_path):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.quick_search(scientist, "thaliana")
        path = tmp_path / "out.csv"
        text = export_csv(results, path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "entity_type,entity_id,score,label,snippet"
        assert len(lines) == 1 + len(results)

    def test_tsv(self, loaded_system):
        system, admin, scientist, _, _ = loaded_system
        results = system.search.quick_search(scientist, "thaliana")
        text = export_tsv(results)
        assert "\t" in text.splitlines()[0]
