"""The generation-keyed candidate cache in the search engine."""

from repro.search.engine import SearchEngine
from repro.security.principals import SYSTEM, Principal, Role


def make_engine() -> SearchEngine:
    engine = SearchEngine()
    engine.index_document(
        "sample", 1, {"name": "arabidopsis leaf extract"}, label="s1"
    )
    engine.index_document(
        "sample", 2, {"name": "yeast culture"}, label="s2"
    )
    engine.index_document(
        "project", 3, {"name": "arabidopsis light response"}, label="p3"
    )
    return engine


def cache_counts(engine: SearchEngine) -> tuple[float, float]:
    family = engine.obs.metrics.get("search_cache_total")
    return (
        family.labels(result="hit").value,
        family.labels(result="miss").value,
    )


class TestGeneration:
    def test_generation_bumps_on_mutation(self):
        engine = make_engine()
        g0 = engine.index.generation
        engine.index_document("sample", 9, {"name": "mouse liver"})
        assert engine.index.generation > g0
        g1 = engine.index.generation
        engine.remove_document("sample", 9)
        assert engine.index.generation > g1
        g2 = engine.index.generation
        engine.index.clear()
        assert engine.index.generation > g2

    def test_reindex_of_same_document_bumps(self):
        engine = make_engine()
        g0 = engine.index.generation
        engine.index_document("sample", 1, {"name": "renamed"}, label="s1")
        assert engine.index.generation > g0


class TestCandidateCache:
    def test_repeat_query_is_a_hit(self):
        engine = make_engine()
        first = engine.search(SYSTEM, "arabidopsis")
        second = engine.search(SYSTEM, "arabidopsis")
        assert [r.entity_id for r in first] == [r.entity_id for r in second]
        hits, misses = cache_counts(engine)
        assert hits == 1 and misses == 1

    def test_mutation_invalidates(self):
        engine = make_engine()
        assert len(engine.search(SYSTEM, "arabidopsis")) == 2
        engine.index_document(
            "sample", 4, {"name": "arabidopsis root"}, label="s4"
        )
        results = engine.search(SYSTEM, "arabidopsis")
        assert {r.entity_id for r in results} == {1, 3, 4}

    def test_removal_invalidates(self):
        engine = make_engine()
        engine.search(SYSTEM, "arabidopsis")
        engine.remove_document("sample", 1)
        results = engine.search(SYSTEM, "arabidopsis")
        assert {r.entity_id for r in results} == {3}

    def test_type_filter_is_part_of_the_key(self):
        engine = make_engine()
        all_types = engine.search(SYSTEM, "arabidopsis")
        only_projects = engine.search(SYSTEM, "arabidopsis", types=["project"])
        assert {r.entity_type for r in only_projects} == {"project"}
        assert len(all_types) > len(only_projects)

    def test_statistics_expose_cache(self):
        engine = make_engine()
        engine.search(SYSTEM, "arabidopsis")
        stats = engine.statistics()
        assert stats["candidate_cache_entries"] == 1
        assert stats["generation"] == engine.index.generation


class _NoProjectsAcl:
    """An ACL under which non-experts see no projects at all."""

    def visible_project_ids(self, principal):
        return []


class TestAclStaysUncached:
    def test_principals_share_candidates_not_visibility(self):
        engine = SearchEngine(acl=_NoProjectsAcl())
        engine.index_document(
            "sample", 1, {"name": "arabidopsis secret"}, project_id=7,
        )
        outsider = Principal(user_id=5, login="outsider", role=Role.SCIENTIST)
        # The expert sees the document and primes the candidate cache;
        # the outsider's query hits the same cached candidate set but
        # the per-principal ACL pass still filters everything out.
        assert len(engine.search(SYSTEM, "arabidopsis")) == 1
        assert engine.search(outsider, "arabidopsis") == []
        hits, misses = cache_counts(engine)
        assert hits == 1 and misses == 1
