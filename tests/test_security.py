"""Security: roles, project ACLs, password hashing, login sessions."""

import datetime as dt

import pytest

from repro.core.entities import ALL_MODELS
from repro.errors import AccessDenied, AuthenticationError
from repro.orm import Registry
from repro.security import (
    AccessControl,
    Authenticator,
    Permission,
    Principal,
    Role,
    hash_password,
    verify_password,
)
from repro.security.auth import _SESSION_TTL_SECONDS
from repro.storage import Database
from repro.util.clock import ManualClock


@pytest.fixture
def env():
    db = Database()
    registry = Registry(db)
    registry.register_all(ALL_MODELS)
    clock = ManualClock(dt.datetime(2010, 1, 15, 9, 0))
    return db, registry, clock


def make_user(db, login, role="scientist", password=""):
    row = db.insert(
        "user",
        {
            "login": login,
            "full_name": login.title(),
            "role": role,
            "password_hash": hash_password(password) if password else "",
            "active": True,
            "email": "",
            "institute_id": None,
            "created_at": None,
        },
    )
    return Principal(user_id=row["id"], login=login, role=Role(role))


def make_project(db, owner: Principal):
    return db.insert(
        "project",
        {
            "name": f"project of {owner.login}",
            "description": "",
            "created_by": owner.user_id,
            "created_at": None,
        },
    )


class TestRoles:
    def test_expert_flags(self):
        assert not Role.SCIENTIST.is_expert
        assert Role.EMPLOYEE.is_expert
        assert Role.ADMIN.is_expert

    def test_principal_properties(self):
        p = Principal(1, "x", Role.ADMIN)
        assert p.is_admin and p.is_expert
        q = Principal(2, "y", Role.EMPLOYEE)
        assert q.is_expert and not q.is_admin


class TestPasswords:
    def test_round_trip(self):
        stored = hash_password("hunter2")
        assert verify_password("hunter2", stored)
        assert not verify_password("hunter3", stored)

    def test_salts_differ(self):
        assert hash_password("same") != hash_password("same")

    def test_malformed_stored_value(self):
        assert not verify_password("x", "not-a-valid-hash")
        assert not verify_password("x", "")


class TestAccessControl:
    def test_member_can_read_and_write(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        scientist = make_user(db, "sci")
        project = make_project(db, scientist)
        acl.grant(project["id"], scientist.user_id)
        assert acl.can(scientist, Permission.READ, project["id"])
        assert acl.can(scientist, Permission.WRITE, project["id"])
        assert not acl.can(scientist, Permission.MANAGE, project["id"])

    def test_leader_can_manage(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        scientist = make_user(db, "sci")
        project = make_project(db, scientist)
        acl.grant(project["id"], scientist.user_id, "leader")
        assert acl.can(scientist, Permission.MANAGE, project["id"])

    def test_nonmember_denied(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        owner = make_user(db, "owner")
        outsider = make_user(db, "outsider")
        project = make_project(db, owner)
        assert not acl.can(outsider, Permission.READ, project["id"])
        with pytest.raises(AccessDenied):
            acl.require(outsider, Permission.READ, project["id"])

    def test_expert_sees_everything(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        owner = make_user(db, "owner")
        expert = make_user(db, "expert", role="employee")
        project = make_project(db, owner)
        assert acl.can(expert, Permission.READ, project["id"])
        assert acl.can(expert, Permission.MANAGE, project["id"])

    def test_grant_upgrades_role(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        scientist = make_user(db, "sci")
        project = make_project(db, scientist)
        acl.grant(project["id"], scientist.user_id, "member")
        acl.grant(project["id"], scientist.user_id, "leader")
        assert acl.membership_role(scientist, project["id"]) == "leader"
        # No duplicate membership rows.
        assert db.count("project_membership") == 1

    def test_grant_bad_role(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        with pytest.raises(ValueError):
            acl.grant(1, 1, "emperor")

    def test_revoke(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        scientist = make_user(db, "sci")
        project = make_project(db, scientist)
        acl.grant(project["id"], scientist.user_id)
        assert acl.revoke(project["id"], scientist.user_id)
        assert not acl.is_member(scientist, project["id"])
        assert not acl.revoke(project["id"], scientist.user_id)

    def test_visible_project_ids(self, env):
        db, registry, _ = env
        acl = AccessControl(db)
        scientist = make_user(db, "sci")
        expert = make_user(db, "exp", role="employee")
        p1 = make_project(db, scientist)
        p2 = make_project(db, scientist)
        acl.grant(p1["id"], scientist.user_id)
        assert acl.visible_project_ids(scientist) == [p1["id"]]
        assert set(acl.visible_project_ids(expert)) == {p1["id"], p2["id"]}


class TestAuthenticator:
    def test_login_success(self, env):
        db, registry, clock = env
        make_user(db, "ada", password="pw1234")
        auth = Authenticator(db, clock=clock)
        session = auth.login("ada", "pw1234")
        assert session.principal.login == "ada"
        assert auth.resolve(session.token) is session

    def test_login_bad_password(self, env):
        db, registry, clock = env
        make_user(db, "ada", password="pw1234")
        auth = Authenticator(db, clock=clock)
        with pytest.raises(AuthenticationError):
            auth.login("ada", "wrong")

    def test_login_unknown_user(self, env):
        db, registry, clock = env
        auth = Authenticator(db, clock=clock)
        with pytest.raises(AuthenticationError):
            auth.login("ghost", "pw")

    def test_inactive_user_rejected(self, env):
        db, registry, clock = env
        principal = make_user(db, "ada", password="pw1234")
        db.update("user", principal.user_id, {"active": False})
        auth = Authenticator(db, clock=clock)
        with pytest.raises(AuthenticationError):
            auth.login("ada", "pw1234")

    def test_session_expiry(self, env):
        db, registry, clock = env
        make_user(db, "ada", password="pw1234")
        auth = Authenticator(db, clock=clock)
        session = auth.login("ada", "pw1234")
        clock.advance(seconds=_SESSION_TTL_SECONDS + 1)
        with pytest.raises(AuthenticationError):
            auth.resolve(session.token)

    def test_logout(self, env):
        db, registry, clock = env
        make_user(db, "ada", password="pw1234")
        auth = Authenticator(db, clock=clock)
        session = auth.login("ada", "pw1234")
        auth.logout(session.token)
        with pytest.raises(AuthenticationError):
            auth.resolve(session.token)

    def test_active_session_count(self, env):
        db, registry, clock = env
        make_user(db, "ada", password="pw1234")
        auth = Authenticator(db, clock=clock)
        auth.login("ada", "pw1234")
        auth.login("ada", "pw1234")
        assert auth.active_sessions() == 2
