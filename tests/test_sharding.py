"""Sharded write path: routing, scatter-gather reads, 2PC, drop-in N=1."""

import pytest

from repro.errors import (
    CrashPoint,
    FaultInjected,
    RowNotFound,
    SchemaError,
    TransactionError,
)
from repro.resilience.faults import Fault, FaultPlan, inject
from repro.storage import Column, ColumnType, TableSchema
from repro.storage.sharding import (
    ShardedDatabase,
    ShardRouter,
    stable_hash,
)


def _schemas() -> list[TableSchema]:
    """A B-Fabric-shaped slice: projects, project-scoped samples, a
    global reference table, and a plain hash-routed table."""
    return [
        TableSchema(
            name="app_user",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("login", ColumnType.TEXT, nullable=False, unique=True),
            ],
        ),
        TableSchema(
            name="project",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("name", ColumnType.TEXT, nullable=False),
            ],
        ),
        TableSchema(
            name="sample",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("project_id", ColumnType.INT, nullable=False),
                Column("kind", ColumnType.TEXT),
                Column("mass", ColumnType.FLOAT),
            ],
            indexes=["project_id"],
        ),
        TableSchema(
            name="note",
            columns=[
                Column("id", ColumnType.INT, primary_key=True),
                Column("body", ColumnType.TEXT),
            ],
        ),
    ]


def _make(tmp_path=None, shards=4, **kwargs):
    kwargs.setdefault("router", ShardRouter(global_tables={"app_user"}))
    sdb = ShardedDatabase(tmp_path, shards=shards, **kwargs)
    for schema in _schemas():
        sdb.create_table(schema)
    return sdb


@pytest.fixture
def sdb():
    database = _make(shards=4)
    yield database
    database.close()


def pk_on_shard(sdb, shard, *, start=1):
    """A pk (from *start*) that stable-hashes onto *shard*."""
    return next(
        i for i in range(start, start + 10_000) if sdb.shard_index(i) == shard
    )


class TestRouter:
    def test_stable_hash_is_deterministic_and_type_tagged(self):
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash("42") != stable_hash(42)
        assert stable_hash(True) != stable_hash(1)
        spread = {stable_hash(i) % 4 for i in range(64)}
        assert spread == {0, 1, 2, 3}

    def test_placements(self, sdb):
        placements = {
            name: sdb.placement(name)[0] for name in sdb.table_names()
        }
        assert placements == {
            "app_user": "global",
            "project": "project",
            "sample": "project",
            "note": "hash",
        }
        # The project table routes by its own pk; children by project_id.
        assert sdb.placement("project")[1] == "id"
        assert sdb.placement("sample")[1] == "project_id"

    def test_parent_placement_follows_fk(self, sdb):
        sdb.create_table(
            TableSchema(
                name="sample_note",
                columns=[
                    Column("id", ColumnType.INT, primary_key=True),
                    Column(
                        "sample_id",
                        ColumnType.INT,
                        foreign_key="sample.id",
                    ),
                ],
            )
        )
        assert sdb.placement("sample_note") == (
            "parent",
            "sample_id",
            "sample",
        )
        project = sdb.insert("project", {"name": "p"})
        sample = sdb.insert(
            "sample", {"project_id": project["id"], "kind": "dna"}
        )
        note = sdb.insert("sample_note", {"sample_id": sample["id"]})
        home = sdb.shard_index(project["id"])
        assert note["id"] in sdb.shard(home).table("sample_note")

    def test_unknown_table_raises_early(self, sdb):
        with pytest.raises(SchemaError):
            sdb.placement("nope")
        with pytest.raises(SchemaError):
            sdb.query("nope")


class TestRoutedWrites:
    def test_project_and_children_colocate(self, sdb):
        for _ in range(8):
            project = sdb.insert("project", {"name": "p"})
            sample = sdb.insert(
                "sample", {"project_id": project["id"], "kind": "dna"}
            )
            home = sdb.shard_index(project["id"])
            assert project["id"] in sdb.shard(home).table("project")
            assert sample["id"] in sdb.shard(home).table("sample")

    def test_autoincrement_pks_unique_across_shards(self, sdb):
        ids = [sdb.insert("note", {"body": "x"})["id"] for _ in range(24)]
        assert len(set(ids)) == 24
        used = {sid for sid in range(4) if sdb.shard(sid).count("note")}
        assert len(used) > 1  # the workload really is spread out

    def test_update_delete_route_to_owner(self, sdb):
        note = sdb.insert("note", {"body": "before"})
        assert sdb.update("note", note["id"], {"body": "after"})["body"] == (
            "after"
        )
        assert sdb.get("note", note["id"])["body"] == "after"
        sdb.delete("note", note["id"])
        assert sdb.get_or_none("note", note["id"]) is None
        with pytest.raises(RowNotFound):
            sdb.update("note", note["id"], {"body": "gone"})

    def test_routing_column_update_cannot_migrate_rows(self, sdb):
        project = sdb.insert("project", {"name": "p"})
        sample = sdb.insert(
            "sample", {"project_id": project["id"], "kind": "dna"}
        )
        home = sdb.shard_index(project["id"])
        other_project = pk_on_shard(sdb, (home + 1) % 4)
        with pytest.raises(TransactionError, match="migration"):
            sdb.update("sample", sample["id"], {"project_id": other_project})
        # A same-shard routing value is fine.
        same = pk_on_shard(sdb, home, start=project["id"] + 1)
        updated = sdb.update("sample", sample["id"], {"project_id": same})
        assert updated["project_id"] == same


class TestGlobalTables:
    def test_global_writes_fan_out_to_every_shard(self, sdb):
        user = sdb.insert("app_user", {"login": "ada"})
        for sid in range(4):
            assert user["id"] in sdb.shard(sid).table("app_user")
        sdb.update("app_user", user["id"], {"login": "ada2"})
        for sid in range(4):
            row = sdb.shard(sid).get("app_user", user["id"])
            assert row["login"] == "ada2"
        sdb.delete("app_user", user["id"])
        for sid in range(4):
            assert user["id"] not in sdb.shard(sid).table("app_user")

    def test_global_reads_hit_shard_zero(self, sdb):
        sdb.insert("app_user", {"login": "ada"})
        plan = sdb.query("app_user").explain()
        assert plan["routing"] == "global"
        assert plan["shards_consulted"] == [0]
        assert sdb.count("app_user") == 1  # not 4

    def test_verify_integrity_flags_global_divergence(self, sdb):
        sdb.insert("app_user", {"login": "ada"})
        assert sdb.verify_integrity() == []
        sdb.shard(2).insert("app_user", {"id": 99, "login": "rogue"})
        problems = sdb.verify_integrity()
        assert any("app_user" in p and "shard 2" in p for p in problems)

    def test_verify_integrity_flags_duplicate_partitioned_pk(self, sdb):
        note = sdb.insert("note", {"body": "x"})
        wrong = (sdb.shard_index(note["id"]) + 1) % 4
        sdb.shard(wrong).insert("note", {"id": note["id"], "body": "dup"})
        problems = sdb.verify_integrity()
        assert any("present on shards" in p for p in problems)


class TestScatterGatherQueries:
    @pytest.fixture
    def loaded(self, sdb):
        for i in range(1, 41):
            sdb.insert(
                "sample",
                {
                    "id": i,
                    "project_id": i % 5,
                    "kind": "dna" if i % 2 else "rna",
                    "mass": float(i),
                },
            )
        return sdb

    def test_scatter_merges_order_limit_offset(self, loaded):
        rows = (
            loaded.query("sample")
            .order_by("mass", descending=True)
            .offset(2)
            .limit(3)
            .all()
        )
        assert [row["id"] for row in rows] == [38, 37, 36]

    def test_count_exists_values(self, loaded):
        q = loaded.query("sample").where("kind", "=", "dna")
        assert q.count() == 20
        assert q.exists()
        assert loaded.count("sample") == 40
        assert set(loaded.query("sample").distinct_values("kind")) == {
            "dna",
            "rna",
        }

    def test_eq_on_routing_column_goes_direct(self, loaded):
        plan = loaded.query("sample").where("project_id", "=", 3).explain()
        assert plan["routing"] == "direct"
        assert plan["shards_consulted"] == [loaded.shard_index(3)]
        rows = loaded.query("sample").where("project_id", "=", 3).all()
        assert sorted(row["id"] for row in rows) == [3, 8, 13, 18, 23, 28, 33, 38]

    def test_scatter_explain_reports_fanout(self, loaded):
        plan = loaded.query("sample").where("kind", "=", "dna").explain()
        assert plan["routing"] == "scatter"
        assert plan["shards_consulted"] == [0, 1, 2, 3]
        assert set(plan["shards"]) == {0, 1, 2, 3}

    def test_aggregates_merge_across_shards(self, loaded):
        q = loaded.query("sample")
        assert q.aggregate("mass", "sum") == sum(range(1, 41))
        assert q.aggregate("mass", "min") == 1.0
        assert q.aggregate("mass", "max") == 40.0
        assert q.aggregate("mass", "avg") == pytest.approx(20.5)
        assert q.aggregate("id", "count") == 40

    def test_group_by_merges_across_shards(self, loaded):
        counts = loaded.query("sample").group_by("project_id")
        assert counts == {0: 8, 1: 8, 2: 8, 3: 8, 4: 8}
        avgs = loaded.query("sample").group_by(
            "kind", aggregate="avg", value_column="mass"
        )
        assert avgs["dna"] == pytest.approx(20.0)
        assert avgs["rna"] == pytest.approx(21.0)

    def test_snapshot_pinned_query(self, loaded):
        with loaded.snapshot() as snap:
            loaded.insert(
                "sample", {"project_id": 1, "kind": "dna", "mass": 999.0}
            )
            assert snap.count("sample") == 40
            assert snap.query("sample").where("kind", "=", "dna").count() == 20
        assert loaded.count("sample") == 41


class TestCrossShardTransactions:
    def test_cross_shard_commit_is_atomic_and_counted(self, sdb):
        a = pk_on_shard(sdb, 0)
        b = pk_on_shard(sdb, 1)
        with sdb.transaction() as txn:
            txn.insert("note", {"id": a, "body": "a"})
            txn.insert("note", {"id": b, "body": "b"})
        assert a in sdb.shard(0).table("note")
        assert b in sdb.shard(1).table("note")
        samples = dict(
            (labels["outcome"], child.value)
            for labels, child in sdb.obs.metrics.get(
                "storage_2pc_total"
            ).samples()
        )
        assert samples.get("commit") == 1

    def test_cross_shard_rollback_undoes_every_shard(self, sdb):
        a = pk_on_shard(sdb, 0)
        b = pk_on_shard(sdb, 1)
        txn = sdb.transaction()
        txn.insert("note", {"id": a, "body": "a"})
        txn.insert("note", {"id": b, "body": "b"})
        txn.rollback()
        assert sdb.count("note") == 0
        with pytest.raises(TransactionError):
            txn.insert("note", {"id": a, "body": "again"})

    def test_commit_records_carry_gtid(self, sdb):
        a = pk_on_shard(sdb, 0)
        b = pk_on_shard(sdb, 1)
        with sdb.transaction() as txn:
            txn.insert("note", {"id": a, "body": "a"})
            txn.insert("note", {"id": b, "body": "b"})
        # In-memory deployment: WALs are None, protocol not exercised.
        assert sdb.shard(0).wal is None

    def test_single_shard_wrapper_txn_routes_direct(self, sdb):
        a = pk_on_shard(sdb, 2)
        with sdb.transaction() as txn:
            txn.insert("note", {"id": a, "body": "a"})
            txn.update("note", a, {"body": "b"})
        family = sdb.obs.metrics.get("storage_2pc_total")
        assert all(child.value == 0 for _l, child in family.samples())
        assert sdb.get("note", a)["body"] == "b"

    def test_failure_before_decision_presumes_abort(self, sdb):
        a = pk_on_shard(sdb, 0)
        b = pk_on_shard(sdb, 1)
        plan = FaultPlan([Fault("2pc.decide", kind="error", at_call=1)])
        with inject(plan):
            with pytest.raises(FaultInjected):
                with sdb.transaction() as txn:
                    txn.insert("note", {"id": a, "body": "a"})
                    txn.insert("note", {"id": b, "body": "b"})
        assert sdb.count("note") == 0
        samples = dict(
            (labels["outcome"], child.value)
            for labels, child in sdb.obs.metrics.get(
                "storage_2pc_total"
            ).samples()
        )
        assert samples.get("abort") == 1
        # The deployment stays writable afterwards.
        with sdb.transaction() as txn:
            txn.insert("note", {"id": a, "body": "retry"})
            txn.insert("note", {"id": b, "body": "retry"})
        assert sdb.count("note") == 2

    def test_savepoint_rolls_back_later_touched_shard(self, sdb):
        a = pk_on_shard(sdb, 0)
        b = pk_on_shard(sdb, 1)
        with sdb.transaction() as txn:
            txn.insert("note", {"id": a, "body": "keep"})
            txn.savepoint("sp")
            txn.insert("note", {"id": b, "body": "drop"})
            txn.rollback_to("sp")
        assert sdb.get("note", a)["body"] == "keep"
        assert sdb.get_or_none("note", b) is None

    def test_snapshot_vector_never_sees_half_a_2pc(self, sdb):
        a = pk_on_shard(sdb, 0)
        b = pk_on_shard(sdb, 1)
        before = sdb.snapshot()
        with sdb.transaction() as txn:
            txn.insert("note", {"id": a, "body": "a"})
            txn.insert("note", {"id": b, "body": "b"})
        after = sdb.snapshot()
        assert before.count("note") == 0
        assert after.count("note") == 2
        assert len(after.vector) == 4
        before.close()
        after.close()


class TestCoordinatorAggregation:
    def test_statistics_and_shard_status(self, sdb):
        sdb.insert("project", {"name": "p"})
        sdb.insert("app_user", {"login": "ada"})
        stats = sdb.statistics()
        assert stats["tables"] == {
            "project": 1,
            "app_user": 1,
            "sample": 0,
            "note": 0,
        }
        sharding = stats["sharding"]
        assert sharding["shards"] == 4
        assert sharding["placements"]["app_user"] == "global"
        assert len(sharding["per_shard"]) == 4
        assert {row["shard"] for row in sharding["per_shard"]} == {0, 1, 2, 3}

    def test_mvcc_gauges_aggregate_across_shards(self, sdb):
        snaps = [sdb.shard(sid).snapshot() for sid in range(3)]
        assert sdb.open_snapshots() == 3
        vector = sdb.snapshot()
        assert sdb.open_snapshot_vectors() == 1
        assert sdb.open_snapshots() == 7  # 3 + one per shard
        for snap in snaps:
            snap.close()
        vector.close()
        assert sdb.open_snapshot_vectors() == 0
        assert sdb.open_snapshots() == 0

    def test_prune_versions_sums_per_table_across_shards(self, sdb):
        pks = [sdb.insert("note", {"body": "x"})["id"] for _ in range(12)]
        for pk in pks:
            sdb.update("note", pk, {"body": "y"})
        reclaimed = sdb.prune_versions()
        assert reclaimed.get("note", 0) >= 12

    def test_version_horizon_is_most_conservative_shard(self, sdb):
        sdb.insert("note", {"body": "x"})
        assert sdb.version_horizon() == min(
            sdb.shard(sid).version_horizon() for sid in range(4)
        )


class TestDropInSingleShard:
    """N=1 must behave like a plain Database behind the same API."""

    def test_database_shaped_surface(self):
        sdb = _make(shards=1)
        row = sdb.insert("note", {"body": "x"})
        assert sdb.get("note", row["id"])["body"] == "x"
        assert sdb.table("note").schema.name == "note"
        with sdb.transaction() as txn:
            txn.insert("note", {"body": "y"})
        assert sdb.count("note") == 2
        with sdb.snapshot() as snap:
            sdb.insert("note", {"body": "z"})
            assert snap.count("note") == 2
        plan = sdb.query("note").explain()
        assert plan["routing"] == "direct"
        assert plan["shards_consulted"] == [0]
        assert sdb.statistics()["sharding"]["shards"] == 1
        sdb.close()

    def test_partitioned_table_access_raises_at_n_gt_1(self, sdb):
        with pytest.raises(SchemaError, match="partitioned"):
            sdb.table("note")
        # Global tables still expose a single authoritative Table.
        assert sdb.table("app_user").schema.name == "app_user"


class TestShardMapPersistence:
    def test_reopen_with_other_count_refuses(self, tmp_path):
        sdb = _make(tmp_path / "d", shards=2)
        sdb.insert("note", {"body": "x"})
        sdb.close()
        assert ShardedDatabase.stored_shard_count(tmp_path / "d") == 2
        with pytest.raises(SchemaError, match="resharding"):
            _make(tmp_path / "d", shards=4)

    def test_shards_get_independent_directories_and_wals(self, tmp_path):
        sdb = _make(tmp_path / "d", shards=2, durability="always")
        a = pk_on_shard(sdb, 0)
        b = pk_on_shard(sdb, 1)
        sdb.insert("note", {"id": a, "body": "a"})
        sdb.insert("note", {"id": b, "body": "b"})
        assert (tmp_path / "d" / "shard-0").is_dir()
        assert (tmp_path / "d" / "shard-1").is_dir()
        wal0 = sdb.shard(0).wal
        wal1 = sdb.shard(1).wal
        assert wal0 is not None and wal1 is not None
        assert wal0.path != wal1.path
        kinds0 = [r["kind"] for r in wal0.records()]
        assert "commit" in kinds0
        sdb.close()

    def test_reopen_recover_restores_rows_and_allocator(self, tmp_path):
        sdb = _make(tmp_path / "d", shards=2, durability="always")
        ids = [sdb.insert("note", {"body": "x"})["id"] for _ in range(6)]
        sdb.close()
        again = _make(tmp_path / "d", shards=2, durability="always")
        again.recover()
        assert again.count("note") == 6
        fresh = again.insert("note", {"body": "new"})["id"]
        assert fresh not in ids
        again.close()
