"""2PC crash recovery: presumed abort, roll-forward, torn decision logs."""

import pytest

from repro.errors import CrashPoint, FaultInjected
from repro.resilience.faults import Fault, FaultPlan, inject
from repro.resilience.torture import run_shard_torture
from repro.storage import Column, ColumnType, TableSchema
from repro.storage.sharding import ShardedDatabase


def _schema() -> TableSchema:
    return TableSchema(
        name="row",
        columns=[
            Column("id", ColumnType.INT, primary_key=True),
            Column("value", ColumnType.TEXT),
        ],
    )


def _open(path, shards=2) -> ShardedDatabase:
    sdb = ShardedDatabase(path, shards=shards, durability="always")
    sdb.create_table(_schema())
    return sdb


def _pks(sdb):
    """One pk per shard so a two-row transaction is truly cross-shard."""
    a = next(i for i in range(1, 2000) if sdb.shard_index(i) == 0)
    b = next(i for i in range(1, 2000) if sdb.shard_index(i) == 1)
    return a, b


def _crash_cross_shard(tmp_path, site, at_call):
    """Run a cross-shard commit into a crash at *site*; abandon; reopen."""
    directory = tmp_path / "deploy"
    sdb = _open(directory)
    a, b = _pks(sdb)
    sdb.insert("row", {"id": a + 500, "value": "baseline"})
    plan = FaultPlan(
        [Fault(site, kind="error", at_call=at_call, error=CrashPoint)]
    )
    with inject(plan):
        txn = sdb.transaction()
        txn.insert("row", {"id": a, "value": "xa"})
        txn.insert("row", {"id": b, "value": "xb"})
        with pytest.raises(FaultInjected):
            txn.commit()
    del txn
    del sdb  # crash: no close(), no rollback
    recovered = _open(directory)
    stats = recovered.recover()
    return recovered, (a, b), stats


class TestCrashPoints:
    def test_crash_between_prepare_and_decision_aborts(self, tmp_path):
        recovered, (a, b), _ = _crash_cross_shard(tmp_path, "2pc.prepare", 2)
        present = {row["id"] for row in recovered.rows("row")}
        assert a not in present and b not in present
        assert a + 500 in present  # surrounding durable commit survives
        assert recovered.verify_integrity() == []
        recovered.close()

    def test_crash_before_decision_record_aborts(self, tmp_path):
        recovered, (a, b), _ = _crash_cross_shard(tmp_path, "2pc.decide", 1)
        present = {row["id"] for row in recovered.rows("row")}
        assert a not in present and b not in present
        recovered.close()

    def test_crash_after_decision_rolls_forward(self, tmp_path):
        recovered, (a, b), _ = _crash_cross_shard(tmp_path, "2pc.commit", 1)
        present = {row["id"] for row in recovered.rows("row")}
        assert a in present and b in present
        assert recovered.get("row", a)["value"] == "xa"
        assert recovered.verify_integrity() == []
        recovered.close()

    def test_partial_phase_two_is_completed_not_halved(self, tmp_path):
        # Second fault call: shard 0's commit record was dispatched,
        # shard 1's never was — recovery must finish the job.
        recovered, (a, b), _ = _crash_cross_shard(tmp_path, "2pc.commit", 2)
        present = {row["id"] for row in recovered.rows("row")}
        assert a in present and b in present
        recovered.close()

    def test_resolution_is_durable_without_decision_log(self, tmp_path):
        recovered, (a, b), _ = _crash_cross_shard(tmp_path, "2pc.commit", 1)
        recovered.close()
        # The first recovery reset the decision log; the answer must be
        # baked into the shard WALs now.
        assert (tmp_path / "deploy" / "coordinator.log").stat().st_size == 0
        again = _open(tmp_path / "deploy")
        again.recover()
        present = {row["id"] for row in again.rows("row")}
        assert a in present and b in present
        again.close()


class TestDecisionLog:
    def test_torn_decision_tail_heals_as_presumed_abort(self, tmp_path):
        recovered, (a, b), _ = _crash_cross_shard(tmp_path, "2pc.decide", 1)
        recovered.close()
        log = tmp_path / "deploy" / "coordinator.log"
        with open(log, "a", encoding="utf-8") as fh:
            fh.write('deadbeef {"kind": "decision", "gt')
        again = _open(tmp_path / "deploy")
        again.recover()  # must not choke on the torn record
        present = {row["id"] for row in again.rows("row")}
        assert a not in present and b not in present
        again.close()

    def test_recover_resets_decision_log(self, tmp_path):
        directory = tmp_path / "deploy"
        sdb = _open(directory)
        a, b = _pks(sdb)
        with sdb.transaction() as txn:
            txn.insert("row", {"id": a, "value": "xa"})
            txn.insert("row", {"id": b, "value": "xb"})
        assert (directory / "coordinator.log").stat().st_size > 0
        sdb.close()
        again = _open(directory)
        again.recover()
        assert (directory / "coordinator.log").stat().st_size == 0
        assert again.count("row") == 2
        again.close()


class TestAllocatorContinuity:
    def test_pk_allocation_resumes_past_recovered_rows(self, tmp_path):
        recovered, (a, b), _ = _crash_cross_shard(tmp_path, "2pc.commit", 1)
        fresh = recovered.insert("row", {"value": "new"})["id"]
        assert fresh > max(a, b, a + 500)
        recovered.close()


class TestTortureDriver:
    def test_shard_torture_passes_every_crash_point(self, tmp_path):
        report = run_shard_torture(tmp_path, shards=2, seed=7)
        problems = [p for case in report.cases for p in case.problems]
        assert problems == []
        assert all(case.fired for case in report.cases)
        assert {case.site for case in report.cases} == {
            "prepare-partial",
            "decide-lost",
            "decide-torn-tail",
            "commit-none-published",
            "commit-half-published",
        }

    def test_shard_torture_requires_two_shards(self, tmp_path):
        with pytest.raises(ValueError):
            run_shard_torture(tmp_path, shards=1)
