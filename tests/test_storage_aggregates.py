"""Aggregation: Query.aggregate and Query.group_by."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchemaError
from repro.storage import Column, ColumnType, Database, TableSchema


@pytest.fixture
def sales(people_db: Database) -> Database:
    fgcz = people_db.insert("org", {"name": "FGCZ"})
    eth = people_db.insert("org", {"name": "ETH"})
    rows = [
        ("a", 30, fgcz["id"]),
        ("b", 40, fgcz["id"]),
        ("c", 50, eth["id"]),
        ("d", None, eth["id"]),
        ("e", 20, None),
    ]
    for name, age, org in rows:
        people_db.insert("person", {"name": name, "age": age, "org_id": org})
    return people_db


class TestAggregate:
    def test_count_ignores_nulls(self, sales):
        assert sales.query("person").aggregate("age", "count") == 4

    def test_sum(self, sales):
        assert sales.query("person").aggregate("age", "sum") == 140

    def test_min_max(self, sales):
        assert sales.query("person").aggregate("age", "min") == 20
        assert sales.query("person").aggregate("age", "max") == 50

    def test_avg(self, sales):
        assert sales.query("person").aggregate("age", "avg") == 35

    def test_with_filter(self, sales):
        total = (
            sales.query("person").where("org_id", "=", 1).aggregate("age", "sum")
        )
        assert total == 70

    def test_empty_result_semantics(self, sales):
        empty = sales.query("person").where("name", "=", "nobody")
        assert empty.aggregate("age", "sum") == 0
        assert empty.aggregate("age", "count") == 0
        assert empty.aggregate("age", "min") is None
        assert empty.aggregate("age", "avg") is None

    def test_unknown_column(self, sales):
        with pytest.raises(SchemaError):
            sales.query("person").aggregate("bogus", "sum")

    def test_unknown_function(self, sales):
        with pytest.raises(SchemaError):
            sales.query("person").aggregate("age", "median")


class TestGroupBy:
    def test_count_per_group(self, sales):
        groups = sales.query("person").group_by("org_id")
        assert groups == {1: 2, 2: 2, None: 1}

    def test_sum_per_group(self, sales):
        groups = sales.query("person").group_by(
            "org_id", aggregate="sum", value_column="age"
        )
        assert groups == {1: 70, 2: 50, None: 20}

    def test_avg_per_group_skips_nulls(self, sales):
        groups = sales.query("person").group_by(
            "org_id", aggregate="avg", value_column="age"
        )
        assert groups[2] == 50  # d's NULL age is ignored

    def test_min_of_empty_group_is_none(self, sales):
        # Group of one row whose value column is NULL.
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("g", ColumnType.INT),
                    Column("v", ColumnType.INT),
                ],
            )
        )
        db.insert("t", {"g": 1, "v": None})
        groups = db.query("t").group_by("g", aggregate="min", value_column="v")
        assert groups == {1: None}

    def test_group_by_respects_filters(self, sales):
        groups = (
            sales.query("person").where("age", ">=", 40).group_by("org_id")
        )
        assert groups == {1: 1, 2: 1}

    def test_unknown_value_column(self, sales):
        with pytest.raises(SchemaError):
            sales.query("person").group_by("org_id", value_column="bogus")

    @given(
        values=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=-100, max_value=100),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_group_sums_equal_total_sum(self, values):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("g", ColumnType.INT),
                    Column("v", ColumnType.INT),
                ],
                indexes=["g"],
            )
        )
        for g, v in values:
            db.insert("t", {"g": g, "v": v})
        groups = db.query("t").group_by("g", aggregate="sum", value_column="v")
        assert sum(groups.values()) == db.query("t").aggregate("v", "sum")


class TestDistinctValues:
    def test_distinct_sorted_non_null(self, sales):
        assert sales.query("person").distinct_values("org_id") == [1, 2]

    def test_distinct_with_filter(self, sales):
        values = (
            sales.query("person").where("age", ">=", 40).distinct_values("org_id")
        )
        assert values == [1, 2]

    def test_distinct_unknown_column(self, sales):
        import pytest
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            sales.query("person").distinct_values("bogus")
