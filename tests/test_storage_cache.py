"""Version-keyed query-result caching: hits, invalidation, explain."""

import pytest

from repro.storage import Column, ColumnType, Database, TableSchema


def make_db(*, cache_size: int = 64) -> Database:
    db = Database(query_cache_size=cache_size)
    db.create_table(
        TableSchema(
            "doc",
            [
                Column("id", ColumnType.INT, primary_key=True),
                Column("project", ColumnType.INT, nullable=False),
                Column("title", ColumnType.TEXT, nullable=False),
            ],
            indexes=["project"],
        )
    )
    for i in range(10):
        db.insert("doc", {"id": i, "project": i % 3, "title": f"doc {i}"})
    return db


def lookup_counts(db: Database) -> dict[str, float]:
    return db.query_cache.statistics()["lookups"]


class TestCacheHits:
    def test_repeat_query_hits(self):
        db = make_db()
        first = db.query("doc").where("project", "=", 1).all()
        second = db.query("doc").where("project", "=", 1).all()
        assert first == second
        counts = lookup_counts(db)
        assert counts["hit"] >= 1

    def test_hit_returns_copies(self):
        db = make_db()
        db.query("doc").where("project", "=", 1).all()
        stolen = db.query("doc").where("project", "=", 1).all()
        stolen[0]["title"] = "mutated"
        clean = db.query("doc").where("project", "=", 1).all()
        assert clean[0]["title"] != "mutated"

    def test_count_cached_separately_from_rows(self):
        db = make_db()
        q1 = db.query("doc").where("project", "=", 2)
        assert q1.count() == len(db.query("doc").where("project", "=", 2).all())
        assert db.query("doc").where("project", "=", 2).count() == q1.count()

    def test_lru_eviction_is_bounded(self):
        db = make_db(cache_size=4)
        for i in range(10):
            db.query("doc").where("id", "=", i).all()
        stats = db.query_cache.statistics()
        assert stats["entries"] <= 4
        assert stats["evictions"] >= 6


class TestInvalidation:
    def test_insert_invalidates(self):
        db = make_db()
        before = db.query("doc").where("project", "=", 0).all()
        db.insert("doc", {"id": 100, "project": 0, "title": "new"})
        after = db.query("doc").where("project", "=", 0).all()
        assert len(after) == len(before) + 1

    def test_update_invalidates(self):
        db = make_db()
        db.query("doc").where("project", "=", 1).all()
        db.update("doc", 1, {"project": 2})
        assert all(
            row["id"] != 1 for row in db.query("doc").where("project", "=", 1).all()
        )

    def test_delete_invalidates(self):
        db = make_db()
        db.query("doc").where("project", "=", 1).all()
        db.delete("doc", 1)
        ids = [r["id"] for r in db.query("doc").where("project", "=", 1).all()]
        assert 1 not in ids

    def test_dirty_table_bypasses_cache(self):
        db = make_db()
        db.query("doc").where("project", "=", 0).all()
        with db.transaction() as txn:
            txn.insert("doc", {"id": 200, "project": 0, "title": "uncommitted"})
            inside = db.query("doc").where("project", "=", 0).all()
            # The uncommitted row is visible to the transaction's own
            # connection but must come from a live read, not the cache.
            assert any(r["id"] == 200 for r in inside)
        counts = lookup_counts(db)
        assert counts.get("bypass", 0) >= 1


class TestRollback:
    def test_rollback_keeps_version_and_cache(self):
        db = make_db()
        table = db.table("doc")
        cached = db.query("doc").where("project", "=", 0).all()
        version = table.version
        txn = db.transaction()
        txn.insert("doc", {"id": 300, "project": 0, "title": "doomed"})
        txn.rollback()
        # No commit happened: the version must not move, so the old
        # cache entry is still valid and served again.
        assert table.version == version
        again = db.query("doc").where("project", "=", 0).all()
        assert again == cached
        assert lookup_counts(db)["hit"] >= 1

    def test_rollback_never_leaks_uncommitted_rows(self):
        db = make_db()
        txn = db.transaction()
        txn.insert("doc", {"id": 301, "project": 0, "title": "ghost"})
        txn.rollback()
        rows = db.query("doc").where("project", "=", 0).all()
        assert all(row["id"] != 301 for row in rows)


class TestExplain:
    def test_explain_reports_miss_then_hit(self):
        db = make_db()
        query = db.query("doc").where("project", "=", 1)
        assert query.explain()["cache"] == "miss"
        query.all()
        assert query.explain()["cache"] == "hit"

    def test_explain_reports_bypass_for_forced_scan(self):
        db = make_db()
        query = db.query("doc").where("project", "=", 1).without_indexes()
        plan = query.explain()
        assert plan["strategy"] == "scan"
        assert plan["cache"] == "bypassed"

    def test_fingerprint_distinguishes_plans(self):
        db = make_db()
        indexed = db.query("doc").where("project", "=", 1)
        scan = db.query("doc").where("project", "=", 1).without_indexes()
        assert indexed.explain()["strategy"].startswith("index:")
        assert scan.explain()["strategy"] == "scan"
        assert indexed.fingerprint() != scan.fingerprint()

    def test_fingerprint_stable_for_same_shape(self):
        db = make_db()
        a = db.query("doc").where("project", "=", 1).order_by("id").limit(3)
        b = db.query("doc").where("project", "=", 1).order_by("id").limit(3)
        assert a.fingerprint() == b.fingerprint()

    def test_cache_disabled_always_bypasses(self):
        db = make_db(cache_size=0)
        query = db.query("doc").where("project", "=", 1)
        query.all()
        assert query.explain()["cache"] == "bypassed"
        assert len(db.query_cache) == 0

    def test_explain_reports_cache_key_provenance(self):
        db = make_db()
        plan = db.query("doc").where("project", "=", 1).explain()
        key = plan["cache_key"]
        assert key["table"] == "doc"
        assert key["version"] == db.table("doc").version
        assert key["kind"] == "rows"
        assert isinstance(key["fingerprint"], str)

    def test_bypassed_query_has_no_cache_key(self):
        db = make_db()
        plan = db.query("doc").where("project", "=", 1).without_indexes().explain()
        assert plan["cache"] == "bypassed"
        assert plan["cache_key"] is None


class TestSnapshotCaching:
    def test_snapshot_and_live_share_cache_entries(self):
        """While the table sits at the snapshot's version, both paths
        compute the same (table, version, kind, fingerprint) key: a
        live query warms the cache for snapshot readers and vice
        versa."""
        db = make_db()
        with db.snapshot() as snap:
            live_key = db.query("doc").where("project", "=", 1).explain()[
                "cache_key"
            ]
            snap_key = snap.query("doc").where("project", "=", 1).explain()[
                "cache_key"
            ]
            assert live_key == snap_key
            db.query("doc").where("project", "=", 1).all()
            assert (
                snap.query("doc").where("project", "=", 1).explain()["cache"]
                == "hit"
            )

    def test_commit_landing_mid_query_never_caches_the_stale_result(self):
        """A commit racing a snapshot query's execution must not
        publish the snapshot-state rows into the shared cache: the put
        re-verifies that the version captured for the key is still
        current, so live readers at the new version recompute."""
        db = make_db()
        with db.snapshot() as snap:
            query = snap.query("doc").where("project", "=", 1)
            real = query._limited_rows

            def commit_mid_execution():
                rows = real()
                db.insert("doc", {"id": 500, "project": 1, "title": "racer"})
                return rows

            query._limited_rows = commit_mid_execution
            stale = query.all()
            assert all(row["id"] != 500 for row in stale)
        fresh = db.query("doc").where("project", "=", 1).all()
        assert any(row["id"] == 500 for row in fresh)

    def test_historical_snapshot_bypasses_cache(self):
        """Once the table moves past the snapshot, its results describe
        a state no future query can name — caching them under the
        current version would poison live readers, so the query runs
        uncached."""
        db = make_db()
        with db.snapshot() as snap:
            db.insert("doc", {"id": 400, "project": 1, "title": "newer"})
            query = snap.query("doc").where("project", "=", 1)
            rows = query.all()
            assert all(row["id"] != 400 for row in rows)
            plan = query.explain()
            assert plan["cache"] == "bypassed"
            assert plan["cache_key"] is None
            assert plan["snapshot_version"] == snap.seq
