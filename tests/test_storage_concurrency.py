"""Concurrency: the single-writer lock under real threads."""

import threading

import pytest

from repro.storage import Column, ColumnType, Database, TableSchema


@pytest.fixture
def counter_db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "counter",
            [
                Column("id", ColumnType.INT, primary_key=True),
                Column("value", ColumnType.INT, nullable=False),
            ],
        )
    )
    db.insert("counter", {"value": 0})
    return db


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, counter_db):
        """Read-modify-write inside one transaction is atomic."""

        def worker():
            for _ in range(50):
                with counter_db.transaction() as txn:
                    current = txn.get("counter", 1)["value"]
                    txn.update("counter", 1, {"value": current + 1})

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter_db.get("counter", 1)["value"] == 200

    def test_concurrent_inserts_unique_ids(self, counter_db):
        ids: list[int] = []
        lock = threading.Lock()

        def worker():
            local = []
            for _ in range(50):
                row = counter_db.insert("counter", {"value": 1})
                local.append(row["id"])
            with lock:
                ids.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ids) == 200
        assert len(set(ids)) == 200

    def test_rollback_under_contention(self, counter_db):
        """Some threads roll back; committed counts stay exact."""
        committed = []
        lock = threading.Lock()

        def worker(index):
            done = 0
            for i in range(30):
                txn = counter_db.transaction()
                txn.insert("counter", {"value": index})
                if i % 3 == 0:
                    txn.rollback()
                else:
                    txn.commit()
                    done += 1
            with lock:
                committed.append(done)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 1 + sum(committed)  # plus the fixture row
        assert counter_db.count("counter") == expected
        assert counter_db.verify_integrity() == []

    def test_concurrent_wal_commits_replay(self, tmp_path):
        db = Database(tmp_path)
        db.create_table(
            TableSchema(
                "event",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("tag", ColumnType.TEXT, nullable=False),
                ],
            )
        )

        def worker(tag):
            for i in range(25):
                db.insert("event", {"tag": f"{tag}-{i}"})

        threads = [
            threading.Thread(target=worker, args=(f"t{t}",)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        db.close()

        revived = Database(tmp_path)
        revived.create_table(db.table("event").schema)
        revived.recover()
        assert revived.count("event") == 100
        tags = revived.query("event").values("tag")
        assert len(set(tags)) == 100


class TestGroupCommit:
    """The group-commit coordinator under real contention (PR2)."""

    def _hammer(self, db, threads=8, txns=25):
        def worker(tid):
            for i in range(txns):
                db.insert("event", {"id": tid * 1000 + i, "tag": f"{tid}-{i}"})

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        return threads * txns

    def _event_db(self, path, durability):
        db = Database(path, durability=durability)
        db.create_table(
            TableSchema(
                "event",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("tag", ColumnType.TEXT, nullable=False),
                ],
            )
        )
        return db

    def test_group_commits_all_durable_after_recovery(self, tmp_path):
        db = self._event_db(tmp_path, "group")
        total = self._hammer(db)
        db.close()

        revived = Database(tmp_path)
        revived.create_table(db.table("event").schema)
        revived.recover()
        assert revived.count("event") == total
        assert len(set(revived.query("event").values("tag"))) == total
        assert revived.verify_integrity() == []

    def test_group_commit_batches_fsyncs(self, tmp_path):
        db = self._event_db(tmp_path, "group")
        total = self._hammer(db)
        fsyncs = db.obs.metrics.get("storage_wal_fsync_seconds").count
        db.close()
        # The whole point: many commits share one fsync.  Even under
        # unlucky scheduling the coordinator must batch *something*.
        assert 0 < fsyncs < total

    def test_always_mode_fsyncs_every_commit(self, tmp_path):
        db = self._event_db(tmp_path, "always")
        total = self._hammer(db, threads=4, txns=10)
        fsyncs = db.obs.metrics.get("storage_wal_fsync_seconds").count
        db.close()
        assert fsyncs >= total

    def test_buffered_mode_recovers_synced_commits(self, tmp_path):
        db = self._event_db(tmp_path, "buffered")
        total = self._hammer(db, threads=4, txns=10)
        db.close()  # close() syncs the buffered tail
        revived = Database(tmp_path)
        revived.create_table(db.table("event").schema)
        revived.recover()
        assert revived.count("event") == total
