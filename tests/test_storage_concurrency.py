"""Concurrency: the single-writer lock under real threads."""

import threading

import pytest

from repro.storage import Column, ColumnType, Database, TableSchema


@pytest.fixture
def counter_db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "counter",
            [
                Column("id", ColumnType.INT, primary_key=True),
                Column("value", ColumnType.INT, nullable=False),
            ],
        )
    )
    db.insert("counter", {"value": 0})
    return db


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, counter_db):
        """Read-modify-write inside one transaction is atomic."""

        def worker():
            for _ in range(50):
                with counter_db.transaction() as txn:
                    current = txn.get("counter", 1)["value"]
                    txn.update("counter", 1, {"value": current + 1})

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter_db.get("counter", 1)["value"] == 200

    def test_concurrent_inserts_unique_ids(self, counter_db):
        ids: list[int] = []
        lock = threading.Lock()

        def worker():
            local = []
            for _ in range(50):
                row = counter_db.insert("counter", {"value": 1})
                local.append(row["id"])
            with lock:
                ids.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ids) == 200
        assert len(set(ids)) == 200

    def test_rollback_under_contention(self, counter_db):
        """Some threads roll back; committed counts stay exact."""
        committed = []
        lock = threading.Lock()

        def worker(index):
            done = 0
            for i in range(30):
                txn = counter_db.transaction()
                txn.insert("counter", {"value": index})
                if i % 3 == 0:
                    txn.rollback()
                else:
                    txn.commit()
                    done += 1
            with lock:
                committed.append(done)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 1 + sum(committed)  # plus the fixture row
        assert counter_db.count("counter") == expected
        assert counter_db.verify_integrity() == []

    def test_concurrent_wal_commits_replay(self, tmp_path):
        db = Database(tmp_path)
        db.create_table(
            TableSchema(
                "event",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("tag", ColumnType.TEXT, nullable=False),
                ],
            )
        )

        def worker(tag):
            for i in range(25):
                db.insert("event", {"tag": f"{tag}-{i}"})

        threads = [
            threading.Thread(target=worker, args=(f"t{t}",)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        db.close()

        revived = Database(tmp_path)
        revived.create_table(db.table("event").schema)
        revived.recover()
        assert revived.count("event") == 100
        tags = revived.query("event").values("tag")
        assert len(set(tags)) == 100


class TestGroupCommit:
    """The group-commit coordinator under real contention (PR2)."""

    def _hammer(self, db, threads=8, txns=25):
        def worker(tid):
            for i in range(txns):
                db.insert("event", {"id": tid * 1000 + i, "tag": f"{tid}-{i}"})

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        return threads * txns

    def _event_db(self, path, durability):
        db = Database(path, durability=durability)
        db.create_table(
            TableSchema(
                "event",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("tag", ColumnType.TEXT, nullable=False),
                ],
            )
        )
        return db

    def test_group_commits_all_durable_after_recovery(self, tmp_path):
        db = self._event_db(tmp_path, "group")
        total = self._hammer(db)
        db.close()

        revived = Database(tmp_path)
        revived.create_table(db.table("event").schema)
        revived.recover()
        assert revived.count("event") == total
        assert len(set(revived.query("event").values("tag"))) == total
        assert revived.verify_integrity() == []

    def test_group_commit_batches_fsyncs(self, tmp_path):
        db = self._event_db(tmp_path, "group")
        total = self._hammer(db)
        fsyncs = db.obs.metrics.get("storage_wal_fsync_seconds").count
        db.close()
        # The whole point: many commits share one fsync.  Even under
        # unlucky scheduling the coordinator must batch *something*.
        assert 0 < fsyncs < total

    def test_always_mode_fsyncs_every_commit(self, tmp_path):
        db = self._event_db(tmp_path, "always")
        total = self._hammer(db, threads=4, txns=10)
        fsyncs = db.obs.metrics.get("storage_wal_fsync_seconds").count
        db.close()
        assert fsyncs >= total

    def test_buffered_mode_recovers_synced_commits(self, tmp_path):
        db = self._event_db(tmp_path, "buffered")
        total = self._hammer(db, threads=4, txns=10)
        db.close()  # close() syncs the buffered tail
        revived = Database(tmp_path)
        revived.create_table(db.table("event").schema)
        revived.recover()
        assert revived.count("event") == total


class TestMVCCReaders:
    """Lock-free snapshot readers racing a live writer (PR4)."""

    ROWS = 50

    def _ledger_db(self) -> Database:
        db = Database()
        db.create_table(
            TableSchema(
                "ledger",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("balance", ColumnType.INT, nullable=False),
                    Column("epoch", ColumnType.INT, nullable=False),
                ],
            )
        )
        with db.transaction() as txn:
            for i in range(self.ROWS):
                txn.insert("ledger", {"id": i, "balance": 100, "epoch": 0})
        return db

    def test_commit_publication_is_seqlock_guarded(self):
        """commit_version() publishes under the seqlock: the epoch goes
        odd for the stamping window (and lands even, changed), so a
        lock-free reader racing the publication can never observe a
        stable epoch, ``dirty`` False, and a stale version at once —
        the combination that would make it trust live indexes which
        already reflect the commit's deletes and updates."""
        db = self._ledger_db()
        table = db.table("ledger")
        txn = db.transaction()
        txn.update("ledger", 0, {"balance": 7, "epoch": 7})
        epoch_mid = table.mutation_epoch
        version_mid = table.version
        assert table.dirty
        txn.commit()
        assert table.mutation_epoch % 2 == 0
        assert table.mutation_epoch > epoch_mid
        assert table.version > version_mid
        assert not table.dirty

    def test_pinned_scans_see_consistent_state_during_commits(self):
        """N readers scan one pinned snapshot while a writer rewrites
        every row, transaction by transaction.  Every scan must see the
        original state — same count, all balances 100 — with no torn
        reads and no RuntimeError from a dict mutating underneath."""
        db = self._ledger_db()
        snap = db.snapshot()
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            epoch = 0
            while not stop.is_set():
                epoch += 1
                with db.transaction() as txn:
                    for i in range(self.ROWS):
                        txn.update(
                            "ledger", i, {"balance": epoch, "epoch": epoch}
                        )

        def reader():
            try:
                for _ in range(200):
                    rows = list(snap.scan("ledger"))
                    if len(rows) != self.ROWS:
                        errors.append(f"saw {len(rows)} rows")
                        return
                    bad = [r for r in rows if r["balance"] != 100 or r["epoch"] != 0]
                    if bad:
                        errors.append(f"torn read: {bad[0]}")
                        return
            except RuntimeError as exc:  # dict changed size during iteration
                errors.append(f"RuntimeError: {exc}")
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                errors.append(f"{type(exc).__name__}: {exc}")

        writer_thread = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer_thread.join()
        snap.close()
        assert errors == []
        assert db.verify_integrity() == []

    def test_each_thread_pins_its_own_consistent_snapshot(self):
        """Readers opening fresh snapshots mid-write must each see some
        *single* committed state: within one snapshot, every row shares
        one epoch and one balance (the writer commits them together)."""
        db = self._ledger_db()
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            epoch = 0
            while not stop.is_set():
                epoch += 1
                with db.transaction() as txn:
                    for i in range(self.ROWS):
                        txn.update(
                            "ledger", i, {"balance": epoch, "epoch": epoch}
                        )

        def reader():
            try:
                for _ in range(100):
                    with db.snapshot() as snap:
                        epochs = {r["epoch"] for r in snap.scan("ledger")}
                        if len(epochs) != 1:
                            errors.append(f"mixed epochs {sorted(epochs)[:4]}")
                            return
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{type(exc).__name__}: {exc}")

        writer_thread = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer_thread.join()
        assert errors == []

    def test_snapshot_after_commit_sees_the_commit(self):
        """A snapshot opened after commit N returns sees N's writes,
        even while later commits are in flight."""
        db = self._ledger_db()
        done = threading.Event()
        errors: list[str] = []

        def churn():
            i = self.ROWS
            while not done.is_set():
                db.insert("ledger", {"id": i, "balance": 1, "epoch": 1})
                i += 1

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for k in range(50):
                db.update("ledger", 0, {"balance": 1000 + k, "epoch": k})
                with db.snapshot() as snap:
                    seen = snap.get("ledger", 0)["balance"]
                    if seen != 1000 + k:
                        errors.append(f"expected {1000 + k}, saw {seen}")
                        break
        finally:
            done.set()
            churner.join()
        assert errors == []

    def test_version_chains_prune_once_snapshots_close(self):
        db = self._ledger_db()
        snaps = [db.snapshot() for _ in range(3)]
        for epoch in range(1, 6):
            with db.transaction() as txn:
                for i in range(self.ROWS):
                    txn.update("ledger", i, {"balance": epoch, "epoch": epoch})
        table = db.table("ledger")
        assert table.version_statistics()["multi_version_chains"] == self.ROWS
        for snap in snaps:
            snap.close()
        db.prune_versions()
        stats = table.version_statistics()
        assert stats["multi_version_chains"] == 0
        assert stats["nodes"] == stats["chains"] == self.ROWS
        # Pinned reads were the only thing holding history back; the
        # current state is untouched.
        assert db.get("ledger", 0)["epoch"] == 5
        assert db.verify_integrity() == []
