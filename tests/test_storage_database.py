"""Database-level behaviour: registry, statistics, listeners, misc."""

import pytest

from repro.errors import SchemaError
from repro.storage import Column, ColumnType, Database, TableSchema


def simple_schema(name="t"):
    return TableSchema(
        name,
        [
            Column("id", ColumnType.INT, primary_key=True),
            Column("v", ColumnType.TEXT),
        ],
    )


class TestTableRegistry:
    def test_create_and_lookup(self, db: Database):
        db.create_table(simple_schema())
        assert db.has_table("t")
        assert db.table("t").name == "t"
        assert db.table_names() == ["t"]

    def test_duplicate_table_rejected(self, db):
        db.create_table(simple_schema())
        with pytest.raises(SchemaError):
            db.create_table(simple_schema())

    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.table("ghost")
        with pytest.raises(SchemaError):
            db.query("ghost")

    def test_referencing_map(self, db):
        db.create_table(simple_schema("parent"))
        db.create_table(
            TableSchema(
                "child",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("parent_id", ColumnType.INT, foreign_key="parent.id"),
                ],
            )
        )
        assert db.referencing("parent") == [("child", "parent_id", "restrict")]
        assert db.referencing("child") == []


class TestStatistics:
    def test_row_counts(self, db):
        db.create_table(simple_schema())
        db.insert("t", {"v": "a"})
        db.insert("t", {"v": "b"})
        stats = db.statistics()
        assert stats["tables"] == {"t": 2}
        assert stats["total_rows"] == 2
        assert stats["transactions"] == 2
        assert stats["wal_bytes"] == 0  # in-memory

    def test_get_or_none(self, db):
        db.create_table(simple_schema())
        row = db.insert("t", {"v": "a"})
        assert db.get_or_none("t", row["id"]) == row
        assert db.get_or_none("t", 999) is None


class TestRecoverPreconditions:
    def test_recover_requires_directory(self, db):
        with pytest.raises(SchemaError):
            db.recover()

    def test_recover_rejects_unknown_snapshot_table(self, tmp_path):
        db = Database(tmp_path)
        db.create_table(simple_schema())
        db.insert("t", {"v": "x"})
        db.checkpoint()
        db.close()

        fresh = Database(tmp_path)
        # Schema for "t" never declared.
        with pytest.raises(SchemaError):
            fresh.recover()


class TestRowsIteration:
    def test_rows_are_copies(self, db):
        db.create_table(simple_schema())
        db.insert("t", {"v": "a"})
        for row in db.rows("t"):
            row["v"] = "mutated"
        assert db.get("t", 1)["v"] == "a"

    def test_insertion_order(self, db):
        db.create_table(simple_schema())
        for v in ("x", "y", "z"):
            db.insert("t", {"v": v})
        assert [r["v"] for r in db.rows("t")] == ["x", "y", "z"]
