"""Cost-based planner: plan choice, ordered/composite/covering indexes.

Every plan-shape test cross-checks the costed path against the forced
scan (``without_indexes``) on the same query — the planner may only
change *how* rows are found, never *which* rows.
"""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.storage.index import HashIndex, OrderedIndex, SortedIndex
from repro.storage.sharding import ShardedDatabase


def _events_schema() -> TableSchema:
    return TableSchema(
        name="event",
        columns=[
            Column("id", ColumnType.INT, primary_key=True),
            Column("project", ColumnType.INT, nullable=False),
            Column("kind", ColumnType.TEXT, nullable=False),
            Column("batch", ColumnType.INT, nullable=False),
            Column("score", ColumnType.INT),
            Column("payload", ColumnType.TEXT),
        ],
        indexes=["project", "kind", "batch"],
        ordered=["score", ("project", "score")],
    )


@pytest.fixture
def events_db() -> Database:
    db = Database()
    db.create_table(_events_schema())
    with db.transaction() as txn:
        for i in range(400):
            txn.insert(
                "event",
                {
                    "id": i,
                    "project": i % 20,
                    "kind": ("import", "export", "qc", "run")[i % 4],
                    "batch": i % 25,
                    "score": None if i % 50 == 49 else i,
                    "payload": f"row {i}",
                },
            )
    return db


def _rows(query):
    return sorted(r["id"] for r in query.all())


# -- index-level satellites ------------------------------------------------


class TestIndexCounters:
    def test_hash_len_counts_entries(self):
        index = HashIndex("t", ("c",))
        for pk in range(5):
            index.add({"c": pk % 2}, pk)
        assert len(index) == 5
        index.remove({"c": 0}, 0)
        assert len(index) == 4
        assert index.distinct_keys() == 2

    def test_sorted_len_counts_entries(self):
        index = SortedIndex("t", "c")
        for pk in range(6):
            index.add({"c": pk % 3}, pk)
        assert len(index) == 6
        index.remove({"c": 1}, 1)
        assert len(index) == 5
        index.clear()
        assert len(index) == 0

    def test_remove_then_range_sees_consistent_state(self):
        # Regression: remove() must drop the sorted key and the pk
        # bucket under the same bisect position — a torn remove left a
        # stale key behind that a following range() resurrected.
        index = SortedIndex("t", "c")
        for pk in range(4):
            index.add({"c": 10}, pk)
        index.add({"c": 20}, 99)
        index.remove({"c": 10}, 2)
        assert index.range(low=10, high=10) == {0, 1, 3}
        for pk in (0, 1, 3):
            index.remove({"c": 10}, pk)
        # Key 10 fully gone: neither ranges nor ordered iteration may
        # see it.
        assert index.range(low=5, high=15) == set()
        assert list(index.ordered_pks()) == [99]
        assert index.min_key() == (20,)

    def test_composite_covers(self):
        index = OrderedIndex("t", ("a", "b"))
        assert index.covers(["a"])
        assert index.covers(["a", "b"])
        assert not index.covers(["a", "c"])


# -- plan selection --------------------------------------------------------


class TestPlanChoice:
    def test_range_uses_ordered_index(self, events_db):
        query = (
            events_db.query("event")
            .where("score", ">=", 100)
            .where("score", "<", 120)
        )
        plan = query.explain()
        assert plan["strategy"] == "range:sx_event_score"
        assert _rows(query) == _rows(query.without_indexes())

    def test_composite_prefix_seek(self, events_db):
        query = (
            events_db.query("event")
            .where("project", "=", 3)
            .where("score", ">=", 200)
        )
        plan = query.explain(analyze=True)
        assert plan["strategy"] == "prefix:ox_event_project_score"
        assert plan["residual_predicates"] == 0
        assert plan["actual_rows"] == len(query.all())
        assert _rows(query) == _rows(query.without_indexes())

    def test_covering_requires_projection(self, events_db):
        base = (
            events_db.query("event")
            .where("project", "=", 3)
            .where("score", ">=", 200)
        )
        covered = (
            events_db.query("event")
            .select("project", "score")
            .where("project", "=", 3)
            .where("score", ">=", 200)
        )
        assert base.explain()["covering"] is False
        plan = covered.explain()
        assert plan["strategy"] == "covering:ox_event_project_score"
        assert plan["covering"] is True
        rows = covered.all()
        assert rows
        # Synthesized from index entries: projection plus the pk.
        assert all(set(r) == {"project", "score", "id"} for r in rows)
        assert sorted(r["id"] for r in rows) == _rows(base)

    def test_intersection_of_hash_indexes(self, events_db):
        # Each single bucket holds 20 / 16 rows, the conjunction only
        # one: merging the two pk sets is cheaper than fetching either
        # bucket and filtering.
        query = (
            events_db.query("event")
            .where("project", "=", 3)
            .where("batch", "=", 3)
        )
        plan = query.explain()
        assert plan["strategy"].startswith("intersect:")
        assert _rows(query) == _rows(query.without_indexes())

    def test_alternatives_are_priced(self, events_db):
        plan = (
            events_db.query("event").where("project", "=", 3).explain()
        )
        strategies = {alt["strategy"] for alt in plan["alternatives"]}
        assert "scan" in strategies
        assert plan["strategy"] not in strategies
        assert all(
            isinstance(alt["cost"], (int, float))
            for alt in plan["alternatives"]
        )

    def test_estimates_track_actuals(self, events_db):
        plan = (
            events_db.query("event")
            .where("score", ">=", 100)
            .where("score", "<", 120)
            .explain(analyze=True)
        )
        assert plan["actual_rows"] == 20
        assert abs(plan["estimated_rows"] - plan["actual_rows"]) <= 5

    def test_scan_when_no_index_applies(self, events_db):
        plan = (
            events_db.query("event").where("payload", "contains", "7").explain()
        )
        assert plan["strategy"] == "scan"

    def test_null_scores_excluded_from_upper_bound(self, events_db):
        # score < X must not leak NULL-score rows even though NULL keys
        # sort first in the ordered index (SQL three-valued logic).
        query = events_db.query("event").where("score", "<", 30)
        assert query.explain()["strategy"] == "range:sx_event_score"
        ids = _rows(query)
        assert ids == _rows(query.without_indexes())
        assert 49 not in ids  # the first NULL-score row

    def test_database_add_index_ordered(self, events_db):
        events_db.add_index("event", ("kind", "score"), ordered=True)
        query = (
            events_db.query("event")
            .where("kind", "=", "qc")
            .where("score", ">", 300)
        )
        assert query.explain()["strategy"] == "prefix:ox_event_kind_score"
        assert _rows(query) == _rows(query.without_indexes())

    def test_schema_rejects_unknown_ordered_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                name="bad",
                columns=[Column("id", ColumnType.INT, primary_key=True)],
                ordered=["missing"],
            ).validate()


# -- ordering and LIMIT ----------------------------------------------------


class TestOrderAndLimit:
    def test_order_rides_sorted_index(self, events_db):
        query = events_db.query("event").order_by("score").limit(5)
        plan = query.explain()
        assert plan["strategy"] == "order:sx_event_score"
        assert plan["early_exit"] is True
        scan = (
            events_db.query("event").order_by("score").limit(5).without_indexes()
        )
        assert [r["id"] for r in query.all()] == [r["id"] for r in scan.all()]

    def test_descending_order_ride(self, events_db):
        query = (
            events_db.query("event")
            .where("score", ">=", 0)
            .order_by("score", descending=True)
            .limit(3)
        )
        plan = query.explain()
        assert plan["early_exit"] is True
        assert [r["score"] for r in query.all()] == [398, 397, 396]

    def test_limit_early_exit_matches_sorted_scan(self, events_db):
        query = (
            events_db.query("event")
            .where("score", ">=", 50)
            .order_by("score")
            .limit(7)
            .offset(2)
        )
        assert query.explain()["early_exit"] is True
        scan = (
            events_db.query("event")
            .where("score", ">=", 50)
            .order_by("score")
            .limit(7)
            .offset(2)
            .without_indexes()
        )
        assert [r["id"] for r in query.all()] == [r["id"] for r in scan.all()]

    def test_bare_ride_only_offered_when_order_satisfied(self, events_db):
        # ORDER BY an unindexed column: no index produces that order,
        # so no "order:" ride may be planned just to shave scan setup.
        plan = (
            events_db.query("event").order_by("payload").limit(5).explain()
        )
        assert plan["strategy"] == "scan"
        assert not any(
            alt["strategy"].startswith("order:")
            for alt in plan["alternatives"]
        )

    def test_unsatisfied_order_disables_early_exit(self, events_db):
        plan = (
            events_db.query("event")
            .where("project", "=", 3)
            .order_by("payload")
            .limit(5)
            .explain()
        )
        assert plan["early_exit"] is False


# -- statistics ------------------------------------------------------------


class TestStatistics:
    def test_distinct_counts(self, events_db):
        table = events_db.table("event")
        assert table.distinct_count("project") == 20
        assert table.distinct_count("kind") == 4
        low, high = table.column_min_max("score")
        assert low is None  # NULL keys sort first in the ordered index
        assert high == 398  # 399 is a NULL-score row

    def test_stats_follow_mutations(self, events_db):
        table = events_db.table("event")
        assert table.distinct_count("kind") == 4
        events_db.update("event", 0, {"kind": "audit"})
        assert table.distinct_count("kind") == 5
        events_db.delete("event", 0)
        assert table.distinct_count("kind") == 4

    def test_stats_survive_wal_recovery(self, tmp_path):
        path = tmp_path / "data"
        db = Database(path, durability="always")
        db.create_table(_events_schema())
        with db.transaction() as txn:
            for i in range(120):
                txn.insert(
                    "event",
                    {"id": i, "project": i % 7, "kind": "import",
                     "batch": i % 5, "score": i, "payload": "p"},
                )
        db.checkpoint()
        # Post-checkpoint traffic must be replayed into the restored
        # sampler state, not a freshly reseeded one.
        with db.transaction() as txn:
            for i in range(120, 150):
                txn.insert(
                    "event",
                    {"id": i, "project": i % 7, "kind": "export",
                     "batch": i % 5, "score": i, "payload": "p"},
                )
        before = db.table("event").stats_state()
        strategy = (
            db.query("event")
            .where("score", ">=", 10)
            .where("score", "<", 20)
            .explain()["strategy"]
        )
        db.close()

        reopened = Database(path, durability="always")
        reopened.create_table(_events_schema())
        reopened.recover()
        table = reopened.table("event")
        assert table.stats_state() == before
        assert table.distinct_count("project") == 7
        assert (
            reopened.query("event")
            .where("score", ">=", 10)
            .where("score", "<", 20)
            .explain()["strategy"]
            == strategy
        )
        reopened.close()


# -- explain provenance ----------------------------------------------------


class TestExplainProvenance:
    def test_live_snapshot_and_sharded_explain(self, tmp_path):
        sdb = ShardedDatabase(tmp_path / "shards", shards=2)
        sdb.create_table(_events_schema())
        for i in range(60):
            sdb.insert(
                "event",
                {"id": i, "project": i % 5, "kind": "import",
                 "batch": i % 5, "score": i, "payload": "p"},
            )
        plan = (
            sdb.query("event")
            .where("score", ">=", 10)
            .where("score", "<", 30)
            .explain()
        )
        assert plan["shards_consulted"] == [0, 1]
        assert plan["strategy"] == "range:sx_event_score"
        assert set(plan["shards"]) == {0, 1}
        # Scatter explain aggregates the per-shard costed plans.
        assert plan["estimated_rows"] > 0
        assert plan["estimated_cost"] > 0
        sdb.close()

    def test_snapshot_pins_costed_plan(self, events_db):
        with events_db.snapshot() as snap:
            live = (
                events_db.query("event").where("project", "=", 3).explain()
            )
            pinned = snap.query("event").where("project", "=", 3).explain()
            # Fresh snapshot: same costed plan, same cache key.
            assert pinned["strategy"] == live["strategy"]
            assert pinned["cache_key"] == live["cache_key"]
            assert pinned["snapshot_version"] == snap.seq
            rows = _rows(snap.query("event").where("project", "=", 3))
            # The pinned plan stays correct after later commits.
            events_db.insert(
                "event",
                {"id": 1000, "project": 3, "kind": "qc",
                 "batch": 0, "score": 1, "payload": "new"},
            )
            assert _rows(snap.query("event").where("project", "=", 3)) == rows
            # A query planned *after* the commit sees a moved table and
            # falls back to the snapshot-safe scan.
            stale = snap.query("event").where("project", "=", 3).explain()
            assert stale["strategy"] == "scan"
