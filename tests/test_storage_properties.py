"""Property-based tests (hypothesis) for the storage engine.

Invariants checked:

* applying a random sequence of CRUD operations and then rolling back a
  transaction restores the exact prior table contents and index results;
* index-backed queries always agree with full scans;
* a WAL round trip reproduces the exact table contents, whatever the
  operation mix was;
* unique indexes never admit duplicates under any operation order.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import Column, ColumnType, Database, TableSchema


def fresh_db() -> Database:
    db = Database()
    db.create_table(
        TableSchema(
            "doc",
            [
                Column("id", ColumnType.INT, primary_key=True),
                Column("bucket", ColumnType.INT),
                Column("label", ColumnType.TEXT),
                Column("score", ColumnType.FLOAT),
            ],
            indexes=["bucket", "label"],
        )
    )
    return db


# An operation is a tuple the executor interprets.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=0, max_value=5),
            st.text(alphabet="abc", max_size=3),
            st.floats(allow_nan=False, allow_infinity=False, width=16),
        ),
        st.tuples(st.just("update"), st.integers(min_value=1, max_value=30),
                  st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("delete"), st.integers(min_value=1, max_value=30)),
    ),
    max_size=30,
)


def apply_ops(db: Database, ops, txn=None) -> None:
    target = txn if txn is not None else db
    for op in ops:
        try:
            if op[0] == "insert":
                target.insert(
                    "doc", {"bucket": op[1], "label": op[2], "score": op[3]}
                )
            elif op[0] == "update":
                target.update("doc", op[1], {"bucket": op[2]})
            elif op[0] == "delete":
                target.delete("doc", op[1])
        except StorageError:
            pass  # missing rows etc. are fine; we only care about invariants


def table_contents(db: Database):
    return sorted(
        (tuple(sorted(row.items())) for row in db.rows("doc")), key=repr
    )


class TestRollbackRestoresState:
    @given(setup=ops_strategy, inside=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_rollback_is_exact_inverse(self, setup, inside):
        db = fresh_db()
        apply_ops(db, setup)
        before = table_contents(db)
        txn = db.transaction()
        apply_ops(db, inside, txn=txn)
        txn.rollback()
        assert table_contents(db) == before
        assert db.verify_integrity() == []


class TestIndexScanAgreement:
    @given(ops=ops_strategy, bucket=st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_equality_query_matches_scan(self, ops, bucket):
        db = fresh_db()
        apply_ops(db, ops)
        indexed = db.query("doc").where("bucket", "=", bucket).pks()
        scanned = db.query("doc").where("bucket", "=", bucket).without_indexes().pks()
        assert sorted(indexed, key=repr) == sorted(scanned, key=repr)

    @given(ops=ops_strategy, low=st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_range_query_matches_scan(self, ops, low):
        db = fresh_db()
        apply_ops(db, ops)
        indexed = db.query("doc").where("bucket", ">=", low).pks()
        scanned = db.query("doc").where("bucket", ">=", low).without_indexes().pks()
        assert sorted(indexed, key=repr) == sorted(scanned, key=repr)


class TestWalRoundTrip:
    @given(ops=ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_recovery_reproduces_contents(self, ops, tmp_path_factory):
        path = tmp_path_factory.mktemp("wal")
        db = Database(path)
        db.create_table(fresh_db().table("doc").schema)
        apply_ops(db, ops)
        expected = table_contents(db)
        db.close()

        db2 = Database(path)
        db2.create_table(fresh_db().table("doc").schema)
        db2.recover()
        assert table_contents(db2) == expected
        assert db2.verify_integrity() == []


class TestUniqueInvariant:
    @given(
        names=st.lists(st.text(alphabet="xyz", min_size=1, max_size=2), max_size=25)
    )
    @settings(max_examples=60, deadline=None)
    def test_unique_column_never_has_duplicates(self, names):
        db = Database()
        db.create_table(
            TableSchema(
                "uniq",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("name", ColumnType.TEXT, unique=True),
                ],
            )
        )
        for name in names:
            try:
                db.insert("uniq", {"name": name})
            except StorageError:
                pass
        stored = db.query("uniq").values("name")
        assert len(stored) == len(set(stored))


class TestIntegrityAlwaysHolds:
    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_verify_integrity_after_arbitrary_ops(self, ops):
        db = fresh_db()
        apply_ops(db, ops)
        assert db.verify_integrity() == []


@pytest.mark.parametrize("descending", [False, True])
@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None)
def test_order_by_is_totally_ordered(descending, ops):
    from repro.storage.types import sort_key

    db = fresh_db()
    apply_ops(db, ops)
    rows = db.query("doc").order_by("score", descending=descending).all()
    keys = [sort_key(r["score"]) for r in rows]
    assert keys == sorted(keys, reverse=descending)
