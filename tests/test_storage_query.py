"""Query builder: predicates, planning, ordering, pagination."""

import pytest

from repro.errors import SchemaError
from repro.storage import Database, F


@pytest.fixture
def loaded(people_db: Database) -> Database:
    fgcz = people_db.insert("org", {"name": "FGCZ"})
    eth = people_db.insert("org", {"name": "ETH"})
    rows = [
        ("ada", 36, fgcz["id"]),
        ("grace", 45, fgcz["id"]),
        ("alan", 41, eth["id"]),
        ("edsger", 52, eth["id"]),
        ("barbara", 36, None),
    ]
    for name, age, org_id in rows:
        people_db.insert("person", {"name": name, "age": age, "org_id": org_id})
    return people_db


class TestPredicates:
    def test_eq(self, loaded):
        assert loaded.query("person").where("name", "=", "ada").count() == 1

    def test_ne(self, loaded):
        assert loaded.query("person").where("name", "!=", "ada").count() == 4

    def test_lt_le_gt_ge(self, loaded):
        q = loaded.query("person")
        assert q.where("age", "<", 41).count() == 2
        assert loaded.query("person").where("age", "<=", 41).count() == 3
        assert loaded.query("person").where("age", ">", 41).count() == 2
        assert loaded.query("person").where("age", ">=", 41).count() == 3

    def test_in(self, loaded):
        names = {"ada", "alan"}
        assert loaded.query("person").where("name", "in", names).count() == 2

    def test_contains_case_insensitive(self, loaded):
        assert loaded.query("person").where("name", "contains", "AD").count() == 1

    def test_startswith(self, loaded):
        assert loaded.query("person").where("name", "startswith", "a").count() == 2

    def test_is_null(self, loaded):
        assert loaded.query("person").where("org_id", "is_null", True).count() == 1
        assert loaded.query("person").where("org_id", "is_null", False).count() == 4

    def test_null_excluded_from_comparisons(self, loaded):
        # barbara has org_id None; "=" and range ops must not match NULL.
        assert loaded.query("person").where("org_id", "=", None).count() == 0
        assert loaded.query("person").where("age", ">", 0).count() == 5

    def test_conjunction(self, loaded):
        count = (
            loaded.query("person")
            .where("age", ">=", 40)
            .where("name", "startswith", "a")
            .count()
        )
        assert count == 1  # alan

    def test_f_helpers(self, loaded):
        rows = (
            loaded.query("person")
            .filter(F.ge("age", 36), F.contains("name", "a"))
            .all()
        )
        assert {r["name"] for r in rows} == {"ada", "grace", "alan", "barbara"}

    def test_unknown_column_rejected(self, loaded):
        with pytest.raises(SchemaError):
            loaded.query("person").where("bogus", "=", 1)

    def test_unknown_operator_rejected(self, loaded):
        with pytest.raises(SchemaError):
            loaded.query("person").where("name", "~=", "x")


class TestPlanning:
    def test_pk_lookup_strategy(self, loaded):
        plan = loaded.query("person").where("id", "=", 1).explain()
        assert plan["strategy"] == "pk"
        assert plan["candidates"] == 1

    def test_single_column_index_used(self, loaded):
        plan = loaded.query("person").where("name", "=", "ada").explain()
        assert plan["strategy"].startswith("index:")
        assert plan["candidates"] == 1

    def test_composite_index_preferred(self, loaded):
        plan = (
            loaded.query("person")
            .where("org_id", "=", 1)
            .where("age", "=", 36)
            .explain()
        )
        assert plan["strategy"] == "index:ix_person_org_id_age"
        assert plan["residual_predicates"] == 0

    def test_range_uses_sorted_index(self, loaded):
        plan = loaded.query("person").where("age", ">=", 40).explain()
        assert plan["strategy"].startswith("range:")

    def test_unindexed_predicate_scans(self, loaded):
        plan = loaded.query("person").where("name", "contains", "a").explain()
        assert plan["strategy"] == "scan"

    def test_without_indexes_forces_scan(self, loaded):
        plan = (
            loaded.query("person").where("name", "=", "ada").without_indexes().explain()
        )
        assert plan["strategy"] == "scan"

    def test_index_and_scan_agree(self, loaded):
        indexed = loaded.query("person").where("org_id", "=", 1).all()
        scanned = (
            loaded.query("person").where("org_id", "=", 1).without_indexes().all()
        )
        key = lambda r: r["id"]
        assert sorted(indexed, key=key) == sorted(scanned, key=key)

    def test_unique_index_used_for_equality(self, loaded):
        plan = loaded.query("org").where("name", "=", "FGCZ").explain()
        assert plan["strategy"].startswith(("index:", "range:"))

    def test_live_query_explains_no_snapshot(self, loaded):
        plan = loaded.query("person").where("name", "=", "ada").explain()
        assert plan["snapshot_version"] is None

    def test_snapshot_query_explains_its_version(self, loaded):
        with loaded.snapshot() as snap:
            plan = snap.query("person").where("name", "=", "ada").explain()
            assert plan["snapshot_version"] == snap.seq
            # The table hasn't moved: the planner may still use indexes.
            assert plan["strategy"].startswith("index:")

    def test_stale_snapshot_query_falls_back_to_scan(self, loaded):
        with loaded.snapshot() as snap:
            loaded.insert("person", {"name": "edsger", "age": 52})
            plan = snap.query("person").where("name", "=", "ada").explain()
            assert plan["snapshot_version"] == snap.seq
            assert plan["strategy"] == "scan"
            rows = snap.query("person").where("name", "=", "ada").all()
            assert [r["name"] for r in rows] == ["ada"]

    def test_snapshot_and_live_agree_when_unchanged(self, loaded):
        with loaded.snapshot() as snap:
            live = loaded.query("person").where("age", ">=", 40).values("name")
            pinned = snap.query("person").where("age", ">=", 40).values("name")
            assert sorted(live) == sorted(pinned)


class TestOrderingAndPagination:
    def test_order_by_ascending(self, loaded):
        ages = loaded.query("person").order_by("age").values("age")
        assert ages == sorted(ages)

    def test_order_by_descending(self, loaded):
        ages = loaded.query("person").order_by("age", descending=True).values("age")
        assert ages == sorted(ages, reverse=True)

    def test_multi_key_order(self, loaded):
        rows = (
            loaded.query("person")
            .order_by("age")
            .order_by("name")
            .all()
        )
        pairs = [(r["age"], r["name"]) for r in rows]
        assert pairs == sorted(pairs)

    def test_limit_offset(self, loaded):
        page1 = loaded.query("person").order_by("name").limit(2).all()
        page2 = loaded.query("person").order_by("name").limit(2).offset(2).all()
        names = [r["name"] for r in page1 + page2]
        assert names == ["ada", "alan", "barbara", "edsger"]

    def test_negative_limit_rejected(self, loaded):
        with pytest.raises(SchemaError):
            loaded.query("person").limit(-1)

    def test_count_ignores_limit(self, loaded):
        assert loaded.query("person").limit(1).count() == 5


class TestTerminalOperations:
    def test_first_returns_none_when_empty(self, loaded):
        assert loaded.query("person").where("name", "=", "nobody").first() is None

    def test_one_raises_on_zero(self, loaded):
        with pytest.raises(SchemaError):
            loaded.query("person").where("name", "=", "nobody").one()

    def test_one_raises_on_many(self, loaded):
        with pytest.raises(SchemaError):
            loaded.query("person").where("age", "=", 36).one()

    def test_one_returns_single(self, loaded):
        row = loaded.query("person").where("name", "=", "ada").one()
        assert row["age"] == 36

    def test_exists(self, loaded):
        assert loaded.query("person").where("name", "=", "ada").exists()
        assert not loaded.query("person").where("name", "=", "x").exists()

    def test_pks(self, loaded):
        pks = loaded.query("person").order_by("id").pks()
        assert pks == [1, 2, 3, 4, 5]

    def test_values(self, loaded):
        names = set(loaded.query("person").values("name"))
        assert "ada" in names

    def test_returned_rows_are_copies(self, loaded):
        row = loaded.query("person").where("name", "=", "ada").one()
        row["name"] = "mutated"
        fresh = loaded.query("person").where("name", "=", "ada").one()
        assert fresh["name"] == "ada"
