"""MVCC snapshots: pinned reads, lookups, pruning, recovery."""

import pytest

from repro.errors import RowNotFound, SchemaError
from repro.storage import Column, ColumnType, Database, Snapshot, TableSchema


@pytest.fixture
def loaded(people_db: Database) -> Database:
    org = people_db.insert("org", {"name": "FGCZ"})
    for name, age in [("ada", 36), ("grace", 45), ("alan", 41)]:
        people_db.insert(
            "person", {"name": name, "age": age, "org_id": org["id"]}
        )
    return people_db


class TestSnapshotBasics:
    def test_snapshot_pins_point_reads(self, loaded):
        snap = loaded.snapshot()
        loaded.update("person", 1, {"age": 99})
        assert snap.get("person", 1)["age"] == 36
        assert loaded.get("person", 1)["age"] == 99
        snap.close()

    def test_snapshot_pins_scan_and_count(self, loaded):
        with loaded.snapshot() as snap:
            loaded.insert("person", {"name": "edsger", "age": 52})
            loaded.delete("person", 1)
            assert snap.count("person") == 3
            names = {row["name"] for row in snap.scan("person")}
            assert names == {"ada", "grace", "alan"}
            assert sorted(snap.pks("person")) == [1, 2, 3]
        assert loaded.count("person") == 3  # +edsger, -ada

    def test_deleted_row_still_visible_in_old_snapshot(self, loaded):
        snap = loaded.snapshot()
        loaded.delete("person", 2)
        assert snap.contains("person", 2)
        assert snap.get("person", 2)["name"] == "grace"
        fresh = loaded.snapshot()
        assert not fresh.contains("person", 2)
        with pytest.raises(RowNotFound):
            fresh.get("person", 2)
        snap.close()
        fresh.close()

    def test_new_snapshot_sees_committed_changes(self, loaded):
        loaded.update("person", 3, {"age": 42})
        with loaded.snapshot() as snap:
            assert snap.get("person", 3)["age"] == 42

    def test_uncommitted_changes_invisible(self, loaded):
        txn = loaded.transaction()
        txn.insert("person", {"name": "ghost", "age": 1})
        txn.update("person", 1, {"age": 99})
        with loaded.snapshot() as snap:
            # The snapshot postdates the writes but predates the commit.
            assert snap.count("person") == 3
            assert snap.get("person", 1)["age"] == 36
        txn.rollback()

    def test_reads_after_close_fail(self, loaded):
        snap = loaded.snapshot()
        snap.close()
        snap.close()  # idempotent
        assert snap.closed
        with pytest.raises(SchemaError):
            snap.get("person", 1)
        with pytest.raises(SchemaError):
            list(snap.scan("person"))

    def test_context_manager_releases_registration(self, loaded):
        assert loaded.open_snapshots() == 0
        with loaded.snapshot() as snap:
            assert isinstance(snap, Snapshot)
            assert loaded.open_snapshots() == 1
        assert loaded.open_snapshots() == 0

    def test_statistics_report_pinned_counts(self, loaded):
        with loaded.snapshot() as snap:
            loaded.insert("org", {"name": "ETH"})
            stats = snap.statistics()
            assert stats["seq"] == snap.seq
            assert stats["tables"]["org"] == 1
            assert stats["tables"]["person"] == 3


class TestSnapshotLookup:
    def test_lookup_uses_live_index_when_unchanged(self, loaded):
        with loaded.snapshot() as snap:
            rows = snap.lookup("person", "name", "ada")
            assert [r["age"] for r in rows] == [36]

    def test_lookup_falls_back_after_mutation(self, loaded):
        with loaded.snapshot() as snap:
            loaded.update("person", 1, {"name": "augusta"})
            # Live index no longer matches the snapshot: chain fallback.
            assert [r["id"] for r in snap.lookup("person", "name", "ada")] == [1]
            assert snap.lookup("person", "name", "augusta") == []

    def test_composite_lookup(self, loaded):
        with loaded.snapshot() as snap:
            rows = snap.lookup("person", ("org_id", "age"), 1, 45)
            assert [r["name"] for r in rows] == ["grace"]

    def test_lookup_arity_mismatch_rejected(self, loaded):
        with loaded.snapshot() as snap:
            with pytest.raises(SchemaError):
                snap.lookup("person", ("org_id", "age"), 1)

    def test_both_paths_agree(self, loaded):
        pinned = loaded.snapshot()
        expected = pinned.lookup("person", "age", 36)
        loaded.insert("person", {"name": "barbara", "age": 36})
        assert pinned.lookup("person", "age", 36) == expected
        pinned.close()


class TestSnapshotQuery:
    def test_query_evaluates_at_snapshot(self, loaded):
        with loaded.snapshot() as snap:
            loaded.update("person", 2, {"age": 20})
            ages = snap.query("person").where("age", ">=", 40).values("age")
            assert sorted(ages) == [41, 45]

    def test_query_after_close_fails(self, loaded):
        snap = loaded.snapshot()
        query = snap.query("person").where("age", ">=", 40)
        snap.close()
        with pytest.raises(SchemaError):
            query.all()


class TestPruningAndHorizon:
    def test_open_snapshot_retains_versions(self, loaded):
        snap = loaded.snapshot()
        for age in (50, 51, 52):
            loaded.update("person", 1, {"age": age})
        table = loaded.table("person")
        assert table.version_chain_length(1) >= 2
        assert snap.get("person", 1)["age"] == 36
        snap.close()

    def test_close_prunes_version_chains(self, loaded):
        snap = loaded.snapshot()
        for age in (50, 51, 52):
            loaded.update("person", 1, {"age": age})
        snap.close()
        loaded.prune_versions()
        table = loaded.table("person")
        assert table.version_chain_length(1) == 1
        stats = table.version_statistics()
        assert stats["multi_version_chains"] == 0

    def test_pruning_removes_dead_tombstones(self, loaded):
        snap = loaded.snapshot()
        loaded.delete("person", 3)
        assert loaded.table("person").version_statistics()["tombstones"] == 1
        snap.close()
        loaded.prune_versions()
        assert loaded.table("person").version_statistics()["tombstones"] == 0

    def test_horizon_tracks_oldest_snapshot(self, loaded):
        old = loaded.snapshot()
        loaded.update("person", 1, {"age": 37})
        newer = loaded.snapshot()
        assert loaded.version_horizon() == old.seq
        old.close()
        assert loaded.version_horizon() == newer.seq
        newer.close()

    def test_database_statistics_expose_mvcc_state(self, loaded):
        snap = loaded.snapshot()
        loaded.update("person", 1, {"age": 37})
        mvcc = loaded.statistics()["mvcc"]
        assert mvcc["open_snapshots"] == 1
        assert mvcc["committed_seq"] == loaded.table("person").version
        assert mvcc["retained_versions"] >= 1
        snap.close()


class TestRecovery:
    def _schema(self) -> TableSchema:
        return TableSchema(
            "event",
            [
                Column("id", ColumnType.INT, primary_key=True),
                Column("n", ColumnType.INT, nullable=False),
            ],
        )

    def test_recovery_rebuilds_single_version_per_row(self, tmp_path):
        db = Database(tmp_path, durability="always")
        db.create_table(self._schema())
        for i in range(5):
            db.insert("event", {"id": i, "n": 0})
        for i in range(5):
            db.update("event", i, {"n": i * 10})
        db.delete("event", 4)
        db.close()

        revived = Database(tmp_path)
        revived.create_table(self._schema())
        revived.recover()
        table = revived.table("event")
        stats = table.version_statistics()
        assert stats["chains"] == stats["nodes"] == 4
        assert stats["tombstones"] == 0
        for i in range(4):
            assert table.version_chain_length(i) == 1
        with revived.snapshot() as snap:
            assert snap.count("event") == 4
            assert snap.get("event", 3)["n"] == 30
