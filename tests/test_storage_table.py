"""Unit tests for tables: constraints, indexes, CRUD semantics."""

import pytest

from repro.errors import (
    CheckViolation,
    ForeignKeyViolation,
    NotNullViolation,
    PrimaryKeyViolation,
    RowNotFound,
    SchemaError,
    UniqueViolation,
)
from repro.storage import Column, ColumnType, Database, ForeignKey, TableSchema
from repro.storage.schema import CheckConstraint


class TestSchemaValidation:
    def test_requires_exactly_one_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INT)])

    def test_rejects_two_primary_keys(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [
                    Column("a", ColumnType.INT, primary_key=True),
                    Column("b", ColumnType.INT, primary_key=True),
                ],
            )

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("x", ColumnType.INT),
                    Column("x", ColumnType.TEXT),
                ],
            )

    def test_rejects_bad_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("Bad Name", [Column("id", ColumnType.INT, primary_key=True)])

    def test_rejects_index_on_unknown_column(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("id", ColumnType.INT, primary_key=True)],
                indexes=["missing"],
            )

    def test_rejects_float_primary_key(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("id", ColumnType.FLOAT, primary_key=True)])

    def test_set_null_fk_requires_nullable_column(self):
        with pytest.raises(SchemaError):
            Column(
                "ref",
                ColumnType.INT,
                nullable=False,
                foreign_key=ForeignKey("other", on_delete="set_null"),
            )

    def test_foreign_key_shorthand_parses(self):
        fk = ForeignKey.parse("project.id")
        assert fk.table == "project"
        assert fk.column == "id"

    def test_foreign_key_bad_on_delete(self):
        with pytest.raises(SchemaError):
            ForeignKey("t", on_delete="explode")


class TestInsert:
    def test_auto_allocates_int_pk(self, people_db: Database):
        row1 = people_db.insert("org", {"name": "FGCZ"})
        row2 = people_db.insert("org", {"name": "ETH"})
        assert row1["id"] == 1
        assert row2["id"] == 2

    def test_explicit_pk_respected_and_sequence_advances(self, people_db):
        people_db.insert("org", {"id": 10, "name": "A"})
        row = people_db.insert("org", {"name": "B"})
        assert row["id"] == 11

    def test_duplicate_pk_rejected(self, people_db):
        people_db.insert("org", {"id": 1, "name": "A"})
        with pytest.raises(PrimaryKeyViolation):
            people_db.insert("org", {"id": 1, "name": "B"})

    def test_not_null_enforced(self, people_db):
        with pytest.raises(NotNullViolation):
            people_db.insert("org", {"name": None})

    def test_unique_enforced(self, people_db):
        people_db.insert("org", {"name": "FGCZ"})
        with pytest.raises(UniqueViolation):
            people_db.insert("org", {"name": "FGCZ"})

    def test_unknown_column_rejected(self, people_db):
        with pytest.raises(SchemaError):
            people_db.insert("org", {"name": "A", "bogus": 1})

    def test_defaults_applied(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("status", ColumnType.TEXT, default="pending"),
                    Column("tags", ColumnType.JSON, default=list),
                ],
            )
        )
        row = db.insert("t", {})
        assert row["status"] == "pending"
        assert row["tags"] == []

    def test_callable_defaults_not_shared(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("tags", ColumnType.JSON, default=list),
                ],
            )
        )
        row1 = db.insert("t", {})
        row2 = db.insert("t", {})
        db.update("t", row1["id"], {"tags": ["a"]})
        assert db.get("t", row2["id"])["tags"] == []

    def test_text_pk_must_be_supplied(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [Column("key", ColumnType.TEXT, primary_key=True)],
            )
        )
        with pytest.raises(NotNullViolation):
            db.insert("t", {})
        row = db.insert("t", {"key": "abc"})
        assert row["key"] == "abc"


class TestForeignKeys:
    def test_insert_with_missing_reference_fails(self, people_db):
        with pytest.raises(ForeignKeyViolation):
            people_db.insert("person", {"name": "p", "org_id": 99})

    def test_insert_with_valid_reference(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        person = people_db.insert("person", {"name": "p", "org_id": org["id"]})
        assert person["org_id"] == org["id"]

    def test_null_fk_allowed(self, people_db):
        row = people_db.insert("person", {"name": "p", "org_id": None})
        assert row["org_id"] is None

    def test_restrict_blocks_delete(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        people_db.insert("person", {"name": "p", "org_id": org["id"]})
        with pytest.raises(ForeignKeyViolation):
            people_db.delete("org", org["id"])

    def test_delete_after_children_removed(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        person = people_db.insert("person", {"name": "p", "org_id": org["id"]})
        people_db.delete("person", person["id"])
        people_db.delete("org", org["id"])
        assert people_db.count("org") == 0

    def test_cascade_deletes_children(self):
        db = Database()
        db.create_table(
            TableSchema("parent", [Column("id", ColumnType.INT, primary_key=True)])
        )
        db.create_table(
            TableSchema(
                "child",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column(
                        "parent_id",
                        ColumnType.INT,
                        foreign_key=ForeignKey("parent", on_delete="cascade"),
                    ),
                ],
                indexes=["parent_id"],
            )
        )
        parent = db.insert("parent", {})
        db.insert("child", {"parent_id": parent["id"]})
        db.insert("child", {"parent_id": parent["id"]})
        db.delete("parent", parent["id"])
        assert db.count("child") == 0

    def test_set_null_clears_reference(self):
        db = Database()
        db.create_table(
            TableSchema("parent", [Column("id", ColumnType.INT, primary_key=True)])
        )
        db.create_table(
            TableSchema(
                "child",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column(
                        "parent_id",
                        ColumnType.INT,
                        foreign_key=ForeignKey("parent", on_delete="set_null"),
                    ),
                ],
                indexes=["parent_id"],
            )
        )
        parent = db.insert("parent", {})
        child = db.insert("child", {"parent_id": parent["id"]})
        db.delete("parent", parent["id"])
        assert db.get("child", child["id"])["parent_id"] is None

    def test_fk_to_unknown_table_rejected_at_create(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table(
                TableSchema(
                    "child",
                    [
                        Column("id", ColumnType.INT, primary_key=True),
                        Column("x", ColumnType.INT, foreign_key="nope.id"),
                    ],
                )
            )

    def test_self_reference_allowed(self):
        db = Database()
        db.create_table(
            TableSchema(
                "node",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("parent_id", ColumnType.INT, foreign_key="node.id"),
                ],
                indexes=["parent_id"],
            )
        )
        root = db.insert("node", {"parent_id": None})
        leaf = db.insert("node", {"parent_id": root["id"]})
        assert leaf["parent_id"] == root["id"]


class TestUpdate:
    def test_partial_update(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        person = people_db.insert(
            "person", {"name": "p", "age": 30, "org_id": org["id"]}
        )
        updated = people_db.update("person", person["id"], {"age": 31})
        assert updated["age"] == 31
        assert updated["name"] == "p"

    def test_update_missing_row(self, people_db):
        with pytest.raises(RowNotFound):
            people_db.update("org", 99, {"name": "x"})

    def test_pk_change_rejected(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        with pytest.raises(SchemaError):
            people_db.update("org", org["id"], {"id": 77})

    def test_update_to_duplicate_unique_rejected(self, people_db):
        people_db.insert("org", {"name": "A"})
        b = people_db.insert("org", {"name": "B"})
        with pytest.raises(UniqueViolation):
            people_db.update("org", b["id"], {"name": "A"})

    def test_update_keeps_indexes_fresh(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        person = people_db.insert("person", {"name": "old", "org_id": org["id"]})
        people_db.update("person", person["id"], {"name": "new"})
        assert people_db.query("person").where("name", "=", "old").count() == 0
        assert people_db.query("person").where("name", "=", "new").count() == 1

    def test_failed_update_leaves_row_intact(self, people_db):
        people_db.insert("org", {"name": "A"})
        b = people_db.insert("org", {"name": "B"})
        with pytest.raises(UniqueViolation):
            people_db.update("org", b["id"], {"name": "A"})
        assert people_db.get("org", b["id"])["name"] == "B"
        # Index must still find B under its old name.
        assert people_db.query("org").where("name", "=", "B").count() == 1


class TestDelete:
    def test_delete_returns_row(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        deleted = people_db.delete("org", org["id"])
        assert deleted["name"] == "FGCZ"
        assert people_db.count("org") == 0

    def test_delete_missing_row(self, people_db):
        with pytest.raises(RowNotFound):
            people_db.delete("org", 12345)

    def test_delete_cleans_indexes(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        people_db.delete("org", org["id"])
        assert people_db.query("org").where("name", "=", "FGCZ").count() == 0

    def test_deleted_pk_not_reused(self, people_db):
        row = people_db.insert("org", {"name": "A"})
        people_db.delete("org", row["id"])
        row2 = people_db.insert("org", {"name": "B"})
        assert row2["id"] > row["id"]


class TestChecks:
    def test_column_check(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("size", ColumnType.INT, check=lambda v: v >= 0),
                ],
            )
        )
        db.insert("t", {"size": 5})
        with pytest.raises(CheckViolation):
            db.insert("t", {"size": -1})

    def test_table_check(self):
        db = Database()
        db.create_table(
            TableSchema(
                "span",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("low", ColumnType.INT, nullable=False),
                    Column("high", ColumnType.INT, nullable=False),
                ],
                checks=[
                    CheckConstraint(
                        "ck_span_order",
                        lambda row: row["low"] <= row["high"],
                        "low must not exceed high",
                    )
                ],
            )
        )
        db.insert("span", {"low": 1, "high": 2})
        with pytest.raises(CheckViolation):
            db.insert("span", {"low": 3, "high": 2})

    def test_null_skips_column_check(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("size", ColumnType.INT, check=lambda v: v >= 0),
                ],
            )
        )
        row = db.insert("t", {"size": None})
        assert row["size"] is None


class TestUniqueTogether:
    def test_composite_uniqueness(self):
        db = Database()
        db.create_table(
            TableSchema(
                "membership",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("user_id", ColumnType.INT, nullable=False),
                    Column("project_id", ColumnType.INT, nullable=False),
                ],
                unique_together=[("user_id", "project_id")],
            )
        )
        db.insert("membership", {"user_id": 1, "project_id": 1})
        db.insert("membership", {"user_id": 1, "project_id": 2})
        with pytest.raises(UniqueViolation):
            db.insert("membership", {"user_id": 1, "project_id": 1})

    def test_null_component_does_not_collide(self):
        db = Database()
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column("a", ColumnType.INT),
                    Column("b", ColumnType.INT),
                ],
                unique_together=[("a", "b")],
            )
        )
        db.insert("t", {"a": 1, "b": None})
        db.insert("t", {"a": 1, "b": None})  # SQL semantics: NULLs never equal


class TestIntegrityVerification:
    def test_clean_database_reports_no_problems(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        people_db.insert("person", {"name": "p", "org_id": org["id"]})
        assert people_db.verify_integrity() == []

    def test_rebuild_indexes_preserves_queries(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        for i in range(10):
            people_db.insert("person", {"name": f"p{i}", "org_id": org["id"]})
        people_db.rebuild_indexes()
        assert (
            people_db.query("person").where("org_id", "=", org["id"]).count() == 10
        )
        assert people_db.verify_integrity() == []
