"""Transaction semantics: atomicity, rollback, savepoints, context manager."""

import pytest

from repro.errors import (
    ForeignKeyViolation,
    TransactionError,
    UniqueViolation,
)
from repro.storage import Database


class TestCommitRollback:
    def test_commit_persists(self, people_db: Database):
        with people_db.transaction() as txn:
            txn.insert("org", {"name": "FGCZ"})
        assert people_db.count("org") == 1

    def test_rollback_discards(self, people_db):
        txn = people_db.transaction()
        txn.insert("org", {"name": "FGCZ"})
        txn.rollback()
        assert people_db.count("org") == 0

    def test_exception_inside_block_rolls_back(self, people_db):
        with pytest.raises(RuntimeError):
            with people_db.transaction() as txn:
                txn.insert("org", {"name": "FGCZ"})
                raise RuntimeError("boom")
        assert people_db.count("org") == 0

    def test_multi_table_atomicity(self, people_db):
        txn = people_db.transaction()
        org = txn.insert("org", {"name": "FGCZ"})
        txn.insert("person", {"name": "p", "org_id": org["id"]})
        txn.rollback()
        assert people_db.count("org") == 0
        assert people_db.count("person") == 0

    def test_rollback_restores_update(self, people_db):
        org = people_db.insert("org", {"name": "before"})
        txn = people_db.transaction()
        txn.update("org", org["id"], {"name": "after"})
        txn.rollback()
        assert people_db.get("org", org["id"])["name"] == "before"

    def test_rollback_restores_delete(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        txn = people_db.transaction()
        txn.delete("org", org["id"])
        txn.rollback()
        assert people_db.get("org", org["id"])["name"] == "FGCZ"

    def test_rollback_restores_indexes(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        txn = people_db.transaction()
        txn.update("org", org["id"], {"name": "renamed"})
        txn.rollback()
        assert people_db.query("org").where("name", "=", "FGCZ").count() == 1
        assert people_db.query("org").where("name", "=", "renamed").count() == 0

    def test_use_after_commit_fails(self, people_db):
        txn = people_db.transaction()
        txn.insert("org", {"name": "A"})
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("org", {"name": "B"})

    def test_double_commit_fails(self, people_db):
        txn = people_db.transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_explicit_commit_then_block_exit_is_noop(self, people_db):
        with people_db.transaction() as txn:
            txn.insert("org", {"name": "A"})
            txn.commit()
        assert people_db.count("org") == 1

    def test_failed_statement_does_not_poison_transaction(self, people_db):
        with people_db.transaction() as txn:
            txn.insert("org", {"name": "A"})
            with pytest.raises(UniqueViolation):
                txn.insert("org", {"name": "A"})
            txn.insert("org", {"name": "B"})
        assert people_db.count("org") == 2


class TestSavepoints:
    def test_rollback_to_savepoint(self, people_db):
        with people_db.transaction() as txn:
            txn.insert("org", {"name": "A"})
            txn.savepoint("sp")
            txn.insert("org", {"name": "B"})
            txn.rollback_to("sp")
        names = sorted(people_db.query("org").values("name"))
        assert names == ["A"]

    def test_unknown_savepoint(self, people_db):
        with people_db.transaction() as txn:
            with pytest.raises(TransactionError):
                txn.rollback_to("missing")

    def test_savepoint_invalidated_after_rollback_past_it(self, people_db):
        with people_db.transaction() as txn:
            txn.savepoint("outer")
            txn.insert("org", {"name": "A"})
            txn.savepoint("inner")
            txn.rollback_to("outer")
            with pytest.raises(TransactionError):
                txn.rollback_to("inner")

    def test_nested_savepoints(self, people_db):
        with people_db.transaction() as txn:
            txn.insert("org", {"name": "keep"})
            txn.savepoint("one")
            txn.insert("org", {"name": "drop1"})
            txn.savepoint("two")
            txn.insert("org", {"name": "drop2"})
            txn.rollback_to("two")
            txn.rollback_to("one")
        assert people_db.query("org").values("name") == ["keep"]


class TestCascadeInTransactions:
    def test_cascade_rolls_back_with_transaction(self):
        from repro.storage import Column, ColumnType, ForeignKey, TableSchema

        db = Database()
        db.create_table(
            TableSchema("parent", [Column("id", ColumnType.INT, primary_key=True)])
        )
        db.create_table(
            TableSchema(
                "child",
                [
                    Column("id", ColumnType.INT, primary_key=True),
                    Column(
                        "parent_id",
                        ColumnType.INT,
                        foreign_key=ForeignKey("parent", on_delete="cascade"),
                    ),
                ],
                indexes=["parent_id"],
            )
        )
        parent = db.insert("parent", {})
        db.insert("child", {"parent_id": parent["id"]})
        txn = db.transaction()
        txn.delete("parent", parent["id"])
        assert db.count("child") == 0
        txn.rollback()
        assert db.count("child") == 1
        assert db.count("parent") == 1

    def test_restrict_raises_before_any_mutation(self, people_db):
        org = people_db.insert("org", {"name": "FGCZ"})
        people_db.insert("person", {"name": "p", "org_id": org["id"]})
        with people_db.transaction() as txn:
            with pytest.raises(ForeignKeyViolation):
                txn.delete("org", org["id"])
        assert people_db.count("org") == 1
        assert people_db.count("person") == 1


class TestCommitListeners:
    def test_listener_sees_operations(self, people_db):
        seen = []
        people_db.on_commit(lambda ops: seen.append([op.op for op in ops]))
        with people_db.transaction() as txn:
            org = txn.insert("org", {"name": "A"})
            txn.update("org", org["id"], {"name": "B"})
        assert seen == [["insert", "update"]]

    def test_listener_not_called_on_rollback(self, people_db):
        seen = []
        people_db.on_commit(lambda ops: seen.append(ops))
        txn = people_db.transaction()
        txn.insert("org", {"name": "A"})
        txn.rollback()
        assert seen == []
