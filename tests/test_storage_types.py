"""Unit tests for storage value coercion and ordering."""

import datetime as dt

import pytest

from repro.errors import SchemaError
from repro.storage.types import (
    ColumnType,
    coerce,
    from_jsonable,
    sort_key,
    to_jsonable,
)


class TestCoerceInt:
    def test_accepts_int(self):
        assert coerce(5, ColumnType.INT) == 5

    def test_accepts_integral_float(self):
        assert coerce(5.0, ColumnType.INT) == 5

    def test_rejects_fractional_float(self):
        with pytest.raises(SchemaError):
            coerce(5.5, ColumnType.INT)

    def test_rejects_bool(self):
        with pytest.raises(SchemaError):
            coerce(True, ColumnType.INT)

    def test_rejects_string(self):
        with pytest.raises(SchemaError):
            coerce("5", ColumnType.INT)

    def test_none_passes_through(self):
        assert coerce(None, ColumnType.INT) is None


class TestCoerceFloat:
    def test_accepts_float(self):
        assert coerce(2.5, ColumnType.FLOAT) == 2.5

    def test_upgrades_int(self):
        value = coerce(2, ColumnType.FLOAT)
        assert value == 2.0
        assert isinstance(value, float)

    def test_rejects_bool(self):
        with pytest.raises(SchemaError):
            coerce(False, ColumnType.FLOAT)


class TestCoerceText:
    def test_accepts_str(self):
        assert coerce("abc", ColumnType.TEXT) == "abc"

    def test_rejects_int(self):
        with pytest.raises(SchemaError):
            coerce(42, ColumnType.TEXT)


class TestCoerceBool:
    def test_accepts_bool(self):
        assert coerce(True, ColumnType.BOOL) is True

    def test_rejects_int(self):
        with pytest.raises(SchemaError):
            coerce(1, ColumnType.BOOL)


class TestCoerceDatetime:
    def test_accepts_datetime(self):
        moment = dt.datetime(2010, 1, 15, 9, 30)
        assert coerce(moment, ColumnType.DATETIME) == moment

    def test_accepts_date(self):
        assert coerce(dt.date(2010, 1, 15), ColumnType.DATETIME) == dt.datetime(
            2010, 1, 15
        )

    def test_parses_iso_string(self):
        assert coerce("2010-01-15T09:30:00", ColumnType.DATETIME) == dt.datetime(
            2010, 1, 15, 9, 30
        )

    def test_parses_date_only_string(self):
        assert coerce("2010-01-15", ColumnType.DATETIME) == dt.datetime(2010, 1, 15)

    def test_rejects_garbage(self):
        with pytest.raises(SchemaError):
            coerce("not a date", ColumnType.DATETIME)


class TestCoerceJson:
    def test_accepts_nested_structures(self):
        value = {"a": [1, 2, {"b": None}]}
        assert coerce(value, ColumnType.JSON) == value

    def test_deep_copies(self):
        original = {"inner": [1]}
        stored = coerce(original, ColumnType.JSON)
        stored["inner"].append(2)
        assert original == {"inner": [1]}

    def test_rejects_non_serializable(self):
        with pytest.raises(SchemaError):
            coerce(object(), ColumnType.JSON)


class TestJsonableRoundTrip:
    def test_datetime_round_trips(self):
        moment = dt.datetime(2010, 1, 15, 9, 30, 12)
        encoded = to_jsonable(moment, ColumnType.DATETIME)
        assert isinstance(encoded, str)
        assert from_jsonable(encoded, ColumnType.DATETIME) == moment

    def test_none_round_trips(self):
        assert to_jsonable(None, ColumnType.DATETIME) is None
        assert from_jsonable(None, ColumnType.INT) is None

    def test_plain_values_round_trip(self):
        for value, col_type in [
            (3, ColumnType.INT),
            (1.5, ColumnType.FLOAT),
            ("x", ColumnType.TEXT),
            (True, ColumnType.BOOL),
            ({"k": 1}, ColumnType.JSON),
        ]:
            assert from_jsonable(to_jsonable(value, col_type), col_type) == value


class TestSortKey:
    def test_none_sorts_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key) == [None, 1, 3]

    def test_mixed_types_do_not_raise(self):
        values = ["b", 2, None, dt.datetime(2010, 1, 1), "a", 1.5]
        ordering = sorted(values, key=sort_key)
        assert ordering[0] is None

    def test_numbers_order_numerically(self):
        assert sorted([10, 2, 33], key=sort_key) == [2, 10, 33]

    def test_datetimes_order_chronologically(self):
        early = dt.datetime(2009, 6, 1)
        late = dt.datetime(2010, 1, 1)
        assert sorted([late, early], key=sort_key) == [early, late]
