"""Durability: WAL append, checkpointing, recovery, torn-tail healing."""

import datetime as dt

import pytest

from repro.errors import CrashPoint, WalCorruption
from repro.resilience import WAL_SITES, Fault, FaultPlan, inject
from repro.storage import Column, ColumnType, Database, TableSchema
from repro.storage.wal import WriteAheadLog


def make_schema():
    return TableSchema(
        "item",
        [
            Column("id", ColumnType.INT, primary_key=True),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("created", ColumnType.DATETIME),
            Column("meta", ColumnType.JSON),
        ],
        indexes=["name"],
    )


def open_db(path) -> Database:
    db = Database(path)
    db.create_table(make_schema())
    return db


class TestRecovery:
    def test_inserts_survive_reopen(self, tmp_path):
        db = open_db(tmp_path)
        db.insert(
            "item",
            {
                "name": "raw1",
                "created": dt.datetime(2010, 1, 5, 12, 0),
                "meta": {"instrument": "GeneChip"},
            },
        )
        db.close()

        db2 = open_db(tmp_path)
        stats = db2.recover()
        assert stats["wal_txns"] == 1
        row = db2.get("item", 1)
        assert row["name"] == "raw1"
        assert row["created"] == dt.datetime(2010, 1, 5, 12, 0)
        assert row["meta"] == {"instrument": "GeneChip"}

    def test_updates_and_deletes_replay(self, tmp_path):
        db = open_db(tmp_path)
        a = db.insert("item", {"name": "a"})
        b = db.insert("item", {"name": "b"})
        db.update("item", a["id"], {"name": "a2"})
        db.delete("item", b["id"])
        db.close()

        db2 = open_db(tmp_path)
        db2.recover()
        assert db2.count("item") == 1
        assert db2.get("item", a["id"])["name"] == "a2"

    def test_rolled_back_txn_not_in_wal(self, tmp_path):
        db = open_db(tmp_path)
        txn = db.transaction()
        txn.insert("item", {"name": "ghost"})
        txn.rollback()
        db.insert("item", {"name": "real"})
        db.close()

        db2 = open_db(tmp_path)
        db2.recover()
        assert db2.query("item").values("name") == ["real"]

    def test_id_sequence_continues_after_recovery(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("item", {"name": "a"})
        db.insert("item", {"name": "b"})
        db.close()

        db2 = open_db(tmp_path)
        db2.recover()
        row = db2.insert("item", {"name": "c"})
        assert row["id"] == 3

    def test_indexes_rebuilt_after_recovery(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("item", {"name": "findme"})
        db.close()

        db2 = open_db(tmp_path)
        db2.recover()
        plan = db2.query("item").where("name", "=", "findme").explain()
        assert plan["strategy"].startswith("index:")
        assert db2.query("item").where("name", "=", "findme").count() == 1


class TestCheckpoint:
    def test_checkpoint_resets_wal(self, tmp_path):
        db = open_db(tmp_path)
        for i in range(20):
            db.insert("item", {"name": f"n{i}"})
        size_before = (tmp_path / "wal.log").stat().st_size
        db.checkpoint()
        size_after = (tmp_path / "wal.log").stat().st_size
        assert size_after < size_before
        db.close()

        db2 = open_db(tmp_path)
        stats = db2.recover()
        assert stats["snapshot_rows"] == 20
        assert db2.count("item") == 20

    def test_commits_after_checkpoint_replay_on_top(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("item", {"name": "old"})
        db.checkpoint()
        db.insert("item", {"name": "new"})
        db.close()

        db2 = open_db(tmp_path)
        stats = db2.recover()
        assert stats["snapshot_rows"] == 1
        assert stats["wal_txns"] == 1
        assert db2.count("item") == 2

    def test_checkpoint_requires_directory(self):
        from repro.errors import SchemaError

        db = Database()
        with pytest.raises(SchemaError):
            db.checkpoint()


class TestTornTail:
    def test_torn_final_record_is_discarded(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("item", {"name": "safe"})
        db.insert("item", {"name": "casualty"})
        db.close()

        # Simulate a crash that tore the last append.
        wal_path = tmp_path / "wal.log"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-15])

        db2 = open_db(tmp_path)
        stats = db2.recover()
        assert stats["wal_txns"] == 1
        assert db2.query("item").values("name") == ["safe"]

    def test_recovery_heals_file_for_future_commits(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("item", {"name": "safe"})
        db.close()
        wal_path = tmp_path / "wal.log"
        with open(wal_path, "a") as fh:
            fh.write("deadbeef {torn")

        db2 = open_db(tmp_path)
        db2.recover()
        db2.insert("item", {"name": "after"})
        db2.close()

        db3 = open_db(tmp_path)
        db3.recover()
        assert sorted(db3.query("item").values("name")) == ["after", "safe"]

    def test_mid_file_corruption_raises(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("item", {"name": "one"})
        db.insert("item", {"name": "two"})
        db.close()

        wal_path = tmp_path / "wal.log"
        lines = wal_path.read_text().splitlines()
        lines[0] = "00000000 {corrupt}"
        wal_path.write_text("\n".join(lines) + "\n")

        db2 = open_db(tmp_path)
        with pytest.raises(WalCorruption):
            db2.recover()


class TestWalFile:
    def test_records_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal._append_record("commit", {"txn": 1, "ops": []})
        wal._append_record("checkpoint", {"snapshot": "s"})
        records = list(wal.records())
        assert [r["kind"] for r in records] == ["commit", "checkpoint"]
        wal.close()

    def test_empty_file_yields_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        assert list(wal.records()) == []
        wal.close()

    def test_size_bytes(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        assert wal.size_bytes() == 0
        wal._append_record("commit", {"txn": 1, "ops": []})
        assert wal.size_bytes() > 0
        wal.close()


class TestNonDurable:
    def test_durable_false_skips_wal(self, tmp_path):
        db = Database(tmp_path, durable=False)
        db.create_table(make_schema())
        db.insert("item", {"name": "x"})
        assert not (tmp_path / "wal.log").exists()

    def test_statistics_reports_wal_bytes(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("item", {"name": "x"})
        stats = db.statistics()
        assert stats["wal_bytes"] > 0
        assert stats["tables"]["item"] == 1
        assert stats["total_rows"] == 1


class TestCompactEncoding:
    """Commit records omit absent images (PR2): inserts carry no
    ``before``, deletes no ``after``."""

    def test_insert_update_delete_images(self, tmp_path):
        db = open_db(tmp_path)
        row = db.insert("item", {"name": "a"})
        db.update("item", row["id"], {"name": "b"})
        db.delete("item", row["id"])
        records = list(db._wal.records())
        ops = [op for rec in records for op in rec["ops"]]
        by_kind = {op["op"]: op for op in ops}
        assert "before" not in by_kind["insert"]
        assert "after" in by_kind["insert"]
        assert "before" in by_kind["update"] and "after" in by_kind["update"]
        assert "after" not in by_kind["delete"]
        assert "before" in by_kind["delete"]
        db.close()

    def test_compact_records_replay(self, tmp_path):
        db = open_db(tmp_path)
        keep = db.insert("item", {"name": "keep"})
        gone = db.insert("item", {"name": "gone"})
        db.update("item", keep["id"], {"name": "kept"})
        db.delete("item", gone["id"])
        db.close()

        revived = open_db(tmp_path)
        revived.recover()
        assert revived.count("item") == 1
        assert revived.get("item", keep["id"])["name"] == "kept"


class TestDurabilityModes:
    """Recovery semantics hold in every durability mode."""

    @pytest.mark.parametrize("mode", ["always", "group", "group:5:64", "buffered"])
    def test_commits_survive_reopen(self, tmp_path, mode):
        db = Database(tmp_path, durability=mode)
        db.create_table(make_schema())
        for i in range(5):
            db.insert("item", {"name": f"r{i}"})
        db.close()

        revived = open_db(tmp_path)
        stats = revived.recover()
        assert stats["wal_txns"] == 5
        assert revived.count("item") == 5

    @pytest.mark.parametrize("mode", ["group", "buffered"])
    def test_torn_tail_still_healed(self, tmp_path, mode):
        db = Database(tmp_path, durability=mode)
        db.create_table(make_schema())
        db.insert("item", {"name": "whole"})
        db.close()
        wal_path = tmp_path / "wal.log"
        with wal_path.open("a", encoding="utf-8") as fh:
            fh.write('deadbeef {"kind": "commit", "txn"')  # torn write

        revived = open_db(tmp_path)
        revived.recover()
        assert revived.count("item") == 1
        assert revived.query("item").one()["name"] == "whole"

    def test_checkpoint_under_group_mode(self, tmp_path):
        db = Database(tmp_path, durability="group")
        db.create_table(make_schema())
        db.insert("item", {"name": "pre"})
        db.checkpoint()
        db.insert("item", {"name": "post"})
        db.close()

        revived = Database(tmp_path, durability="group")
        revived.create_table(make_schema())
        revived.recover()
        assert sorted(revived.query("item").values("name")) == ["post", "pre"]

    @pytest.mark.parametrize(
        "mode", ["always", "group:4:32", "buffered"]
    )
    @pytest.mark.parametrize("site", WAL_SITES)
    def test_crash_at_every_fault_site_heals(self, tmp_path, mode, site):
        """A kill at any WAL crash point (including a torn write) never
        loses an earlier commit, and the healed log accepts new ones."""
        db = Database(tmp_path, durability=mode)
        db.create_table(make_schema())
        db.insert("item", {"name": "keep"})
        if site == "wal.write":
            fault = Fault(site, kind="torn_write", at_call=1, fraction=0.5)
        else:
            fault = Fault(site, at_call=1, error=CrashPoint)
        with inject(FaultPlan([fault])):
            try:
                db.insert("item", {"name": "crashing"})
            except Exception:
                pass
        # Simulated kill: abandon the handle without close().
        del db

        revived = Database(tmp_path, durability=mode)
        revived.create_table(make_schema())
        revived.recover()
        assert "keep" in set(revived.query("item").values("name"))
        assert revived.verify_integrity() == []
        revived.insert("item", {"name": "after-heal"})
        revived.close()

        again = open_db(tmp_path)
        again.recover()
        assert "after-heal" in set(again.query("item").values("name"))
        again.close()

    def test_statistics_report_durability(self, tmp_path):
        db = Database(tmp_path, durability="group:5:64")
        db.create_table(make_schema())
        spec = db.statistics()["durability"]
        assert spec.startswith("group")
        db.close()


class TestTornTailEdgeCases:
    """truncate_torn_tail() on degenerate logs (PR 5 hardening)."""

    def test_empty_log_is_a_no_op(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal.truncate_torn_tail()
        assert list(wal.records()) == []
        assert wal.size_bytes() == 0
        wal.close()

    def test_only_line_torn_truncates_to_empty(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal._append_record("commit", {"txn": 1, "ops": []})
        wal.close()
        path = tmp_path / "w.log"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])

        wal2 = WriteAheadLog(path)
        wal2.truncate_torn_tail()
        assert list(wal2.records()) == []
        assert wal2.size_bytes() == 0
        wal2.close()

    def test_valid_line_after_tear_is_dropped(self, tmp_path):
        # Healing keeps the longest intact PREFIX.  A valid-looking
        # record after a tear must never be resurrected: the tear means
        # everything beyond it is of unknown provenance.
        wal = WriteAheadLog(tmp_path / "w.log")
        wal._append_record("commit", {"txn": 1, "ops": []})
        wal.close()
        path = tmp_path / "w.log"
        intact_prefix = path.read_bytes()
        with open(path, "ab") as fh:
            fh.write(b"deadbeef {torn\n")
        wal2 = WriteAheadLog(path)
        wal2._append_record("commit", {"txn": 2, "ops": []})
        wal2.close()

        wal3 = WriteAheadLog(path)
        wal3.truncate_torn_tail()
        assert [r["txn"] for r in wal3.records()] == [1]
        assert path.read_bytes() == intact_prefix
        wal3.close()

    def test_double_truncate_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal._append_record("commit", {"txn": 1, "ops": []})
        wal._append_record("commit", {"txn": 2, "ops": []})
        wal.close()
        path = tmp_path / "w.log"
        with open(path, "ab") as fh:
            fh.write(b"0bad0bad {garbage")

        wal2 = WriteAheadLog(path)
        wal2.truncate_torn_tail()
        healed = path.read_bytes()
        wal2.truncate_torn_tail()
        assert path.read_bytes() == healed
        assert [r["txn"] for r in wal2.records()] == [1, 2]
        wal2.close()


class TestGeneration:
    """generation() — every in-place rewrite invalidates tail offsets."""

    def test_reset_and_truncate_bump_the_generation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        start = wal.generation()
        wal._append_record("commit", {"txn": 1, "ops": []})
        assert wal.generation() == start  # appends keep offsets valid
        wal.reset()
        assert wal.generation() == start + 1
        wal._append_record("commit", {"txn": 2, "ops": []})
        wal.truncate_torn_tail()
        assert wal.generation() == start + 2
        wal.close()


class TestResumableRecords:
    """records(start_offset=...) / records_with_offsets / tail_offset —
    the tailing primitives the replication publisher is built on."""

    def test_records_resume_from_offset(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal._append_record("commit", {"txn": 1, "ops": []})
        middle = wal.tail_offset()
        wal._append_record("commit", {"txn": 2, "ops": []})
        wal._append_record("commit", {"txn": 3, "ops": []})
        assert [r["txn"] for r in wal.records(start_offset=middle)] == [2, 3]
        assert [r["txn"] for r in wal.records()] == [1, 2, 3]
        wal.close()

    def test_offsets_chain_exactly(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        for txn in (1, 2, 3):
            wal._append_record("commit", {"txn": txn, "ops": []})
        pairs = list(wal.records_with_offsets())
        assert [record["txn"] for record, _end in pairs] == [1, 2, 3]
        # Every end offset is a valid resume point for the remainder.
        for index, (_record, end) in enumerate(pairs):
            rest = [r["txn"] for r, _ in wal.records_with_offsets(end)]
            assert rest == [2, 3][index:]
        assert pairs[-1][1] == wal.tail_offset()
        wal.close()

    def test_tail_offset_tracks_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        assert wal.tail_offset() == 0
        wal._append_record("commit", {"txn": 1, "ops": []})
        first = wal.tail_offset()
        assert first == wal.size_bytes() > 0
        wal._append_record("commit", {"txn": 2, "ops": []})
        assert wal.tail_offset() > first
        wal.close()

    def test_lenient_iteration_stops_at_torn_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.log")
        wal._append_record("commit", {"txn": 1, "ops": []})
        wal._append_record("commit", {"txn": 2, "ops": []})
        wal.close()
        path = tmp_path / "w.log"
        good_end = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"deadbeef {half-writ")  # no newline: in-flight append

        wal2 = WriteAheadLog(path)
        pairs = list(wal2.records_with_offsets())
        assert [record["txn"] for record, _end in pairs] == [1, 2]
        # The tailer parks exactly at the intact prefix's end, so the
        # next poll re-reads only the (possibly now completed) tail.
        assert pairs[-1][1] == good_end
        wal2.close()
