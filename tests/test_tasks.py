"""Task orientation: creation, inboxes, rule-driven derivation (Figure 8)."""

import datetime as dt

import pytest

from repro.errors import StateError
from repro.facade import BFabric
from repro.tasks.rules import KIND_RELEASE_ANNOTATION
from repro.util.clock import ManualClock


@pytest.fixture
def system():
    return BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def actors(system):
    admin = system.bootstrap()
    scientist = system.add_user(admin, login="sci", full_name="Sci")
    expert = system.add_user(admin, login="exp", full_name="Exp", role="employee")
    return admin, scientist, expert


class TestTaskService:
    def test_create_role_task(self, system, actors):
        _, _, expert = actors
        task = system.tasks.create(
            "review", "Review something", assignee_role="employee"
        )
        assert task.status == "open"
        assert [t.id for t in system.tasks.inbox(expert)] == [task.id]

    def test_create_personal_task(self, system, actors):
        _, scientist, expert = actors
        task = system.tasks.create(
            "todo", "Do a thing", assignee_id=scientist.user_id
        )
        assert [t.id for t in system.tasks.inbox(scientist)] == [task.id]
        assert task.id not in [t.id for t in system.tasks.inbox(expert)]

    def test_exactly_one_assignee_required(self, system):
        with pytest.raises(StateError):
            system.tasks.create("x", "both", assignee_id=1, assignee_role="employee")
        with pytest.raises(StateError):
            system.tasks.create("x", "neither")

    def test_admin_sees_employee_tasks(self, system, actors):
        admin, _, _ = actors
        system.tasks.create("review", "For experts", assignee_role="employee")
        assert system.tasks.open_count(admin) == 1

    def test_scientist_does_not_see_expert_tasks(self, system, actors):
        _, scientist, _ = actors
        system.tasks.create("review", "For experts", assignee_role="employee")
        assert system.tasks.open_count(scientist) == 0

    def test_complete(self, system, actors):
        _, _, expert = actors
        task = system.tasks.create("review", "t", assignee_role="employee")
        done = system.tasks.complete(expert, task.id)
        assert done.status == "done"
        assert done.completed_by == expert.user_id
        assert system.tasks.inbox(expert) == []

    def test_complete_twice_fails(self, system, actors):
        _, _, expert = actors
        task = system.tasks.create("review", "t", assignee_role="employee")
        system.tasks.complete(expert, task.id)
        with pytest.raises(StateError):
            system.tasks.complete(expert, task.id)

    def test_cancel(self, system, actors):
        _, _, expert = actors
        task = system.tasks.create("review", "t", assignee_role="employee")
        cancelled = system.tasks.cancel(expert, task.id)
        assert cancelled.status == "cancelled"

    def test_complete_for_entity_scopes_by_kind(self, system, actors):
        _, _, expert = actors
        system.tasks.create(
            "kind_a", "a", assignee_role="employee",
            entity_type="thing", entity_id=7,
        )
        system.tasks.create(
            "kind_b", "b", assignee_role="employee",
            entity_type="thing", entity_id=7,
        )
        done = system.tasks.complete_for_entity(expert, "kind_a", "thing", 7)
        assert done == 1
        assert len(system.tasks.open_for_entity("thing", 7)) == 1


class TestAnnotationRules:
    """Paper: new annotation -> release task; review -> task closes."""

    def test_creation_opens_expert_task(self, system, actors):
        _, scientist, expert = actors
        attribute = system.annotations.define_attribute(expert, "Disease State")
        annotation, _ = system.annotations.create_annotation(
            scientist, attribute.id, "Hopeless"
        )
        inbox = system.tasks.inbox(expert)
        assert len(inbox) == 1
        assert inbox[0].kind == KIND_RELEASE_ANNOTATION
        assert "Hopeless" in inbox[0].title
        assert inbox[0].entity_id == annotation.id

    def test_task_title_mentions_similarity(self, system, actors):
        _, scientist, expert = actors
        attribute = system.annotations.define_attribute(expert, "Disease State")
        system.annotations.create_annotation(scientist, attribute.id, "Hopeless")
        system.annotations.create_annotation(scientist, attribute.id, "Hopeles")
        titles = [t.title for t in system.tasks.inbox(expert)]
        assert any("similar to 'Hopeless'" in title for title in titles)

    def test_release_closes_task(self, system, actors):
        _, scientist, expert = actors
        attribute = system.annotations.define_attribute(expert, "Disease State")
        annotation, _ = system.annotations.create_annotation(
            scientist, attribute.id, "Hopeless"
        )
        system.annotations.release(expert, annotation.id)
        assert system.tasks.inbox(expert) == []

    def test_reject_closes_task(self, system, actors):
        _, scientist, expert = actors
        attribute = system.annotations.define_attribute(expert, "Disease State")
        annotation, _ = system.annotations.create_annotation(
            scientist, attribute.id, "Wrong"
        )
        system.annotations.reject(expert, annotation.id)
        assert system.tasks.inbox(expert) == []

    def test_merge_closes_both_tasks(self, system, actors):
        _, scientist, expert = actors
        attribute = system.annotations.define_attribute(expert, "Disease State")
        keep, _ = system.annotations.create_annotation(
            scientist, attribute.id, "Hopeless"
        )
        merge, _ = system.annotations.create_annotation(
            scientist, attribute.id, "Hopeles"
        )
        assert system.tasks.open_count(expert) == 2
        system.annotations.merge(expert, keep.id, merge.id)
        assert system.tasks.open_count(expert) == 0


class TestImportRules:
    def test_import_opens_and_assignment_closes(self, system, actors, tmp_path):
        from repro.dataimport import AffymetrixGeneChipProvider

        _, scientist, _ = actors
        project = system.projects.create(scientist, "P")
        sample = system.samples.register_sample(scientist, project.id, "s")
        system.samples.batch_register_extracts(
            scientist, sample.id, ["scan01 a", "scan01 b"]
        )
        system.imports.register_provider(
            AffymetrixGeneChipProvider("GeneChip", runs=1)
        )
        workunit, _, _ = system.imports.import_files(
            scientist, project.id, "GeneChip",
            ["scan01_a.cel", "scan01_b.cel"],
            workunit_name="import",
        )
        assert any(
            t.kind == "assign_extracts" for t in system.tasks.inbox(scientist)
        )
        system.imports.apply_assignments(scientist, workunit.id)
        assert system.tasks.inbox(scientist) == []
