"""Crash-point torture: kill the WAL at every fault site, verify recovery.

Every registered WAL crash site is exercised in every durability mode.
A case commits a few rows, deliberately rolls one back, then a scripted
fault kills the database mid-commit; the driver reopens the directory,
recovers, and checks the recovery invariants:

* no committed row is lost,
* no row appears that was neither committed nor in the uncertainty
  window of the crashed commit,
* deliberately rolled-back rows stay gone,
* integrity is clean, recovery is idempotent, and the healed log
  accepts new commits.
"""

import pytest

from repro.resilience import WAL_SITES
from repro.resilience.torture import (
    DEFAULT_MODES,
    TortureReport,
    run_case,
    run_torture,
)


@pytest.mark.parametrize("mode", DEFAULT_MODES)
@pytest.mark.parametrize("site", WAL_SITES)
class TestEveryCrashPoint:
    def test_recovery_invariants_hold(self, tmp_path, mode, site):
        result = run_case(
            tmp_path / "case", mode=mode, site=site, commits=6, seed=2010
        )
        assert result.ok, result.describe()
        # Every committed row survived and no aborted row came back.
        assert set(result.committed) <= set(result.present)
        assert set(result.present) <= set(result.committed) | set(
            result.uncertain
        )
        assert not set(result.aborted) & set(result.present)

    def test_seed_offsets_move_the_crash_step(self, tmp_path, mode, site):
        a = run_case(
            tmp_path / "a", mode=mode, site=site, commits=6, seed=1, offset=0
        )
        b = run_case(
            tmp_path / "b", mode=mode, site=site, commits=6, seed=1, offset=1
        )
        assert a.ok and b.ok


class TestDriver:
    def test_full_sweep_reports_every_case(self, tmp_path):
        report = run_torture(tmp_path, commits=4, seed=7)
        assert isinstance(report, TortureReport)
        assert report.ok
        assert report.failures() == []
        assert len(report.cases) == len(DEFAULT_MODES) * len(WAL_SITES)
        covered = {(c.mode, c.site) for c in report.cases}
        assert covered == {
            (m, s) for m in DEFAULT_MODES for s in WAL_SITES
        }
        # The summary names every case and its verdict.
        summary = report.summary()
        assert "[ok]" in summary
        assert "wal.write" in summary

    def test_fsync_site_unreachable_in_buffered_mode(self, tmp_path):
        # Buffered durability never fsyncs, so that crash site cannot
        # fire — the case still runs and validates plain recovery.
        result = run_case(
            tmp_path, mode="buffered", site="wal.after_fsync",
            commits=4, seed=3,
        )
        assert result.ok
        assert not result.fired

    def test_commit_floor_is_enforced(self, tmp_path):
        with pytest.raises(ValueError):
            run_torture(tmp_path, commits=2)


class TestIngestTorture:
    def test_torn_ack_and_restart_keep_imports_effects_once(self, tmp_path):
        # The full sweep runs from ``repro torture --ingest``; the test
        # suite covers the nastiest site (the torn ack: work complete,
        # job still leased) plus the database-restart case that every
        # run appends.
        from repro.resilience.torture import (
            INGEST_RESTART_SITE,
            run_ingest_torture,
        )

        report = run_ingest_torture(
            tmp_path / "ingest",
            sites=("queue.ack",),
            jobs=2,
            files_per_job=1,
            seed=11,
        )
        assert report.ok, report.summary()
        assert [c.site for c in report.cases] == [
            "queue.ack", INGEST_RESTART_SITE,
        ]
        for case in report.cases:
            assert case.fired, "the scripted kill never landed"
            # Every enqueued job ended done — none lost, none dead.
            assert set(case.committed) == set(case.present)
            assert not case.uncertain and not case.aborted


class TestReplicationTorture:
    def test_kill_primary_promote_invariants(self, tmp_path):
        from repro.resilience.torture import run_replication_torture

        report = run_replication_torture(tmp_path / "repl", commits=16, seed=5)
        assert report.ok, report.summary()
        case = report.cases[0]
        assert (case.mode, case.site) == ("replication", "kill_primary")
        # The promoted replica holds every confirmed commit, nothing
        # that was never committed, and none of the aborted rows.
        assert set(case.committed) <= set(case.present)
        assert set(case.present) <= set(case.committed) | set(case.uncertain)
        assert not set(case.aborted) & set(case.present)
        assert case.committed, "no commit was ever confirmed by a replica"
        assert case.uncertain, "the kill raced nothing - scenario too tame"
