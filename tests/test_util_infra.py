"""Infrastructure utilities: ids, clocks, the event bus."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.clock import ManualClock, SystemClock
from repro.util.events import EventBus
from repro.util.ids import IdAllocator, token_hex


class TestIdAllocator:
    def test_monotonic_from_one(self):
        allocator = IdAllocator()
        assert [allocator.allocate() for _ in range(3)] == [1, 2, 3]

    def test_custom_start(self):
        allocator = IdAllocator(start=100)
        assert allocator.allocate() == 100

    def test_start_below_one_rejected(self):
        with pytest.raises(ValueError):
            IdAllocator(start=0)

    def test_peek_does_not_consume(self):
        allocator = IdAllocator()
        assert allocator.peek() == 1
        assert allocator.peek() == 1
        assert allocator.allocate() == 1

    def test_observe_advances(self):
        allocator = IdAllocator()
        allocator.observe(41)
        assert allocator.allocate() == 42

    def test_observe_lower_noop(self):
        allocator = IdAllocator()
        allocator.allocate()
        allocator.allocate()
        allocator.observe(1)
        assert allocator.allocate() == 3

    @given(st.lists(st.integers(min_value=1, max_value=1000), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_never_reissues(self, observed):
        allocator = IdAllocator()
        issued = set()
        for value in observed:
            allocator.observe(value)
            new_id = allocator.allocate()
            assert new_id not in issued
            assert new_id > value
            issued.add(new_id)


class TestTokenHex:
    def test_length_and_uniqueness(self):
        token = token_hex()
        assert len(token) == 32
        assert token != token_hex()

    def test_custom_size(self):
        assert len(token_hex(8)) == 16


class TestClocks:
    def test_manual_clock_advances(self):
        clock = ManualClock(dt.datetime(2010, 1, 15, 9, 0))
        clock.advance(hours=1, minutes=30)
        assert clock.now() == dt.datetime(2010, 1, 15, 10, 30)

    def test_manual_clock_rejects_backwards_advance(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(seconds=-1)

    def test_manual_clock_set(self):
        clock = ManualClock()
        clock.set(dt.datetime(2009, 6, 1))
        assert clock.now() == dt.datetime(2009, 6, 1)

    def test_timestamp_and_isoformat(self):
        clock = ManualClock(dt.datetime(2010, 1, 1, 0, 0, 0))
        assert clock.isoformat() == "2010-01-01T00:00:00"
        assert clock.timestamp() == dt.datetime(
            2010, 1, 1, tzinfo=dt.timezone.utc
        ).timestamp()

    def test_system_clock_is_roughly_now(self):
        system_now = SystemClock().now()
        real_now = dt.datetime.utcnow()
        assert abs((real_now - system_now).total_seconds()) < 5


class TestEventBus:
    def test_publish_calls_handlers_in_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe("e", lambda **kw: calls.append("first"))
        bus.subscribe("e", lambda **kw: calls.append("second"))
        assert bus.publish("e") == 2
        assert calls == ["first", "second"]

    def test_payload_passed_as_kwargs(self):
        bus = EventBus()
        seen = {}
        bus.subscribe("e", lambda value, **kw: seen.update(value=value))
        bus.publish("e", value=42, extra="ignored")
        assert seen == {"value": 42}

    def test_unknown_event_is_noop(self):
        bus = EventBus()
        assert bus.publish("nothing") == 0

    def test_unsubscribe(self):
        bus = EventBus()
        calls = []
        handler = lambda **kw: calls.append(1)
        bus.subscribe("e", handler)
        bus.unsubscribe("e", handler)
        bus.publish("e")
        assert calls == []

    def test_unsubscribe_unknown_is_noop(self):
        bus = EventBus()
        bus.unsubscribe("e", lambda **kw: None)

    def test_failing_handler_is_isolated(self):
        bus = EventBus()

        def bad(**kw):
            raise RuntimeError("handler broke")

        bus.subscribe("e", bad)
        assert bus.publish("e") == 1
        assert bus.subscriber_errors == 1
        event, handler, error = bus.failures[-1]
        assert event == "e"
        assert handler is bad
        assert isinstance(error, RuntimeError)

    def test_delivered_counter(self):
        bus = EventBus()
        bus.subscribe("e", lambda **kw: None)
        bus.publish("e")
        bus.publish("e")
        assert bus.delivered == 2

    def test_failure_does_not_block_later_handlers(self):
        bus = EventBus()
        calls = []
        bus.subscribe("e", lambda **kw: calls.append(1))

        def bad(**kw):
            raise RuntimeError("handler broke")

        bus.subscribe("e", bad)
        bus.subscribe("e", lambda **kw: calls.append(3))
        assert bus.publish("e") == 3
        # The failing handler is isolated: the one behind it still ran
        # and every invocation (including the failed one) is credited.
        assert calls == [1, 3]
        assert bus.delivered == 3
        assert bus.subscriber_errors == 1

    def test_publish_metrics_when_observed(self):
        from repro.obs import Observability
        from repro.util.clock import ManualClock

        clock = ManualClock()
        obs = Observability(clock=clock)
        bus = EventBus(obs=obs)
        bus.subscribe("e", lambda **kw: clock.advance(seconds=0.25))
        bus.subscribe("e", lambda **kw: None)
        bus.publish("e")
        handled = obs.metrics.get("events_handled_total")
        assert handled.labels(event="e").value == 2
        latency = obs.metrics.get("events_publish_seconds")
        assert latency.labels(event="e").summary()["max"] == 0.25
