"""Text utilities: edit distance, similarity measures, name matching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.text import (
    best_name_match,
    combined_similarity,
    filename_stem,
    fold,
    levenshtein,
    normalize_whitespace,
    normalized_similarity,
    slugify,
    token_set_similarity,
)


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a   b\t c\n") == "a b c"

    def test_empty(self):
        assert normalize_whitespace("   ") == ""


class TestSlugify:
    def test_basic(self):
        assert slugify("Arabidopsis Thaliana (light)") == "arabidopsis-thaliana-light"

    def test_accents_stripped(self):
        assert slugify("Zürich café") == "zurich-cafe"


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_cases(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_known_distance(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_single_deletion(self):
        assert levenshtein("hopeless", "hopeles") == 1

    def test_limit_short_circuits(self):
        assert levenshtein("aaaa", "bbbbbbbbbb", limit=2) == 3  # limit + 1

    def test_limit_not_triggered_when_close(self):
        assert levenshtein("abc", "abd", limit=2) == 1

    @given(st.text(max_size=15), st.text(max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=12), st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_identity_of_indiscernibles(self, a):
        assert levenshtein(a, a) == 0


class TestSimilarity:
    def test_paper_example(self):
        # The demo's Hopeless vs. Hopeles misspelling.
        assert normalized_similarity("Hopeless", "Hopeles") == pytest.approx(0.875)

    def test_case_insensitive(self):
        assert normalized_similarity("HEAT SHOCK", "heat shock") == 1.0

    def test_disjoint_strings(self):
        assert normalized_similarity("abc", "xyz") == 0.0

    def test_token_set_word_order(self):
        assert token_set_similarity("heat shock", "shock heat") == 1.0

    def test_token_set_partial(self):
        assert token_set_similarity("heat shock", "heat") == pytest.approx(0.5)

    def test_combined_takes_max(self):
        # Word-order swap: edit distance poor, token set perfect.
        assert combined_similarity("heat shock", "shock heat") == 1.0

    def test_empty_both(self):
        assert normalized_similarity("", "") == 1.0
        assert token_set_similarity("", "") == 1.0

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, a, b):
        assert 0.0 <= normalized_similarity(a, b) <= 1.0
        assert 0.0 <= token_set_similarity(a, b) <= 1.0

    @given(st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_one(self, a):
        assert combined_similarity(a, a) == 1.0


class TestFilenameStem:
    def test_strips_extension(self):
        assert filename_stem("wt_light_1.cel") == "wt_light_1"

    def test_strips_directories(self):
        assert filename_stem("scan01/wt_light_1.cel") == "wt_light_1"

    def test_no_extension(self):
        assert filename_stem("README") == "README"

    def test_only_one_extension_stripped(self):
        assert filename_stem("archive.tar.gz") == "archive.tar"


class TestBestNameMatch:
    def test_exact_match_after_separator_folding(self):
        match = best_name_match(
            "wt_light_1.cel", {1: "wt light 1", 2: "wt dark 1"}
        )
        assert match is not None
        key, score = match
        assert key == 1
        assert score == 1.0

    def test_below_minimum_returns_none(self):
        assert best_name_match("zzzz.cel", {1: "completely different"}) is None

    def test_empty_candidates(self):
        assert best_name_match("x.cel", {}) is None

    def test_prefers_higher_score(self):
        match = best_name_match(
            "sample_42_leaf.raw",
            {1: "sample 42 leaf", 2: "sample 42", 3: "leaf"},
        )
        assert match is not None
        assert match[0] == 1


class TestFold:
    def test_casefold_and_accents(self):
        assert fold("Zürich") == "zurich"

    def test_whitespace_normalized(self):
        assert fold("A  B") == "a b"
