"""Workflow engine: definition validation, stepping, autos, rendering."""

import datetime as dt

import pytest

from repro.errors import (
    InvalidActionError,
    StateError,
    WorkflowConditionFailed,
    WorkflowDefinitionError,
)
from repro.facade import BFabric
from repro.util.clock import ManualClock
from repro.workflow import (
    END,
    Action,
    Step,
    WorkflowDefinition,
    render_ascii,
    render_dot,
)


@pytest.fixture
def system():
    return BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


@pytest.fixture
def admin(system):
    return system.bootstrap()


def linear_definition(name="linear"):
    return WorkflowDefinition(
        name,
        steps=[
            Step("draft", actions=(Action("submit", target="review"),)),
            Step(
                "review",
                actions=(
                    Action("approve", target=END),
                    Action("return", target="draft"),
                ),
            ),
        ],
    )


class TestDefinitionValidation:
    def test_no_steps(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDefinition("empty", steps=[])

    def test_duplicate_steps(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDefinition(
                "dup",
                steps=[Step("a", actions=()), Step("a", actions=())],
            )

    def test_unknown_action_target(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDefinition(
                "bad",
                steps=[Step("a", actions=(Action("go", target="nowhere"),))],
            )

    def test_unreachable_step(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDefinition(
                "unreachable",
                steps=[
                    Step("a", actions=(Action("end", target=END),)),
                    Step("island", actions=()),
                ],
            )

    def test_never_completes(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDefinition(
                "spin",
                steps=[
                    Step("a", actions=(Action("go", target="b"),)),
                    Step("b", actions=(Action("back", target="a"),)),
                ],
            )

    def test_duplicate_actions_in_step(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDefinition(
                "dupact",
                steps=[
                    Step(
                        "a",
                        actions=(
                            Action("go", target=END),
                            Action("go", target=END),
                        ),
                    )
                ],
            )

    def test_step_may_not_be_named_end(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowDefinition("bad", steps=[Step(END, actions=())])

    def test_valid_definition_introspection(self):
        definition = linear_definition()
        assert definition.initial_step == "draft"
        assert set(definition.step_names()) == {"draft", "review"}
        assert ("review", "approve", END) in definition.edges()


class TestEngineStepping:
    def test_start_and_fire_to_completion(self, system, admin):
        system.workflow.register_definition(linear_definition())
        instance = system.workflow.start(admin, "linear")
        assert instance.current_step == "draft"
        assert system.workflow.available_actions(instance.id) == ["submit"]
        instance = system.workflow.fire(admin, instance.id, "submit")
        assert instance.current_step == "review"
        instance = system.workflow.fire(admin, instance.id, "approve")
        assert instance.status == "completed"

    def test_loop_back(self, system, admin):
        system.workflow.register_definition(linear_definition())
        instance = system.workflow.start(admin, "linear")
        system.workflow.fire(admin, instance.id, "submit")
        instance = system.workflow.fire(admin, instance.id, "return")
        assert instance.current_step == "draft"
        assert instance.status == "active"

    def test_invalid_action(self, system, admin):
        system.workflow.register_definition(linear_definition())
        instance = system.workflow.start(admin, "linear")
        with pytest.raises(InvalidActionError) as excinfo:
            system.workflow.fire(admin, instance.id, "approve")
        assert "submit" in excinfo.value.available

    def test_fire_on_completed_instance(self, system, admin):
        system.workflow.register_definition(linear_definition())
        instance = system.workflow.start(admin, "linear")
        system.workflow.fire(admin, instance.id, "submit")
        system.workflow.fire(admin, instance.id, "approve")
        with pytest.raises(StateError):
            system.workflow.fire(admin, instance.id, "submit")

    def test_duplicate_definition_rejected(self, system):
        system.workflow.register_definition(linear_definition())
        with pytest.raises(WorkflowDefinitionError):
            system.workflow.register_definition(linear_definition())

    def test_unknown_definition(self, system, admin):
        with pytest.raises(WorkflowDefinitionError):
            system.workflow.start(admin, "ghost")

    def test_history_records_transitions(self, system, admin):
        system.workflow.register_definition(linear_definition())
        instance = system.workflow.start(admin, "linear")
        system.workflow.fire(admin, instance.id, "submit")
        system.workflow.fire(admin, instance.id, "approve")
        history = system.workflow.history(instance.id)
        assert [(e.action, e.from_step, e.to_step) for e in history] == [
            ("submit", "draft", "review"),
            ("approve", "review", END),
        ]

    def test_for_entity(self, system, admin):
        system.workflow.register_definition(linear_definition())
        system.workflow.start(admin, "linear", entity_type="thing", entity_id=5)
        system.workflow.start(admin, "linear", entity_type="thing", entity_id=5)
        assert len(system.workflow.for_entity("thing", 5)) == 2

    def test_cancel(self, system, admin):
        system.workflow.register_definition(linear_definition())
        instance = system.workflow.start(admin, "linear")
        cancelled = system.workflow.cancel(admin, instance.id)
        assert cancelled.status == "cancelled"
        assert system.workflow.available_actions(instance.id) == []

    def test_fail_records_reason(self, system, admin):
        system.workflow.register_definition(linear_definition())
        instance = system.workflow.start(admin, "linear")
        failed = system.workflow.fail(admin, instance.id, "connector crashed")
        assert failed.status == "failed"
        assert failed.context["failure_reason"] == "connector crashed"


class TestConditionsAndFunctions:
    def test_guard_blocks_until_context_satisfies(self, system, admin):
        definition = WorkflowDefinition(
            "guarded",
            steps=[
                Step(
                    "wait",
                    actions=(
                        Action(
                            "proceed",
                            target=END,
                            condition=lambda ctx: ctx.get("ready", False),
                        ),
                    ),
                ),
            ],
        )
        system.workflow.register_definition(definition)
        instance = system.workflow.start(admin, "guarded")
        assert system.workflow.available_actions(instance.id) == []
        with pytest.raises(WorkflowConditionFailed):
            system.workflow.fire(admin, instance.id, "proceed")
        # Context updates delivered with fire() are evaluated by the guard.
        instance = system.workflow.fire(admin, instance.id, "proceed", ready=True)
        assert instance.status == "completed"

    def test_pre_function_failure_fails_instance_after_retries(
        self, system, admin
    ):
        from repro.errors import WorkflowTransitionFailed

        calls = []
        broken = [True]

        def explode(ctx):
            calls.append(1)
            if broken[0]:
                raise RuntimeError("pre failed")

        definition = WorkflowDefinition(
            "prefail",
            steps=[
                Step(
                    "a",
                    actions=(
                        Action("go", target=END, pre_functions=(explode,)),
                    ),
                ),
            ],
        )
        system.workflow.register_definition(definition)
        instance = system.workflow.start(admin, "prefail")
        with pytest.raises(WorkflowTransitionFailed) as excinfo:
            system.workflow.fire(admin, instance.id, "go")
        # The engine retried (default policy: 3 attempts) before moving
        # the instance to the terminal failed state with the error chain.
        assert len(calls) == 3
        assert len(excinfo.value.attempts) == 3
        failed = system.workflow.get(instance.id)
        assert failed.status == "failed"
        assert failed.current_step == "a"
        assert failed.context["error_chain"] == excinfo.value.attempts
        assert "pre failed" in failed.context["failure_reason"]
        # An operator retry clears the error chain and resumes.
        broken[0] = False
        resumed = system.workflow.retry(admin, instance.id)
        assert resumed.status == "active"
        assert "error_chain" not in resumed.context
        assert "failure_reason" not in resumed.context

    def test_post_function_mutates_context(self, system, admin):
        def stamp(ctx):
            ctx["stamped"] = True

        definition = WorkflowDefinition(
            "post",
            steps=[
                Step(
                    "a",
                    actions=(
                        Action("go", target="b", post_functions=(stamp,)),
                    ),
                ),
                Step("b", actions=()),
            ],
        )
        system.workflow.register_definition(definition)
        instance = system.workflow.start(admin, "post")
        instance = system.workflow.fire(admin, instance.id, "go")
        assert instance.context["stamped"] is True
        assert instance.status == "completed"  # terminal step

    def test_auto_actions_chain(self, system, admin):
        definition = WorkflowDefinition(
            "autos",
            steps=[
                Step("a", actions=(Action("go", target="b", auto=True),)),
                Step("b", actions=(Action("go", target="c", auto=True),)),
                Step("c", actions=(Action("manual", target=END),)),
            ],
        )
        system.workflow.register_definition(definition)
        instance = system.workflow.start(admin, "autos")
        assert instance.current_step == "c"

    def test_guarded_auto_waits(self, system, admin):
        definition = WorkflowDefinition(
            "guarded_auto",
            steps=[
                Step(
                    "a",
                    actions=(
                        Action(
                            "go",
                            target=END,
                            auto=True,
                            condition=lambda ctx: ctx.get("ok", False),
                        ),
                        Action("nudge", target="a"),
                    ),
                ),
            ],
        )
        system.workflow.register_definition(definition)
        instance = system.workflow.start(admin, "guarded_auto")
        assert instance.status == "active"
        instance = system.workflow.fire(admin, instance.id, "nudge", ok=True)
        assert instance.status == "completed"


class TestRendering:
    def test_ascii_highlights_current_step(self):
        definition = linear_definition()
        drawing = render_ascii(definition, "review")
        assert "▶[review]" in drawing
        assert "--approve--> END" in drawing

    def test_ascii_marks_guards_and_autos(self, system):
        definition = WorkflowDefinition(
            "marks",
            steps=[
                Step(
                    "a",
                    actions=(
                        Action(
                            "go", target=END, auto=True,
                            condition=lambda ctx: True,
                        ),
                    ),
                ),
            ],
        )
        drawing = render_ascii(definition)
        assert "(guarded)" in drawing
        assert "(auto)" in drawing

    def test_dot_output_shape(self):
        definition = linear_definition()
        dot = render_dot(definition, "draft")
        assert dot.startswith('digraph "linear"')
        assert '"draft" -> "review" [label="submit"]' in dot
        assert "fillcolor" in dot  # highlighting
        assert '"review" -> "__end__"' in dot
