"""Additional coverage: workflow instance persistence details, the
data-import and experiment workflow definitions as shipped."""

import datetime as dt

import pytest

from repro.apps.experiments import experiment_workflow_definition
from repro.dataimport.importer import import_workflow_definition
from repro.facade import BFabric
from repro.util.clock import ManualClock
from repro.workflow import END


@pytest.fixture
def system():
    return BFabric(clock=ManualClock(dt.datetime(2010, 1, 15, 9, 0)))


class TestShippedDefinitions:
    def test_import_workflow_shape(self):
        definition = import_workflow_definition()
        assert definition.initial_step == "fetch"
        assert [s.name for s in definition.steps()] == [
            "fetch", "assign_extracts", "done",
        ]
        fetch = definition.step("fetch")
        assert fetch.actions[0].auto  # fetch completes by itself
        assert definition.step("done").is_terminal

    def test_experiment_workflow_shape(self):
        definition = experiment_workflow_definition()
        assert definition.initial_step == "pending"
        pending = definition.step("pending")
        assert [a.name for a in pending.actions] == ["execute"]
        assert not pending.actions[0].auto  # the executor fires it
        assert definition.step("ready").is_terminal

    def test_edges_enumeration(self):
        definition = import_workflow_definition()
        assert ("fetch", "fetched", "assign_extracts") in definition.edges()
        assert ("assign_extracts", "save", "done") in definition.edges()


class TestInstancePersistence:
    def test_context_survives_in_database(self, system):
        admin = system.bootstrap()
        instance = system.workflow.start(
            admin, "data_import",
            context={"provider": "GeneChip", "files": ["a.cel"]},
        )
        row = system.db.get("workflow_instance", instance.id)
        assert row["context"]["provider"] == "GeneChip"
        assert row["current_step"] == "assign_extracts"

    def test_updated_at_advances(self, system):
        admin = system.bootstrap()
        instance = system.workflow.start(admin, "data_import")
        system.clock.advance(minutes=10)
        updated = system.workflow.fire(admin, instance.id, "save")
        assert updated.updated_at > instance.created_at

    def test_history_actor_recorded(self, system):
        admin = system.bootstrap()
        instance = system.workflow.start(admin, "data_import")
        system.workflow.fire(admin, instance.id, "save")
        history = system.workflow.history(instance.id)
        assert all(event.actor == "admin" for event in history)

    def test_completed_instance_reports_no_actions(self, system):
        admin = system.bootstrap()
        instance = system.workflow.start(admin, "data_import")
        system.workflow.fire(admin, instance.id, "save")
        assert system.workflow.available_actions(instance.id) == []

    def test_terminal_step_completes_instance(self, system):
        admin = system.bootstrap()
        instance = system.workflow.start(admin, "data_import")
        finished = system.workflow.fire(admin, instance.id, "save")
        assert finished.status == "completed"
        assert finished.current_step == "done"
        # END-marker transitions also complete (experiment workflow).
        run = system.workflow.start(admin, "run_experiment")
        completed = system.workflow.fire(admin, run.id, "execute")
        assert completed.status == "completed"

    def test_context_updates_via_fire_persist(self, system):
        admin = system.bootstrap()
        instance = system.workflow.start(admin, "data_import")
        system.workflow.fire(
            admin, instance.id, "save", assigned=4, note="all matched"
        )
        row = system.db.get("workflow_instance", instance.id)
        assert row["context"]["assigned"] == 4
        assert row["context"]["note"] == "all matched"

    def test_end_target_recorded_in_history(self, system):
        admin = system.bootstrap()
        run = system.workflow.start(admin, "run_experiment")
        system.workflow.fire(admin, run.id, "execute")
        history = system.workflow.history(run.id)
        assert history[-1].to_step in (END, "ready")
