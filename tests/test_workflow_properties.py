"""Property-based tests for the workflow engine.

Random linear-with-branches definitions are generated and driven with
random action choices; invariants:

* the engine never reports an unavailable action as available;
* firing any reported action succeeds and lands on the action's target;
* every instance either completes, is explicitly cancelled, or remains
  active in a step that exists in its definition;
* the history's transitions concatenate: each event's from_step equals
  the previous event's to_step (ignoring retries).
"""

import datetime as dt

from hypothesis import given, settings, strategies as st

from repro.facade import BFabric
from repro.util.clock import ManualClock
from repro.workflow import END, Action, Step, WorkflowDefinition

_counter = iter(range(1_000_000))


def build_definition(structure: list[list[int]]) -> WorkflowDefinition:
    """Build a random forward-edge workflow.

    *structure* assigns each step a list of action targets as relative
    forward offsets; an offset beyond the last step means END.  Forward
    edges only, so the definition always terminates and validates.
    """
    names = [f"s{i}" for i in range(len(structure))]
    steps = []
    for i, offsets in enumerate(structure):
        # Action a0 always advances to the next step so every step stays
        # reachable; further actions jump by random forward offsets.
        targets = [1] + list(offsets)
        actions = []
        for j, offset in enumerate(targets):
            target_index = i + max(1, offset)
            target = (
                names[target_index] if target_index < len(names) else END
            )
            actions.append(Action(f"a{j}", target=target))
        steps.append(Step(names[i], actions=tuple(actions)))
    return WorkflowDefinition(f"random_{next(_counter)}", steps=steps)


structure_strategy = st.lists(
    st.lists(st.integers(min_value=1, max_value=4), min_size=0, max_size=3),
    min_size=1,
    max_size=6,
)


@given(structure=structure_strategy, choices=st.lists(st.integers(0, 10), max_size=20))
@settings(max_examples=60, deadline=None)
def test_random_walk_preserves_invariants(structure, choices):
    system = BFabric(
        clock=ManualClock(dt.datetime(2010, 1, 15)), index_on_events=False
    )
    admin = system.bootstrap()
    definition = build_definition(structure)
    system.workflow.register_definition(definition)
    instance = system.workflow.start(admin, definition.name)

    for choice in choices:
        if instance.status != "active":
            break
        available = system.workflow.available_actions(instance.id)
        step = definition.step(instance.current_step)
        # Availability is sound: every reported action exists on the step.
        assert set(available) <= {a.name for a in step.actions}
        if not available:
            break
        action_name = available[choice % len(available)]
        target = step.action(action_name).target
        instance = system.workflow.fire(admin, instance.id, action_name)
        if target == END:
            assert instance.status == "completed"
        elif definition.step(target).is_terminal:
            assert instance.status == "completed"
        else:
            assert instance.current_step == target

    final = system.workflow.get(instance.id)
    assert final.status in ("active", "completed")
    if final.status == "active":
        assert final.current_step in definition.step_names()

    # History chains: from_step of event k+1 equals to_step of event k.
    history = system.workflow.history(instance.id)
    for previous, current in zip(history, history[1:]):
        assert current.from_step == previous.to_step


@given(structure=structure_strategy)
@settings(max_examples=60, deadline=None)
def test_generated_definitions_always_validate(structure):
    definition = build_definition(structure)
    # Reachability: breadth-first from the initial step covers all steps?
    # Not necessarily all — but the constructor already rejected
    # unreachable ones, so just confirm basic introspection works.
    assert definition.initial_step == "s0"
    assert definition.edges()


@given(structure=structure_strategy)
@settings(max_examples=40, deadline=None)
def test_all_auto_definitions_run_to_completion(structure):
    """If every first action is auto, starting runs straight to the end
    (forward edges guarantee termination)."""
    names = [f"s{i}" for i in range(len(structure))]
    steps = []
    for i, _offsets in enumerate(structure):
        # Strict chain so every step is reachable; all actions auto.
        target = names[i + 1] if i + 1 < len(names) else END
        steps.append(
            Step(names[i], actions=(Action("go", target=target, auto=True),))
        )
    definition = WorkflowDefinition(f"auto_{next(_counter)}", steps=steps)

    system = BFabric(
        clock=ManualClock(dt.datetime(2010, 1, 15)), index_on_events=False
    )
    admin = system.bootstrap()
    system.workflow.register_definition(definition)
    instance = system.workflow.start(admin, definition.name)
    assert instance.status == "completed"
